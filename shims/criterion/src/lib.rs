//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be downloaded. This shim implements the API subset the
//! workspace's benches use — `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `black_box`, and `Bencher::iter` — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery.
//!
//! Under `cargo test` (cargo passes `--test` to `harness = false` bench
//! executables) each benchmark body runs exactly once so the suite stays
//! fast while still smoke-testing every bench.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Reported throughput unit for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the mean time per call. In test mode `f` runs
    /// exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.last_mean_ns = 0.0;
            return;
        }
        // Warm-up: also calibrates how many calls fit the time budget.
        let warm_start = Instant::now();
        black_box(f());
        let one = warm_start.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(300);
        let per_sample = ((budget.as_nanos() / one.as_nanos()).max(1) as usize)
            .min(self.sample_size.max(1) * 100);
        let start = Instant::now();
        for _ in 0..per_sample {
            black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / per_sample as f64;
    }
}

fn is_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_one(group: Option<&str>, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        test_mode: is_test_mode(),
        sample_size,
        last_mean_ns: 0.0,
    };
    f(&mut b);
    if b.test_mode {
        println!("bench {full}: ok (test mode)");
    } else if b.last_mean_ns >= 1_000_000.0 {
        println!("bench {full}: {:.3} ms/iter", b.last_mean_ns / 1_000_000.0);
    } else if b.last_mean_ns >= 1_000.0 {
        println!("bench {full}: {:.3} us/iter", b.last_mean_ns / 1_000.0);
    } else {
        println!("bench {full}: {:.0} ns/iter", b.last_mean_ns);
    }
}

/// Top-level benchmark driver (a drastically simplified `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(None, id, self.sample_size.max(10), &mut f);
        self
    }

    /// Sets the sample-size hint.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Records the group's throughput unit (informational in this shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample-size hint for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.to_string(),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench executable's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("join", 10).to_string(), "join/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1)).sample_size(10);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let input = 41u32;
        let mut seen = 0u32;
        g.bench_with_input(BenchmarkId::new("in", 41), &input, |b, &i| {
            b.iter(|| seen = i + 1)
        });
        assert_eq!(seen, 42);
    }
}
