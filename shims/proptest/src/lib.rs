//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be downloaded. This shim implements the API subset the
//! workspace's property tests use: the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! `collection::vec`, `bool::ANY`, a small `string::string_regex`
//! (character-class + repetition patterns only), and the
//! `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and per-test deterministic seed instead of a minimized
//! input), and value streams differ. Case count defaults to 64 and can be
//! overridden with `PROPTEST_CASES`.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Case execution: deterministic per-test RNG plus pass/reject/fail
    //! bookkeeping.

    use super::*;

    /// The generator handed to strategies.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Deterministic generator for one named test.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(StdRng::seed_from_u64(h))
        }

        pub(crate) fn rng(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!` precondition; draw another.
        Reject(String),
        /// The case falsified the property.
        Fail(String),
    }

    impl TestCaseError {
        /// A falsified-property error.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// A rejected-precondition marker.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Result type every generated test body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Number of cases to run per property (env `PROPTEST_CASES`, default
    /// 64).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }

    /// Drives one property: draws inputs and runs the body until
    /// `case_count()` cases pass, panicking on the first failure.
    pub fn run_cases<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let cases = case_count();
        let mut rng = TestRng::for_test(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < cases {
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= cases.saturating_mul(16).max(256),
                        "property '{name}': too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property '{name}' falsified at case {passed} \
                     (deterministic; rerun reproduces it): {msg}"
                ),
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `f` (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 10000 consecutive draws",
                self.whence
            );
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng().gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.rng().gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Length specification for [`vec()`]: an exact size or a half-open
    /// range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Generates `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The unconditioned boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }
}

pub mod string {
    //! String strategies from a small regex dialect.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Unsupported-pattern error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One regex item: a set of candidate chars plus a repetition range.
    #[derive(Debug, Clone)]
    struct Item {
        chars: Vec<char>,
        min: usize,
        max: usize, // inclusive
    }

    /// Generates strings matching a charclass/literal + `{m,n}` pattern.
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        items: Vec<Item>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for item in &self.items {
                let n = rng.rng().gen_range(item.min..=item.max);
                for _ in 0..n {
                    out.push(item.chars[rng.rng().gen_range(0..item.chars.len())]);
                }
            }
            out
        }
    }

    /// Compiles a tiny regex dialect: sequences of literal characters or
    /// `[...]` classes (with ranges), each optionally followed by
    /// `{m}`/`{m,n}`, `*`, `+`, or `?`. Anchors, groups, and alternation
    /// are not supported.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut items = Vec::new();
        while let Some(c) = chars.next() {
            let set: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars
                            .next()
                            .ok_or_else(|| Error(format!("unterminated class in '{pattern}'")))?;
                        match c {
                            ']' => break,
                            '\\' => {
                                let esc = chars.next().ok_or_else(|| {
                                    Error(format!("trailing escape in '{pattern}'"))
                                })?;
                                set.push(esc);
                                prev = Some(esc);
                            }
                            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                                let lo = prev.take().unwrap();
                                let hi = chars.next().unwrap();
                                if (lo as u32) > (hi as u32) {
                                    return Err(Error(format!("bad range {lo}-{hi}")));
                                }
                                for u in (lo as u32 + 1)..=(hi as u32) {
                                    set.push(char::from_u32(u).unwrap());
                                }
                            }
                            other => {
                                set.push(other);
                                prev = Some(other);
                            }
                        }
                    }
                    if set.is_empty() {
                        return Err(Error(format!("empty class in '{pattern}'")));
                    }
                    set
                }
                '\\' => {
                    let esc = chars
                        .next()
                        .ok_or_else(|| Error(format!("trailing escape in '{pattern}'")))?;
                    vec![esc]
                }
                '(' | ')' | '|' | '^' | '$' | '.' => {
                    return Err(Error(format!(
                        "construct '{c}' unsupported in shim regex '{pattern}'"
                    )))
                }
                literal => vec![literal],
            };
            // Optional repetition suffix.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|_| Error(format!("bad repetition '{{{spec}}}'")))
                    };
                    match spec.split_once(',') {
                        Some((lo, hi)) => (parse(lo.trim())?, parse(hi.trim())?),
                        None => {
                            let n = parse(spec.trim())?;
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            if min > max {
                return Err(Error(format!("bad repetition bounds {min} > {max}")));
            }
            items.push(Item {
                chars: set,
                min,
                max,
            });
        }
        Ok(RegexStrategy { items })
    }
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The canonical `any::<bool>()`-style entry point (bool only; the
    /// workspace uses ranges and `collection::vec` for everything else).
    pub fn any_bool() -> crate::bool::Any {
        crate::bool::ANY
    }
}

/// Declares property tests. Each function body runs for
/// [`test_runner::case_count`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(
                        &($strat),
                        __proptest_rng,
                    );)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = TestRng::for_test("vecs");
        let s = crate::collection::vec((0u32..4, 0u32..2), 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 4 && b < 2));
        }
    }

    #[test]
    fn flat_map_threads_dependencies() {
        let mut rng = TestRng::for_test("flat");
        let s = (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..9, n)));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn string_regex_charclass() {
        let mut rng = TestRng::for_test("re");
        let s = crate::string::string_regex("[A-Za-z0-9 _.,\"-]{1,12}").unwrap();
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..=12).contains(&v.chars().count()), "{v:?}");
            assert!(v
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.,\"-".contains(c)));
        }
        assert!(crate::string::string_regex("(a|b)").is_err());
        let lit = crate::string::string_regex("ab{2}c?").unwrap();
        let v = lit.generate(&mut rng);
        assert!(v.starts_with("abb"), "{v:?}");
    }

    proptest! {
        #[test]
        fn macro_roundtrip(v in crate::collection::vec(0u32..10, 1..20), flip in crate::bool::ANY) {
            prop_assume!(!v.is_empty());
            let max = *v.iter().max().unwrap();
            prop_assert!(max < 10, "max {} out of range", max);
            prop_assert_eq!(v.len(), v.len());
            if flip {
                prop_assert_ne!(max + 1, max);
            }
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        crate::test_runner::run_cases("always_fails", |_| Err(TestCaseError::fail("nope")));
    }
}
