//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be downloaded. This shim implements exactly the
//! 0.8 API subset the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range}`, and `SliceRandom::shuffle`/`choose` — on top
//! of a xoshiro256++ generator. It is **not** the upstream algorithm:
//! streams differ from real `rand`, but every consumer in this workspace
//! only relies on determinism-given-seed, which this shim guarantees.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64` is used in-tree).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from all bit patterns (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Generic over the output type
/// (mirroring real rand's `SampleRange<T>`) so integer literals in ranges
/// infer from the expected output type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Statistically strong and fast; streams differ from the
    /// upstream ChaCha-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic given the generator state.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(2);
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_bool() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "got {heads}");
    }
}
