//! Figure 1, quantified.
//!
//! The paper's Figure 1 is a conceptual nesting of join sets:
//!
//! ```text
//! box A = joins actually safe to avoid
//! box B = the rest (avoiding blows up the error)
//! box C = joins the worst-case ROR rule calls safe   (C ⊆ A)
//! box D = joins the TR rule calls safe               (D ⊆ C, paper's claim)
//! ```
//!
//! This experiment *measures* the boxes over the 15 attribute tables of
//! the seven datasets (hindsight safety from the planted ground truth)
//! and checks the nesting: every rule-safe join is actually safe, and
//! the TR rule is at most as permissive as the ROR rule.

use hamlet_core::planner::join_stats;
use hamlet_core::rules::{DecisionRule, RorRule, TrRule};
use hamlet_datagen::realistic::DatasetSpec;

use crate::table::TextTable;

/// Membership of one join in the Figure 1 boxes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxMembership {
    /// `Dataset.Table` label.
    pub join: String,
    /// Box A: actually safe to avoid (planted hindsight truth).
    pub in_a: bool,
    /// Box C: the ROR rule says safe.
    pub in_c: bool,
    /// Box D: the TR rule says safe.
    pub in_d: bool,
}

/// Computes box membership for all 15 joins.
pub fn memberships(scale: f64, seed: u64) -> Vec<BoxMembership> {
    let tr = TrRule::default();
    let ror = RorRule::default();
    let mut out = Vec::new();
    for spec in DatasetSpec::all() {
        let g = spec.generate(scale, seed);
        let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
        for (i, at) in spec.tables.iter().enumerate() {
            let stats = join_stats(&g.star, i, n_train);
            out.push(BoxMembership {
                join: format!("{}.{}", spec.name, at.table),
                in_a: at.safe_to_avoid_in_hindsight,
                in_c: ror.decide(&stats).is_avoid(),
                in_d: tr.decide(&stats).is_avoid(),
            });
        }
    }
    out
}

/// Checks the paper's nesting over a set of memberships. Returns the
/// list of violations (empty = the diagram holds).
pub fn nesting_violations(ms: &[BoxMembership]) -> Vec<String> {
    let mut violations = Vec::new();
    for m in ms {
        if m.in_c && !m.in_a {
            violations.push(format!(
                "{}: ROR-safe but not actually safe (C ⊄ A)",
                m.join
            ));
        }
        if m.in_d && !m.in_c {
            violations.push(format!("{}: TR-safe but not ROR-safe (D ⊄ C)", m.join));
        }
    }
    violations
}

/// Full report.
pub fn report(scale: f64, seed: u64) -> String {
    let ms = memberships(scale, seed);
    let mut t = TextTable::new(["Join", "A (safe)", "C (ROR)", "D (TR)", "box"]);
    let mark = |b: bool| if b { "x" } else { "" };
    for m in &ms {
        let region = match (m.in_a, m.in_c, m.in_d) {
            (true, true, true) => "D (both rules catch it)",
            (true, true, false) => "C \\ D (only ROR catches it)",
            (true, false, _) => "A \\ C (missed opportunity)",
            (false, false, _) => "B (correctly joined)",
            (false, true, _) => "VIOLATION",
        };
        t.row([
            m.join.clone(),
            mark(m.in_a).to_string(),
            mark(m.in_c).to_string(),
            mark(m.in_d).to_string(),
            region.to_string(),
        ]);
    }
    let a = ms.iter().filter(|m| m.in_a).count();
    let c = ms.iter().filter(|m| m.in_c).count();
    let d = ms.iter().filter(|m| m.in_d).count();
    let violations = nesting_violations(&ms);
    let mut out = format!(
        "Figure 1, quantified over the 15 attribute tables: |A| = {a}, |C| = {c}, |D| = {d}\n{}",
        t.render()
    );
    if violations.is_empty() {
        out.push_str("\nNesting D ⊆ C ⊆ A holds: both rules are conservative.\n");
    } else {
        out.push_str("\nVIOLATIONS:\n");
        for v in violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_holds_on_the_seven_datasets() {
        let ms = memberships(0.05, 7);
        assert_eq!(ms.len(), 15);
        assert!(
            nesting_violations(&ms).is_empty(),
            "{:?}",
            nesting_violations(&ms)
        );
        // The abstract's tally: 7 joins predicted safe.
        assert_eq!(ms.iter().filter(|m| m.in_d).count(), 7);
        // Missed opportunities exist (A strictly contains C).
        let a = ms.iter().filter(|m| m.in_a).count();
        let c = ms.iter().filter(|m| m.in_c).count();
        assert!(a > c, "expected missed opportunities: |A|={a}, |C|={c}");
    }

    #[test]
    fn violations_detected_when_planted() {
        let ms = vec![BoxMembership {
            join: "X.Y".into(),
            in_a: false,
            in_c: true,
            in_d: true,
        }];
        let v = nesting_violations(&ms);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("C ⊄ A"));
    }

    #[test]
    fn report_renders_regions() {
        let s = report(0.05, 7);
        assert!(s.contains("Nesting D ⊆ C ⊆ A holds"));
        assert!(s.contains("missed opportunity"));
    }
}
