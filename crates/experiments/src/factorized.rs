//! Factorized vs. materialized training: accuracy parity and cost.
//!
//! The factorized subsystem claims JoinAll *semantics* without JoinAll
//! *materialization*: the trained model must be identical, while the
//! wide table's `n_S × d_R` cells are never allocated. This experiment
//! checks both claims head-to-head at tuple ratios `n_S/n_R ∈ {1, 10,
//! 100}` — the regime sweep of Fig 8A, but along the physical axis. At
//! high fanout (many entity rows per attribute row) the wide table
//! repeats each `R` row many times, so factorized execution should win
//! both wall-clock and peak allocation; at ratio 1 the gap narrows.

use std::time::{Duration, Instant};

use hamlet_core::planner::{plan, ExecStrategy, PlanKind};
use hamlet_core::rules::TrRule;
use hamlet_factorized::{fit_factorized_logreg, fit_factorized_nb, view_for_plan};
use hamlet_ml::classifier::{zero_one_error, Classifier};
use hamlet_ml::dataset::Dataset;
use hamlet_ml::logreg::LogisticRegression;
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::CodeSource;
use hamlet_relational::{AttributeTable, Domain, StarSchema, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::TextTable;

/// The counting allocator now lives in `hamlet-obs` so every binary
/// (the CLI included) can install it; re-exported here for the
/// `factorized` binary and older callers.
pub use hamlet_obs::CountingAlloc;

/// One (tuple ratio × strategy comparison) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutRow {
    /// `n_S / n_R`.
    pub ratio: usize,
    /// Naive Bayes models identical across strategies?
    pub nb_identical: bool,
    /// Logistic-regression weights bitwise identical?
    pub lr_identical: bool,
    /// Holdout error (same for both paths when parity holds).
    pub error: f64,
    /// Wall-clock for materialize + train (both models).
    pub materialized: Duration,
    /// Wall-clock for factorized train (both models).
    pub factorized: Duration,
    /// Peak bytes above entry for the materialized path (0 without the
    /// counting allocator installed).
    pub materialized_peak: usize,
    /// Peak bytes above entry for the factorized path.
    pub factorized_peak: usize,
    /// Wide-table cells the factorized path never allocates.
    pub cells_avoided: usize,
}

/// A star with one attribute table at the requested tuple ratio:
/// `n_s` entity rows over `n_s / ratio` attribute rows carrying `d_r`
/// foreign features.
pub fn fanout_star(n_s: usize, ratio: usize, d_r: usize, seed: u64) -> StarSchema {
    let n_r = (n_s / ratio).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let rid = Domain::indexed("RID", n_r).shared();
    let mut r = TableBuilder::new("R").primary_key("RID", rid.clone(), (0..n_r as u32).collect());
    for j in 0..d_r {
        let name = format!("xr{j}");
        let codes: Vec<u32> = (0..n_r).map(|_| rng.gen_range(0..16u32)).collect();
        r = r.feature(&name, Domain::indexed(&name, 16).shared(), codes);
    }
    let r = r.build().expect("attribute table builds");

    let fk: Vec<u32> = (0..n_s).map(|_| rng.gen_range(0..n_r as u32)).collect();
    let xs: Vec<u32> = (0..n_s).map(|_| rng.gen_range(0..4u32)).collect();
    // Label depends on one foreign feature and the entity feature
    // through an OR (not XOR: both NB and logreg must be able to beat
    // chance, so each feature must carry marginal signal).
    let xr0 = r.column(1).codes();
    let y: Vec<u32> = (0..n_s)
        .map(|i| {
            let noise = rng.gen::<f64>() < 0.1;
            let v = u32::from(xr0[fk[i] as usize] >= 8 || xs[i] >= 3);
            if noise {
                1 - v
            } else {
                v
            }
        })
        .collect();
    let s = TableBuilder::new("S")
        .target("y", Domain::boolean("y").shared(), y)
        .feature("xs", Domain::indexed("xs", 4).shared(), xs)
        .foreign_key("fk", "R", rid, fk)
        .build()
        .expect("entity builds");
    StarSchema::new(
        s,
        vec![AttributeTable {
            fk: "fk".into(),
            table: r,
        }],
    )
    .expect("star builds")
}

fn measure<T>(meter: Option<&CountingAlloc>, f: impl FnOnce() -> T) -> (T, Duration, usize) {
    let baseline = meter.map(|m| {
        m.reset_peak();
        m.current()
    });
    let t = Instant::now();
    let out = f();
    let elapsed = t.elapsed();
    let peak = meter
        .zip(baseline)
        .map(|(m, b)| m.peak().saturating_sub(b))
        .unwrap_or(0);
    (out, elapsed, peak)
}

/// Runs the comparison at one tuple ratio.
pub fn compare_at(
    n_s: usize,
    ratio: usize,
    d_r: usize,
    seed: u64,
    meter: Option<&CountingAlloc>,
) -> FanoutRow {
    let star = fanout_star(n_s, ratio, d_r, seed);
    let perm: Vec<usize> = (0..star.n_s()).collect();
    let split = star.split_rows(&perm, 0.5, 0.25);
    let nb = NaiveBayes::default();
    let lr = LogisticRegression::default();
    let join_all = plan(
        &star,
        PlanKind::JoinAll,
        &TrRule::default(),
        split.train.len(),
    );

    // Materialized: build the wide table, copy it into a Dataset, train.
    let ((nb_mat, lr_mat, mat_err), materialized, materialized_peak) = measure(meter, || {
        let wide = join_all.materialize(&star).expect("join materializes");
        let data = Dataset::from_table(&wide);
        let feats: Vec<usize> = (0..data.n_features()).collect();
        let m_nb = nb.fit(&data, &split.train, &feats);
        let m_lr = lr.fit(&data, &split.train, &feats);
        let err = zero_one_error(&m_nb, &data, &split.test);
        (m_nb, m_lr, err)
    });

    // Factorized: same plan, Factorize strategy — no join runs.
    let fac_plan = join_all.clone().with_strategy(ExecStrategy::Factorize);
    let ((nb_fac, lr_fac, fac_err, cells_avoided), factorized, factorized_peak) =
        measure(meter, || {
            let view = view_for_plan(&star, &fac_plan).expect("view builds");
            let feats: Vec<usize> = (0..CodeSource::n_features(&view)).collect();
            let m_nb =
                fit_factorized_nb(&view, &nb, &split.train, &feats).expect("counts push down");
            let m_lr = fit_factorized_logreg(&view, &lr, &split.train, &feats);
            let err = zero_one_error(&m_nb, &view, &split.test);
            (m_nb, m_lr, err, view.cells_avoided())
        });

    assert_eq!(mat_err, fac_err, "parity must hold at ratio {ratio}");
    FanoutRow {
        ratio,
        nb_identical: nb_mat == nb_fac,
        lr_identical: lr_mat.weights() == lr_fac.weights() && lr_mat.bias() == lr_fac.bias(),
        error: mat_err,
        materialized,
        factorized,
        materialized_peak,
        factorized_peak,
        cells_avoided,
    }
}

/// The full sweep at ratios 1, 10, 100.
pub fn compare(n_s: usize, d_r: usize, seed: u64, meter: Option<&CountingAlloc>) -> Vec<FanoutRow> {
    [1, 10, 100]
        .iter()
        .map(|&ratio| compare_at(n_s, ratio, d_r, seed, meter))
        .collect()
}

/// Renders the sweep as a report.
pub fn report(rows: &[FanoutRow]) -> String {
    let mut t = TextTable::new([
        "n_S/n_R",
        "NB parity",
        "LR parity",
        "holdout err",
        "materialized",
        "factorized",
        "peak bytes (mat)",
        "peak bytes (fac)",
        "cells avoided",
    ]);
    for r in rows {
        t.row([
            r.ratio.to_string(),
            if r.nb_identical {
                "identical"
            } else {
                "DIFFERS"
            }
            .to_string(),
            if r.lr_identical {
                "identical"
            } else {
                "DIFFERS"
            }
            .to_string(),
            format!("{:.4}", r.error),
            format!("{:.1} ms", r.materialized.as_secs_f64() * 1e3),
            format!("{:.1} ms", r.factorized.as_secs_f64() * 1e3),
            r.materialized_peak.to_string(),
            r.factorized_peak.to_string(),
            r.cells_avoided.to_string(),
        ]);
    }
    let mut out =
        String::from("Factorized vs materialized training (same plan, same seed, same split)\n\n");
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_holds_across_ratios() {
        for row in compare(2_000, 4, 7, None) {
            assert!(row.nb_identical, "NB differs at ratio {}", row.ratio);
            assert!(row.lr_identical, "LR differs at ratio {}", row.ratio);
            assert!(
                row.error < 0.35,
                "model should beat chance, got {}",
                row.error
            );
            assert_eq!(row.cells_avoided, 2_000 * 4);
        }
    }

    #[test]
    fn fanout_star_respects_ratio() {
        let star = fanout_star(1_000, 10, 3, 1);
        assert_eq!(star.n_s(), 1_000);
        assert_eq!(star.attributes()[0].n_rows(), 100);
        assert_eq!(star.attributes()[0].n_features(), 3);
    }
}
