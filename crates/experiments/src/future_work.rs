//! Future-work experiment: do the decision rules transfer to classifiers
//! with non-linear VC dimensions?
//!
//! Sec 7 lists "extending our results to ... classifiers with infinite VC
//! dimensions" as an open avenue, and footnote 5 sketches why the
//! worst-case derivation should carry over. This experiment probes the
//! question empirically with a depth-limited multiway decision tree:
//!
//! * the Fig-3(B) sweep re-run with the tree — does NoJoin still degrade
//!   with `|D_FK|` while UseAll/NoFK stay put?
//! * the Fig-7 end-to-end comparison re-run with the tree — do JoinOpt's
//!   verdicts (tuned on linear models!) still avoid error blow-ups?

use hamlet_core::planner::{plan as make_plan, PlanKind};
use hamlet_core::rules::TrRule;
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;
use hamlet_ml::classifier::Classifier;
use hamlet_ml::tree::DecisionTree;

use crate::runner::{prepare_plan, simulate_with, MonteCarloOpts, SimEstimate};
use crate::table::{f4, TextTable};

/// The tree configuration used throughout (modest capacity, so depth —
/// not the feature domains — is the binding constraint).
pub fn tree() -> DecisionTree {
    DecisionTree {
        max_depth: 6,
        min_samples_split: 4,
    }
}

/// Fig-3(B)-style sweep with the decision tree.
pub fn dfk_sweep(opts: &MonteCarloOpts) -> Vec<(usize, [SimEstimate; 3])> {
    [10usize, 50, 100, 200]
        .iter()
        .map(|&n_r| {
            let cfg = SimulationConfig {
                scenario: Scenario::LoneForeignFeature,
                d_s: 2,
                d_r: 2,
                n_r,
                p: 0.1,
                skew: FkSkew::Uniform,
            };
            (n_r, simulate_with(&tree(), &cfg, 1000, opts))
        })
        .collect()
}

/// End-to-end tree errors, JoinAll vs JoinOpt, on all seven datasets
/// (no feature selection — the tree's greedy splits already select).
pub fn end_to_end(scale: f64, seed: u64) -> Vec<(String, &'static str, f64, f64)> {
    let mut rows = Vec::new();
    for spec in DatasetSpec::all() {
        let g = spec.generate(scale, seed);
        let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
        let all = prepare_plan(
            &g.star,
            make_plan(&g.star, PlanKind::JoinAll, &TrRule::default(), n_train),
            seed,
        )
        .expect("synthetic star materializes");
        let opt = prepare_plan(
            &g.star,
            make_plan(&g.star, PlanKind::JoinOpt, &TrRule::default(), n_train),
            seed,
        )
        .expect("synthetic star materializes");
        let t = tree();
        let feats_all: Vec<usize> = (0..all.data.n_features()).collect();
        let feats_opt: Vec<usize> = (0..opt.data.n_features()).collect();
        let m_all = t.fit(&all.data, &all.split.train, &feats_all);
        let m_opt = t.fit(&opt.data, &opt.split.train, &feats_opt);
        rows.push((
            spec.name.to_string(),
            all.metric.name(),
            all.metric.eval(&m_all, &all.data, &all.split.test),
            opt.metric.eval(&m_opt, &opt.data, &opt.split.test),
        ));
    }
    rows
}

/// Full future-work report.
pub fn report(opts: &MonteCarloOpts, scale: f64, seed: u64) -> String {
    let mut out = String::from(
        "Future work: decision trees (non-linear VC dimension) under the linear-model rules\n\n",
    );
    out.push_str("(1) Fig-3(B) sweep with a depth-6 multiway tree\n");
    let mut t = TextTable::new([
        "|D_FK|",
        "UseAll err",
        "NoJoin err",
        "NoFK err",
        "NoJoin netvar",
    ]);
    for (n_r, est) in dfk_sweep(opts) {
        t.row([
            n_r.to_string(),
            f4(est[0].test_error),
            f4(est[1].test_error),
            f4(est[2].test_error),
            f4(est[1].net_variance),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(2) End-to-end tree errors, JoinAll vs JoinOpt (TR rule verdicts)\n");
    let mut e = TextTable::new(["Dataset", "Metric", "JoinAll err", "JoinOpt err"]);
    for (name, metric, a, o) in end_to_end(scale, seed) {
        e.row([name, metric.to_string(), f4(a), f4(o)]);
    }
    out.push_str(&e.render());
    out.push_str(
        "\nReading: the variance mechanism is model-agnostic — the tree's NoJoin error also\n\
         climbs with |D_FK|. Notably, UseAll climbs identically: information gain prefers the\n\
         FK's huge domain, so the greedy tree splits on FK first and the FD makes X_R useless\n\
         below it — the tree-structured analogue of the TAN pathology (appendix E), and the\n\
         reason JoinAll and JoinOpt coincide exactly for trees. The TR verdicts tuned on\n\
         Naive Bayes remain safe.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_nojoin_also_degrades_with_dfk() {
        let opts = MonteCarloOpts {
            train_sets: 6,
            repeats: 2,
            base_seed: 3,
        };
        let sweep = dfk_sweep(&opts);
        let first = &sweep[0].1; // DFK = 10
        let last = &sweep[sweep.len() - 1].1; // DFK = 200
        assert!(
            last[1].test_error >= first[1].test_error,
            "tree NoJoin should not improve with |D_FK|: {} -> {}",
            first[1].test_error,
            last[1].test_error
        );
    }

    #[test]
    fn tree_join_opt_stays_sane_on_walmart() {
        let rows = end_to_end(0.004, 3);
        let walmart = rows.iter().find(|r| r.0 == "Walmart").unwrap();
        assert!(
            walmart.3 <= walmart.2 + 0.35,
            "tree JoinOpt {} vs JoinAll {}",
            walmart.3,
            walmart.2
        );
    }
}
