//! Figure 5: why the TR rule is more conservative than the ROR rule.
//!
//! Analytic illustration: at a fixed `n`, the worst-case ROR is **high**
//! when `q_R* << |D_FK|` and **low** when `q_R* ≈ |D_FK|`; the tuple
//! ratio is identical in both cases, so the TR rule cannot tell them
//! apart (it behaves as if `q_R*` were minimal).

use hamlet_core::ror::{tuple_ratio, worst_case_ror, DEFAULT_DELTA};

use crate::table::{f2, f4, TextTable};

/// One row of the illustration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// FK domain size.
    pub d_fk: usize,
    /// Tuple ratio (same for both regimes).
    pub tr: f64,
    /// ROR when `q_R* = 2` (tiny foreign-feature domain).
    pub ror_small_qr: f64,
    /// ROR when `q_R* = |D_FK|` (foreign features as fine as the key).
    pub ror_equal_qr: f64,
}

/// Computes the illustration for a fixed `n`.
pub fn rows(n: usize) -> Vec<Fig5Row> {
    [10usize, 20, 50, 100, 200, 400]
        .iter()
        .filter(|&&d| d * 2 < n)
        .map(|&d_fk| Fig5Row {
            d_fk,
            tr: tuple_ratio(n, d_fk),
            ror_small_qr: worst_case_ror(n, d_fk, 2, DEFAULT_DELTA),
            ror_equal_qr: worst_case_ror(n, d_fk, d_fk, DEFAULT_DELTA),
        })
        .collect()
}

/// Full Figure 5 report.
pub fn report(n: usize) -> String {
    let mut t = TextTable::new(["|D_FK|", "TR", "ROR (q_R*=2)", "ROR (q_R*=|D_FK|)"]);
    for r in rows(n) {
        t.row([
            r.d_fk.to_string(),
            f2(r.tr),
            f4(r.ror_small_qr),
            f4(r.ror_equal_qr),
        ]);
    }
    format!(
        "Figure 5: TR cannot distinguish q_R* << |D_FK| (high ROR) from q_R* ~ |D_FK| (low ROR); n = {n}\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_qr_ror_is_zero() {
        for r in rows(2000) {
            assert!(r.ror_equal_qr.abs() < 1e-12, "d_fk = {}", r.d_fk);
        }
    }

    #[test]
    fn small_qr_ror_is_positive_and_growing() {
        let rs = rows(2000);
        assert!(rs.len() >= 4);
        for w in rs.windows(2) {
            assert!(w[1].ror_small_qr > w[0].ror_small_qr);
            assert!(w[1].tr < w[0].tr);
        }
    }

    #[test]
    fn report_renders() {
        let s = report(2000);
        assert!(s.contains("|D_FK|"));
        assert!(s.lines().count() > 4);
    }
}
