//! Figure 9: logistic regression with embedded L1/L2 feature selection,
//! JoinAll vs JoinOpt on the seven datasets.
//!
//! The regularization strength is tuned on the validation split from a
//! small grid (the paper uses glmnet's regularization path; a grid is
//! the equivalent protocol).

use hamlet_core::planner::{plan as make_plan, PlanKind};
use hamlet_core::rules::TrRule;
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_ml::classifier::ErrorMetric;
use hamlet_ml::logreg::{LogisticRegression, Penalty};
use hamlet_ml::model_selection::grid_search_test_error;

use crate::runner::{prepare_plan, PreparedPlan};
use crate::table::{f4, TextTable};

/// The lambda grid searched per penalty.
pub const LAMBDA_GRID: [f64; 3] = [1e-4, 1e-3, 1e-2];

/// Trains logistic regression with each lambda, keeps the best by
/// validation error, and returns its holdout test error (delegates to
/// `hamlet_ml::model_selection::grid_search_test_error`).
pub fn tuned_error(prepared: &PreparedPlan, l1: bool, epochs: usize, seed: u64) -> f64 {
    let candidates: Vec<usize> = (0..prepared.data.n_features()).collect();
    let grid: Vec<LogisticRegression> = LAMBDA_GRID
        .iter()
        .map(|&lambda| LogisticRegression {
            penalty: if l1 {
                Penalty::L1(lambda)
            } else {
                Penalty::L2(lambda)
            },
            epochs,
            learning_rate: 0.5,
            seed,
        })
        .collect();
    let (_, test_error) = grid_search_test_error(
        &grid,
        &prepared.data,
        &prepared.split.train,
        &prepared.split.validation,
        &prepared.split.test,
        &candidates,
        prepared.metric,
    );
    test_error
}

/// One dataset row of Figure 9.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Dataset name.
    pub name: &'static str,
    /// Metric used.
    pub metric: ErrorMetric,
    /// L1: JoinAll / JoinOpt test errors.
    pub l1: (f64, f64),
    /// L2: JoinAll / JoinOpt test errors.
    pub l2: (f64, f64),
}

/// Runs one dataset.
pub fn run_dataset(spec: &DatasetSpec, scale: f64, seed: u64, epochs: usize) -> Fig9Row {
    let g = spec.generate(scale, seed);
    let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
    let all = prepare_plan(
        &g.star,
        make_plan(&g.star, PlanKind::JoinAll, &TrRule::default(), n_train),
        seed,
    )
    .expect("synthetic star materializes");
    let opt = prepare_plan(
        &g.star,
        make_plan(&g.star, PlanKind::JoinOpt, &TrRule::default(), n_train),
        seed,
    )
    .expect("synthetic star materializes");
    Fig9Row {
        name: spec.name,
        metric: all.metric,
        l1: (
            tuned_error(&all, true, epochs, seed),
            tuned_error(&opt, true, epochs, seed),
        ),
        l2: (
            tuned_error(&all, false, epochs, seed),
            tuned_error(&opt, false, epochs, seed),
        ),
    }
}

/// Full Figure 9 report.
pub fn report(scale: f64, seed: u64, epochs: usize) -> String {
    let mut t = TextTable::new([
        "Dataset",
        "Error Metric",
        "L1 JoinAll",
        "L1 JoinOpt",
        "L2 JoinAll",
        "L2 JoinOpt",
    ]);
    for spec in DatasetSpec::all() {
        let r = run_dataset(&spec, scale, seed, epochs);
        t.row([
            r.name.to_string(),
            r.metric.name().to_string(),
            f4(r.l1.0),
            f4(r.l1.1),
            f4(r.l2.0),
            f4(r.l2.1),
        ]);
    }
    format!(
        "Figure 9: logistic regression with L1/L2 regularization (lambda grid {:?})\n{}",
        LAMBDA_GRID,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walmart_l1_join_opt_matches_join_all() {
        let r = run_dataset(&DatasetSpec::walmart(), 0.004, 3, 4);
        // JoinOpt should not be wildly worse under L1 (same shape as the
        // paper's Fig 9 row 1).
        assert!(
            r.l1.1 <= r.l1.0 + 0.4,
            "L1 JoinAll {} vs JoinOpt {}",
            r.l1.0,
            r.l1.1
        );
        assert!(r.l2.0.is_finite() && r.l2.1.is_finite());
    }
}
