//! Figure 11: simulation scenario 2 — all of `X_S` and `X_R` are part of
//! the true distribution (appendix D).
//!
//! (A) vary `n_S` at `(d_S, d_R, |D_FK|) = (4, 4, 40)`;
//! (B) vary `|D_FK|` at `(n_S, d_S, d_R) = (1000, 4, 4)`;
//! (C) vary `d_R` at `(n_S, d_S, |D_FK|) = (1000, 4, 100)`;
//! (D) vary `d_S` at `(n_S, d_R, |D_FK|) = (1000, 4, 40)`.

use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;

use crate::fig3::{render_panel, SweepPoint};
use crate::runner::{simulate, MonteCarloOpts};

fn cfg(d_s: usize, d_r: usize, n_r: usize) -> SimulationConfig {
    SimulationConfig {
        scenario: Scenario::AllFeatures,
        d_s,
        d_r,
        n_r,
        p: 0.1,
        skew: FkSkew::Uniform,
    }
}

/// Panel (A): vary `n_S`.
pub fn panel_a(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    [250usize, 500, 1000, 2000, 4000]
        .iter()
        .map(|&n_s| (n_s, simulate(&cfg(4, 4, 40), n_s, opts)))
        .collect()
}

/// Panel (B): vary `|D_FK|`.
pub fn panel_b(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    [10usize, 25, 50, 100, 200]
        .iter()
        .map(|&n_r| (n_r, simulate(&cfg(4, 4, n_r), 1000, opts)))
        .collect()
}

/// Panel (C): vary `d_R`.
pub fn panel_c(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&d_r| (d_r, simulate(&cfg(4, d_r, 100), 1000, opts)))
        .collect()
}

/// Panel (D): vary `d_S`.
pub fn panel_d(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    [0usize, 2, 4, 8]
        .iter()
        .map(|&d_s| (d_s, simulate(&cfg(d_s, 4, 40), 1000, opts)))
        .collect()
}

/// Full Figure 11 report.
pub fn report(opts: &MonteCarloOpts) -> String {
    let mut out =
        String::from("Figure 11: scenario 2 (all of X_S and X_R in the true distribution)\n\n");
    out.push_str("(A) vary n_S; (d_S, d_R, |D_FK|) = (4, 4, 40)\n");
    out.push_str(&render_panel("n_S", &panel_a(opts)));
    out.push_str("\n(B) vary |D_FK|; (n_S, d_S, d_R) = (1000, 4, 4)\n");
    out.push_str(&render_panel("|D_FK|", &panel_b(opts)));
    out.push_str("\n(C) vary d_R; (n_S, d_S, |D_FK|) = (1000, 4, 100)\n");
    out.push_str(&render_panel("d_R", &panel_c(opts)));
    out.push_str("\n(D) vary d_S; (n_S, d_R, |D_FK|) = (1000, 4, 40)\n");
    out.push_str(&render_panel("d_S", &panel_d(opts)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario2_nojoin_still_works_at_large_n() {
        let opts = MonteCarloOpts {
            train_sets: 6,
            repeats: 2,
            base_seed: 23,
        };
        let [use_all, no_join, _] = simulate(&cfg(2, 2, 10), 2000, &opts);
        // With all features in the concept and a small FK domain, NoJoin
        // (FK as representative) should track UseAll.
        assert!(
            no_join.test_error <= use_all.test_error + 0.08,
            "UseAll {} vs NoJoin {}",
            use_all.test_error,
            no_join.test_error
        );
    }
}
