//! Per-family Monte-Carlo threshold revalidation.
//!
//! The paper tuned its `(rho, tau)` on Naive Bayes simulations (Fig 4)
//! and argued the rules transfer across linear-capacity models. This
//! module re-runs the same simulation grid *per classifier family* —
//! Naive Bayes, logistic regression, TAN, CART, GBT — and refits the
//! most permissive safe thresholds with the Fig-4 tuning machinery
//! (`hamlet_core::tuning`). The qualitative reproduction target is
//! arXiv 1704.00485: high-capacity tree learners keep overfitting the
//! raw FK at tuple ratios where Naive Bayes has converged, so their
//! tuned `tau` rises and `rho` falls relative to the paper defaults
//! (the values `hamlet_core::family` bakes in).

use hamlet_core::family::ModelFamily;
use hamlet_core::ror::{worst_case_ror, DEFAULT_DELTA};
use hamlet_core::tuning::{tune_rules, TuningPoint};
use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;
use hamlet_ml::logreg::LogisticRegression;
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::tan::Tan;
use hamlet_trees::{CartTree, Gbt};

use crate::runner::{simulate_with, MonteCarloOpts, SimEstimate};
use crate::table::{f4, TextTable};

/// Error-increase tolerance for declaring a grid point "safe to
/// avoid" — the same 0.001 the Fig-4 tuning uses.
pub const TUNING_TOLERANCE: f64 = 0.001;

/// The `n_R` grid every family is swept over (entity size fixed at
/// `n_s`, so the tuple ratio is `n_s / n_R`).
pub const N_R_GRID: [usize; 5] = [10, 25, 50, 100, 200];

/// One grid point of a family's revalidation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyPoint {
    /// Attribute-table size at this point.
    pub n_r: usize,
    /// Tuple ratio `n_train / n_R`.
    pub tuple_ratio: f64,
    /// Worst-case ROR at this point.
    pub ror: f64,
    /// `NoJoin - UseAll` average test error (the avoidance penalty).
    pub error_increase: f64,
    /// The three estimates, in [`crate::runner::FeatureSetChoice::ALL`]
    /// order (UseAll, NoJoin, NoFk).
    pub estimates: [SimEstimate; 3],
}

/// A family's re-tuned thresholds over the simulation grid.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyThresholds {
    /// The classifier family the sweep ran.
    pub family: ModelFamily,
    /// Re-tuned `rho` (most permissive safe ROR threshold), `None` when
    /// no grid point was safe.
    pub rho: Option<f64>,
    /// Re-tuned `tau` (most permissive safe TR threshold), `None` when
    /// no grid point was safe.
    pub tau: Option<f64>,
    /// The grid the tuning saw, in ascending `n_r` order.
    pub points: Vec<FamilyPoint>,
}

impl FamilyThresholds {
    /// Renders the sweep as a text table plus the tuned thresholds.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["n_R", "TR", "ROR", "UseAll", "NoJoin", "dErr"]);
        for p in &self.points {
            t.row([
                p.n_r.to_string(),
                f4(p.tuple_ratio),
                f4(p.ror),
                f4(p.estimates[0].test_error),
                f4(p.estimates[1].test_error),
                f4(p.error_increase),
            ]);
        }
        format!(
            "Family {} revalidation (tolerance {}):\n{}\ntuned rho = {}, tau = {}\n",
            self.family,
            TUNING_TOLERANCE,
            t.render(),
            self.rho.map(f4).unwrap_or_else(|| "-".into()),
            self.tau.map(f4).unwrap_or_else(|| "-".into()),
        )
    }
}

/// The simulation configuration at one grid point: scenario 1 with one
/// lone foreign feature, the regime the paper's Fig 3/4 tuning used.
fn grid_config(n_r: usize) -> SimulationConfig {
    SimulationConfig {
        scenario: Scenario::LoneForeignFeature,
        d_s: 2,
        d_r: 4,
        n_r,
        p: 0.1,
        skew: FkSkew::Uniform,
    }
}

/// Runs the simulation grid for one family and re-tunes its
/// `(rho, tau)` from the resulting (statistic, error-increase) points.
///
/// `n_s` is both the entity-table and training-set size, so the tuple
/// ratio at a grid point is `n_s / n_R`. Runtime scales with
/// `opts.train_sets * opts.repeats`; pass reduced opts for smoke runs.
pub fn revalidate_family(
    family: ModelFamily,
    n_s: usize,
    opts: &MonteCarloOpts,
) -> FamilyThresholds {
    let points: Vec<FamilyPoint> = N_R_GRID
        .iter()
        .map(|&n_r| {
            let cfg = grid_config(n_r);
            let estimates = simulate_family(family, &cfg, n_s, opts);
            let use_all = estimates[0].test_error;
            let no_join = estimates[1].test_error;
            FamilyPoint {
                n_r,
                tuple_ratio: n_s as f64 / n_r as f64,
                ror: worst_case_ror(n_s, n_r, cfg.d_r, DEFAULT_DELTA),
                error_increase: no_join - use_all,
                estimates,
            }
        })
        .collect();
    let ror_points: Vec<TuningPoint> = points
        .iter()
        .map(|p| TuningPoint {
            statistic: p.ror,
            error_increase: p.error_increase,
        })
        .collect();
    let tr_points: Vec<TuningPoint> = points
        .iter()
        .map(|p| TuningPoint {
            statistic: p.tuple_ratio,
            error_increase: p.error_increase,
        })
        .collect();
    let (rho, tau) = tune_rules(&ror_points, &tr_points, TUNING_TOLERANCE);
    FamilyThresholds {
        family,
        rho,
        tau,
        points,
    }
}

/// Dispatches [`simulate_with`] over the family's learner. Tree
/// configurations are kept modest so the sweep's cost stays dominated
/// by replication, not by any single fit.
pub fn simulate_family(
    family: ModelFamily,
    cfg: &SimulationConfig,
    n_s: usize,
    opts: &MonteCarloOpts,
) -> [SimEstimate; 3] {
    match family {
        ModelFamily::NaiveBayes => simulate_with(&NaiveBayes::default(), cfg, n_s, opts),
        ModelFamily::LogisticRegression => {
            simulate_with(&LogisticRegression::default(), cfg, n_s, opts)
        }
        ModelFamily::Tan => simulate_with(&Tan::default(), cfg, n_s, opts),
        ModelFamily::DecisionTree => simulate_with(&CartTree::default(), cfg, n_s, opts),
        ModelFamily::Gbt => {
            let gbt = Gbt {
                rounds: 10,
                ..Gbt::default()
            };
            simulate_with(&gbt, cfg, n_s, opts)
        }
    }
}

/// Revalidates every family and renders a comparison table — the
/// `retune` CLI surface.
pub fn revalidate_all(n_s: usize, opts: &MonteCarloOpts) -> Vec<FamilyThresholds> {
    ModelFamily::ALL
        .iter()
        .map(|&f| revalidate_family(f, n_s, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_opts() -> MonteCarloOpts {
        MonteCarloOpts {
            train_sets: 4,
            repeats: 2,
            base_seed: 7,
        }
    }

    #[test]
    fn grid_points_carry_monotone_tuple_ratio() {
        let t = revalidate_family(ModelFamily::NaiveBayes, 400, &smoke_opts());
        assert_eq!(t.points.len(), N_R_GRID.len());
        for w in t.points.windows(2) {
            assert!(w[0].tuple_ratio > w[1].tuple_ratio);
        }
        assert!(t.render().contains("Family naive_bayes"));
    }

    #[test]
    fn trees_retune_more_conservative_than_nb_in_some_regime() {
        // The qualitative arXiv 1704.00485 reproduction: on the same
        // grid, the tree family's avoidance penalty at moderate tuple
        // ratios exceeds Naive Bayes' — so its tuned tau is at least
        // NB's, and strictly higher (or untunable) in this regime.
        let opts = smoke_opts();
        let nb = revalidate_family(ModelFamily::NaiveBayes, 400, &opts);
        let tree = revalidate_family(ModelFamily::DecisionTree, 400, &opts);
        let nb_tau = nb.tau.unwrap_or(f64::INFINITY);
        let tree_tau = tree.tau.unwrap_or(f64::INFINITY);
        assert!(
            tree_tau >= nb_tau,
            "tree tau {tree_tau} should not be more permissive than NB tau {nb_tau}\n{}\n{}",
            nb.render(),
            tree.render()
        );
        // And somewhere on the grid the tree pays a strictly larger
        // avoidance penalty than NB does.
        let worse_somewhere = nb
            .points
            .iter()
            .zip(&tree.points)
            .any(|(n, t)| t.error_increase > n.error_increase + 1e-9);
        assert!(
            worse_somewhere,
            "expected the tree to pay a larger NoJoin penalty somewhere\n{}\n{}",
            nb.render(),
            tree.render()
        );
    }
}
