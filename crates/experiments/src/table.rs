//! Plain-text table rendering for experiment reports.

/// A simple left-aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (for plotting tools); cells containing
    /// commas or quotes are quoted.
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 4 decimals (the paper's error precision).
pub fn f4(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.4}")
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("longer"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f4(0.12345), "0.1235");
        assert_eq!(f4(f64::NAN), "-");
        assert_eq!(f2(12.345), "12.35");
    }

    #[test]
    fn csv_rendering() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1", "x,y"]);
        t.row(["2", "say \"hi\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,\"x,y\"");
        assert_eq!(lines[2], "2,\"say \"\"hi\"\"\"");
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
