//! The `discovery-accuracy` scenario: schema discovery measured against
//! datagen ground truth.
//!
//! Every built-in [`DatasetSpec`] plants a known star schema — FK edges
//! `entity.FK_i -> R_i` and the implied FDs `FK_i -> X_Ri`. This
//! scenario exports each generated dataset as raw CSVs (no manifest),
//! runs [`discover_corpus`] over them, and asserts the contract the
//! subsystem promises:
//!
//! 1. **Zero false negatives.** Every planted FK edge and every planted
//!    FD is recovered and accepted, with journaled evidence.
//! 2. **No phantom edges.** The accepted edge set is *exactly* the
//!    planted one — labels from differently-named domains never collide,
//!    so any extra edge would be a miner bug, not noise.
//! 3. **Decision parity.** The advisor's per-join verdict over the
//!    discovered star equals the verdict over the declared in-memory
//!    star, for every spec whose FK domains are all closed. (Open-ness
//!    is task metadata — "will deployment see new keys?" — and is not
//!    recoverable from a snapshot, so open-FK specs are exempt from
//!    parity and say so in the report.)
//!
//! The `discovery_accuracy` binary runs the scenario and exits nonzero
//! on any violated assertion.

use std::collections::BTreeMap;
use std::path::Path;

use hamlet_core::advisor::{advise, AdvisorConfig};
use hamlet_core::ModelFamily;
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_discovery::{discover_corpus, DiscoveryConfig, FdScope};
use hamlet_relational::{write_csv, StarSchema};

/// Scale for the exported corpora: big enough that every attribute-table
/// key is referenced, small enough to keep the scenario in CI budgets.
const SCALE: f64 = 0.02;

fn ensure(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

/// Renders a generated star as the raw CSV corpus an analyst would hand
/// over: one file per base table, lowercase stems, no manifest.
pub fn corpus_of(star: &StarSchema) -> BTreeMap<String, String> {
    let mut corpus = BTreeMap::new();
    corpus.insert(
        format!("{}.csv", star.entity().name().to_lowercase()),
        write_csv(star.entity(), ','),
    );
    for at in star.attributes() {
        corpus.insert(
            format!("{}.csv", at.table.name().to_lowercase()),
            write_csv(&at.table, ','),
        );
    }
    corpus
}

/// The advisor verdict reduced to what must survive discovery: one
/// `(fk, avoid, strategy)` row per join, FK-name keyed (table names
/// change case across the CSV round-trip; FK column names do not).
fn verdicts(
    star: &StarSchema,
    config: &AdvisorConfig,
) -> Result<Vec<(String, bool, String)>, String> {
    let report = advise(star, star.n_s() / 2, config).map_err(|e| e.to_string())?;
    let mut rows: Vec<(String, bool, String)> = report
        .joins
        .iter()
        .map(|j| (j.fk.clone(), j.avoid, format!("{:?}", j.strategy)))
        .collect();
    rows.sort();
    Ok(rows)
}

/// Runs the scenario over every built-in dataset and returns the
/// human-readable report; any violated assertion is an `Err`.
pub fn report(seed: u64) -> Result<String, String> {
    let mut out = String::from("discovery-accuracy scenario\n");
    for spec in DatasetSpec::all() {
        let g = spec.generate(SCALE, seed);
        let corpus = corpus_of(&g.star);
        let cfg = DiscoveryConfig {
            target: Some(spec.target.to_string()),
            ..DiscoveryConfig::default()
        };
        let d = discover_corpus(&corpus, &cfg).map_err(|e| format!("{}: {e}", spec.name))?;

        // 1. Zero false negatives: every planted FK edge recovered.
        let accepted: Vec<_> = d.report.accepted_fks().collect();
        for at in g.star.attributes() {
            let table = at.table.name().to_lowercase();
            ensure(
                accepted
                    .iter()
                    .any(|e| e.fk_column == at.fk && e.key_table == table),
                &format!(
                    "{}: planted edge {} -> {} not recovered",
                    spec.name, at.fk, table
                ),
            )?;
        }
        // 2. No phantom edges.
        ensure(
            accepted.len() == g.star.k(),
            &format!(
                "{}: {} edges accepted, {} planted",
                spec.name,
                accepted.len(),
                g.star.k()
            ),
        )?;
        // 1b. Every planted FD `FK -> X_R` accepted, evidence attached.
        let mut planted_fds = 0usize;
        for at in g.star.attributes() {
            let table = at.table.name().to_lowercase();
            for feature in at.feature_names() {
                planted_fds += 1;
                ensure(
                    d.report.fds.iter().any(|f| {
                        f.scope == FdScope::AttributeTable
                            && f.table == table
                            && f.determinant == at.fk
                            && f.dependent == feature
                            && f.accepted
                            && f.violations == 0
                    }),
                    &format!(
                        "{}: planted FD {}.{} -> {} not verified",
                        spec.name, table, at.fk, feature
                    ),
                )?;
            }
        }
        // Evidence discipline: every candidate journaled with a reason,
        // every column examined as a key candidate.
        ensure(
            d.report.fks.iter().all(|e| !e.reason.is_empty()),
            &format!("{}: an FK candidate has no journaled reason", spec.name),
        )?;
        let n_columns: usize = corpus
            .values()
            .filter_map(|text| text.lines().next().map(|h| h.split(',').count()))
            .sum();
        ensure(
            d.report.keys.len() == n_columns,
            &format!(
                "{}: {} key candidates journaled, {} columns in the corpus",
                spec.name,
                d.report.keys.len(),
                n_columns
            ),
        )?;

        // 3. Decision parity against the declared star.
        let all_closed = (0..g.star.k()).all(|i| g.star.fk_closed(i));
        let parity = if all_closed {
            let config = AdvisorConfig::for_family(ModelFamily::NaiveBayes);
            let declared = verdicts(&g.star, &config)?;
            let discovered_star = d
                .manifest
                .load_with(Path::new(""), |p| {
                    corpus
                        .get(&p.to_string_lossy().into_owned())
                        .cloned()
                        .ok_or_else(|| {
                            std::io::Error::new(std::io::ErrorKind::NotFound, "missing corpus file")
                        })
                })
                .map_err(|e| format!("{}: discovered manifest failed to load: {e}", spec.name))?;
            let mined = verdicts(&discovered_star, &config)?;
            ensure(
                declared == mined,
                &format!(
                    "{}: advisor verdicts differ\n  declared:   {declared:?}\n  discovered: {mined:?}",
                    spec.name
                ),
            )?;
            "advisor parity exact".to_string()
        } else {
            "parity exempt (open FK domain is task metadata)".to_string()
        };

        out.push_str(&format!(
            "{:<14} {} edge(s), {} FD(s) recovered, 0 false negatives; {}\n",
            spec.name,
            accepted.len(),
            planted_fds,
            parity
        ));
    }
    out.push_str("discovery-accuracy: all datasets passed\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_recovers_every_planted_schema() {
        let out = report(crate::DEFAULT_SEED).unwrap_or_else(|e| panic!("scenario failed: {e}"));
        assert!(out.contains("all datasets passed"), "{out}");
        assert!(out.contains("advisor parity exact"), "{out}");
    }
}
