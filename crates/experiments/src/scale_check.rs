//! Scale-invariance validation for the joint-shrink substitution.
//!
//! DESIGN.md §3 scales `n_S` and every `n_Ri` jointly so experiments run
//! at a fraction of the paper's row counts while preserving the tuple
//! ratios exactly and the RORs to first order. This experiment *checks*
//! that claim: across a range of scales, every rule verdict on every
//! attribute table must match the full-scale verdict, and the ROR drift
//! must stay small.

use hamlet_core::planner::join_stats;
use hamlet_core::rules::{DecisionRule, RorRule, TrRule};
use hamlet_datagen::realistic::DatasetSpec;

use crate::table::{f2, f4, TextTable};

/// Verdicts and statistics for every table at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSnapshot {
    /// The scale factor.
    pub scale: f64,
    /// Per table: `(label, tr, ror, tr_avoid, ror_avoid)`.
    pub tables: Vec<(String, f64, f64, bool, bool)>,
}

/// Takes a snapshot of all 15 tables at one scale.
pub fn snapshot(scale: f64, seed: u64) -> ScaleSnapshot {
    let tr = TrRule::default();
    let ror = RorRule::default();
    let mut tables = Vec::new();
    for spec in DatasetSpec::all() {
        let g = spec.generate(scale, seed);
        let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
        for (i, at) in spec.tables.iter().enumerate() {
            let stats = join_stats(&g.star, i, n_train);
            tables.push((
                format!("{}.{}", spec.name, at.table),
                tr.statistic(&stats),
                ror.statistic(&stats),
                tr.decide(&stats).is_avoid(),
                ror.decide(&stats).is_avoid(),
            ));
        }
    }
    ScaleSnapshot { scale, tables }
}

/// Compares snapshots against a reference: counts verdict flips and the
/// worst ROR drift.
pub fn drift(reference: &ScaleSnapshot, other: &ScaleSnapshot) -> (usize, f64) {
    let mut flips = 0;
    let mut worst_ror = 0.0f64;
    for (a, b) in reference.tables.iter().zip(&other.tables) {
        assert_eq!(a.0, b.0, "table order must match");
        if a.3 != b.3 || a.4 != b.4 {
            flips += 1;
        }
        worst_ror = worst_ror.max((a.2 - b.2).abs());
    }
    (flips, worst_ror)
}

/// Full report over a scale sweep (reference = the largest scale).
pub fn report(scales: &[f64], seed: u64) -> String {
    assert!(!scales.is_empty());
    let mut sorted: Vec<f64> = scales.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let reference = snapshot(sorted[0], seed);
    let mut t = TextTable::new([
        "scale",
        "verdict flips (of 30)",
        "max |ROR drift|",
        "example TR (Walmart.Indicators)",
    ]);
    for &scale in &sorted {
        let snap = snapshot(scale, seed);
        let (flips, ror_drift) = drift(&reference, &snap);
        t.row([
            format!("{scale}"),
            flips.to_string(),
            f4(ror_drift),
            f2(snap.tables[0].1),
        ]);
    }
    format!(
        "Scale-invariance check (reference scale {}): joint shrink preserves rule behaviour\n{}",
        sorted[0],
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_stable_from_5_percent_up() {
        let reference = snapshot(0.2, 3);
        for scale in [0.05, 0.1] {
            let snap = snapshot(scale, 3);
            let (flips, ror_drift) = drift(&reference, &snap);
            assert_eq!(flips, 0, "verdicts flipped at scale {scale}");
            // The log terms drift slowly with absolute n; what matters is
            // that no verdict crosses a threshold (flips == 0 above).
            assert!(
                ror_drift < 1.0,
                "ROR drift {ror_drift} too large at scale {scale}"
            );
        }
    }

    #[test]
    fn tuple_ratios_are_exactly_preserved() {
        let a = snapshot(0.05, 3);
        let b = snapshot(0.2, 3);
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            if tb.1 > 1_000.0 {
                // Tiny attribute tables hit the 4-row generation floor;
                // their TRs are distorted but sit thousands of times past
                // the threshold, so the decision is unaffected.
                continue;
            }
            let rel = (ta.1 - tb.1).abs() / tb.1;
            assert!(rel < 0.07, "{}: TR {} vs {}", ta.0, ta.1, tb.1);
        }
    }
}
