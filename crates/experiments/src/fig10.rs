//! Figure 10: remaining scenario-1 sweeps (appendix D).
//!
//! (A) vary `d_R` at `(n_S, d_S, |D_FK|, p) = (1000, 4, 100, 0.1)`;
//! (B) vary `d_S` at `(n_S, d_R, |D_FK|, p) = (1000, 4, 40, 0.1)`;
//! (C) vary `p`   at `(n_S, d_S, d_R, |D_FK|) = (1000, 4, 4, 200)`.

use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;

use crate::fig3::{render_panel, SweepPoint};
use crate::runner::{simulate, MonteCarloOpts};

/// Panel (A): vary `d_R`.
pub fn panel_a(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&d_r| {
            let cfg = SimulationConfig {
                scenario: Scenario::LoneForeignFeature,
                d_s: 4,
                d_r,
                n_r: 100,
                p: 0.1,
                skew: FkSkew::Uniform,
            };
            (d_r, simulate(&cfg, 1000, opts))
        })
        .collect()
}

/// Panel (B): vary `d_S`.
pub fn panel_b(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    [0usize, 2, 4, 8, 16]
        .iter()
        .map(|&d_s| {
            let cfg = SimulationConfig {
                scenario: Scenario::LoneForeignFeature,
                d_s,
                d_r: 4,
                n_r: 40,
                p: 0.1,
                skew: FkSkew::Uniform,
            };
            (d_s, simulate(&cfg, 1000, opts))
        })
        .collect()
}

/// Panel (C): vary `p` (values reported in percent for the table key).
pub fn panel_c(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    [5usize, 10, 20, 30, 40]
        .iter()
        .map(|&p_pct| {
            let cfg = SimulationConfig {
                scenario: Scenario::LoneForeignFeature,
                d_s: 4,
                d_r: 4,
                n_r: 200,
                p: p_pct as f64 / 100.0,
                skew: FkSkew::Uniform,
            };
            (p_pct, simulate(&cfg, 1000, opts))
        })
        .collect()
}

/// Full Figure 10 report.
pub fn report(opts: &MonteCarloOpts) -> String {
    let mut out = String::from("Figure 10: scenario 1, remaining parameter sweeps\n\n");
    out.push_str("(A) vary d_R; (n_S, d_S, |D_FK|, p) = (1000, 4, 100, 0.1)\n");
    out.push_str(&render_panel("d_R", &panel_a(opts)));
    out.push_str("\n(B) vary d_S; (n_S, d_R, |D_FK|, p) = (1000, 4, 40, 0.1)\n");
    out.push_str(&render_panel("d_S", &panel_b(opts)));
    out.push_str("\n(C) vary p (%); (n_S, d_S, d_R, |D_FK|) = (1000, 4, 4, 200)\n");
    out.push_str(&render_panel("p (%)", &panel_c(opts)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_noise_means_higher_error_for_everyone() {
        let opts = MonteCarloOpts {
            train_sets: 6,
            repeats: 2,
            base_seed: 17,
        };
        let pts = panel_c(&opts);
        let first = &pts[0].1; // p = 0.05
        let last = &pts[pts.len() - 1].1; // p = 0.40
        for c in 0..3 {
            assert!(
                last[c].test_error > first[c].test_error,
                "model class {c}: {} -> {}",
                first[c].test_error,
                last[c].test_error
            );
        }
    }
}
