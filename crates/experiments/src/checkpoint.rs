//! Checkpoint/resume for Monte-Carlo simulation cells.
//!
//! A full paper-protocol run (`HAMLET_TRAIN_SETS=100`,
//! `HAMLET_REPEATS=100`) takes long enough that a crash — OOM-kill,
//! preemption, an injected failpoint — throwing away hours of fits is a
//! real operational hazard. This module persists each completed
//! `(repeat, train-set)` cell of [`crate::runner::simulate_with`] as one
//! atomically-written JSON file; a rerun with the same configuration
//! loads finished cells instead of recomputing them and lands on
//! bit-for-bit identical estimates (cells hold the exact `u32`
//! predictions, and the downstream bias/variance arithmetic is
//! deterministic).
//!
//! Layout: `<root>/<config-key>/rep<r>_t<t>.json`, where `<config-key>`
//! is an FNV-1a hash of everything that determines the predictions
//! (classifier type, simulation config, `n_s`, replication counts, base
//! seed). Changing any of those starts a fresh checkpoint set instead of
//! silently resuming with stale cells.
//!
//! Setting [`CHECKPOINT_DIR_VAR`] makes every `simulate_with` caller —
//! including the fig binaries — checkpoint transparently. The `exit` /
//! `panic` modes of the `runner.cell` failpoint simulate crashes at cell
//! granularity; an `io`-mode failure degrades to running without the
//! checkpoint (loudly: warning + counter), never to aborting the
//! experiment.

use std::path::{Path, PathBuf};

use hamlet_obs::json::{obj, Json};

/// Environment variable enabling transparent checkpointing: the root
/// directory for checkpoint sets.
pub const CHECKPOINT_DIR_VAR: &str = "HAMLET_CHECKPOINT_DIR";

/// Default checkpoint root used by CLI `--resume` when the variable is
/// unset.
pub const DEFAULT_CHECKPOINT_DIR: &str = "results/checkpoints";

/// FNV-1a (64-bit) of the configuration fingerprint, hex-encoded.
pub fn config_key(fingerprint: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in fingerprint.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// A per-configuration checkpoint directory storing one file per
/// completed Monte-Carlo cell.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (lazily — directories are created on first write) the
    /// checkpoint set for `key` under `root`.
    pub fn open(root: &Path, key: &str) -> Self {
        Self {
            dir: root.join(key),
        }
    }

    /// Opens the store for `key` when [`CHECKPOINT_DIR_VAR`] is set;
    /// `None` disables checkpointing.
    pub fn from_env(key: &str) -> Option<Self> {
        std::env::var_os(CHECKPOINT_DIR_VAR).map(|root| Self::open(Path::new(&root), key))
    }

    /// The directory holding this configuration's cells.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn cell_path(&self, rep: usize, t: usize) -> PathBuf {
        self.dir.join(format!("rep{rep}_t{t}.json"))
    }

    /// Loads one completed cell: the three per-choice prediction vectors
    /// (UseAll, NoJoin, NoFK). Returns `None` when the cell is absent;
    /// an unreadable or corrupt cell (e.g. torn by a crash that bypassed
    /// the atomic writer) is reported loudly and recomputed.
    pub fn load_cell(&self, rep: usize, t: usize) -> Option<[Vec<u32>; 3]> {
        let path = self.cell_path(rep, t);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                hamlet_obs::record_warning(format!(
                    "checkpoint cell {} unreadable ({e}); recomputing",
                    path.display()
                ));
                return None;
            }
        };
        match parse_cell(&text) {
            Some(preds) => {
                hamlet_obs::counter_add!("hamlet_checkpoint_cells_reused_total", 1);
                Some(preds)
            }
            None => {
                hamlet_obs::record_warning(format!(
                    "checkpoint cell {} is corrupt; recomputing",
                    path.display()
                ));
                None
            }
        }
    }

    /// Persists one completed cell atomically (tmp + fsync + rename).
    /// Carries the `runner.cell` failpoint so chaos runs can crash the
    /// experiment at an exact cell boundary.
    pub fn store_cell(&self, rep: usize, t: usize, preds: &[Vec<u32>; 3]) -> std::io::Result<()> {
        hamlet_chaos::fail_at!("runner.cell")?;
        let entry = obj(vec![
            ("rep", Json::Num(rep as f64)),
            ("t", Json::Num(t as f64)),
            (
                "preds",
                Json::Arr(
                    preds
                        .iter()
                        .map(|p| Json::Arr(p.iter().map(|&v| Json::Num(f64::from(v))).collect()))
                        .collect(),
                ),
            ),
        ]);
        hamlet_obs::atomic_write(&self.cell_path(rep, t), entry.to_string().as_bytes())?;
        hamlet_obs::counter_add!("hamlet_checkpoint_cells_written_total", 1);
        Ok(())
    }
}

/// Parses a cell file back into the three prediction vectors; `None` on
/// any shape mismatch.
fn parse_cell(text: &str) -> Option<[Vec<u32>; 3]> {
    let v = Json::parse(text).ok()?;
    let arrs = v.get("preds")?.as_arr()?;
    if arrs.len() != 3 {
        return None;
    }
    let mut out: [Vec<u32>; 3] = Default::default();
    for (slot, arr) in out.iter_mut().zip(arrs) {
        for n in arr.as_arr()? {
            let f = n.as_f64()?;
            if f.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&f) {
                return None;
            }
            slot.push(f as u32);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_chaos::failpoint;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir()
            .join("hamlet_checkpoint_test")
            .join(name)
    }

    fn sample_preds() -> [Vec<u32>; 3] {
        [vec![0, 1, 1, 0], vec![1, 1, 0, 0], vec![0, 0, 0, 1]]
    }

    #[test]
    fn config_key_is_stable_and_sensitive() {
        let a = config_key("NaiveBayes|cfg|1000|100|8|7");
        assert_eq!(a, config_key("NaiveBayes|cfg|1000|100|8|7"));
        assert_ne!(a, config_key("NaiveBayes|cfg|1000|100|8|8"));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn store_then_load_round_trips() {
        let root = scratch("roundtrip");
        let _ = std::fs::remove_dir_all(&root);
        let store = CheckpointStore::open(&root, "k1");
        assert!(store.load_cell(0, 0).is_none());
        store.store_cell(0, 0, &sample_preds()).unwrap();
        assert_eq!(store.load_cell(0, 0), Some(sample_preds()));
        // Different cell coordinates stay independent.
        assert!(store.load_cell(0, 1).is_none());
        assert!(store.load_cell(1, 0).is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_cell_is_recomputed_not_trusted() {
        let root = scratch("corrupt");
        let _ = std::fs::remove_dir_all(&root);
        let store = CheckpointStore::open(&root, "k1");
        store.store_cell(2, 3, &sample_preds()).unwrap();
        // Simulate a torn write from a crash that bypassed the atomic
        // writer: truncate the file mid-token.
        let path = store.dir().join("rep2_t3.json");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(store.load_cell(2, 3).is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn parse_cell_rejects_bad_shapes() {
        assert!(parse_cell("{}").is_none());
        assert!(parse_cell("{\"preds\":[[1],[2]]}").is_none()); // 2 arms
        assert!(parse_cell("{\"preds\":[[1.5],[0],[0]]}").is_none()); // non-int
        assert!(parse_cell("{\"preds\":[[-1],[0],[0]]}").is_none()); // negative
        assert!(parse_cell("{\"preds\":[[],[],[]]}").is_some());
    }

    #[test]
    fn failpoint_blocks_cell_writes() {
        let _g = failpoint::serial();
        let root = scratch("failpoint");
        let _ = std::fs::remove_dir_all(&root);
        let store = CheckpointStore::open(&root, "k1");
        failpoint::set_failpoints("runner.cell=io@1").unwrap();
        let err = store.store_cell(0, 0, &sample_preds()).unwrap_err();
        assert!(err.to_string().contains("runner.cell"), "{err}");
        // Second write goes through (the @1 site is one-shot).
        store.store_cell(0, 0, &sample_preds()).unwrap();
        failpoint::clear_failpoints();
        assert_eq!(store.load_cell(0, 0), Some(sample_preds()));
        std::fs::remove_dir_all(&root).ok();
    }
}
