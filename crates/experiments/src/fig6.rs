//! Figure 6: dataset statistics table.
//!
//! Prints the seven synthetic datasets' shape statistics at full scale
//! (they match the paper's Figure 6 by construction — asserted by a unit
//! test in `hamlet-datagen`) and at the experiment scale actually
//! generated.

use hamlet_datagen::realistic::DatasetSpec;

use crate::table::TextTable;

/// Full Figure 6 report at a given generation scale.
pub fn report(scale: f64) -> String {
    let mut t = TextTable::new([
        "Dataset",
        "#Y",
        "(n_S, d_S)",
        "k",
        "k'",
        "(n_Ri, d_Ri), i = 1 to k",
        "scaled n_S",
        "scaled n_Ri",
    ]);
    for spec in DatasetSpec::all() {
        let pairs: Vec<String> = spec
            .tables
            .iter()
            .map(|at| format!("({}, {})", at.n_rows, at.features.len()))
            .collect();
        let scaled: Vec<String> = (0..spec.tables.len())
            .map(|i| spec.scaled_n_r(i, scale).to_string())
            .collect();
        t.row([
            spec.name.to_string(),
            spec.n_classes.to_string(),
            format!("({}, {})", spec.n_s, spec.entity_features.len()),
            spec.tables.len().to_string(),
            spec.tables.iter().filter(|x| x.closed).count().to_string(),
            pairs.join(", "),
            spec.scaled_n_s(scale).to_string(),
            scaled.join(", "),
        ]);
    }
    format!(
        "Figure 6: dataset statistics (synthetic analogs; scale = {scale})\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_lists_all_seven() {
        let s = report(0.1);
        for name in [
            "Walmart",
            "Expedia",
            "Flights",
            "Yelp",
            "MovieLens1M",
            "LastFM",
            "BookCrossing",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("(2340, 9)"));
        assert!(s.contains("(50000, 4)"));
    }
}
