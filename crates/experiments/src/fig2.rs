//! Figure 2, quantified: the relationship between hypothesis spaces.
//!
//! The paper's Figure 2 draws `H_X = H_FK ⊇ H_XR ⊇ H_Xr` pictorially;
//! with `core::hypothesis` the containments are computable on any
//! attribute-table instance. For a binary target, `log2 |H_Z|` equals the
//! number of `Z`-equivalence classes, so the figure becomes a table of
//! class counts — and the simulation worlds let us watch the gap between
//! `H_FK` and `H_XR` open as `|D_FK|` outgrows the number of distinct
//! `X_R` rows.

use hamlet_core::hypothesis::{check_prop_3_3, fk_partition, partition_by, xr_partition};
use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;

use crate::table::TextTable;

/// One row of the quantified figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig2Row {
    /// FK domain size.
    pub n_r: usize,
    /// Foreign features.
    pub d_r: usize,
    /// `log2 |H_FK|` (= number of FK values = `n_R`).
    pub log2_h_fk: usize,
    /// `log2 |H_XR|` (= distinct joint `X_R` rows).
    pub log2_h_xr: usize,
    /// `log2 |H_Xr|` for the lone designated feature (= its distinct
    /// values, at most 2 here).
    pub log2_h_xr_lone: usize,
    /// Whether `H_XR = H_FK` on this instance (all `X_R` rows distinct).
    pub spaces_equal: bool,
}

/// Computes the figure over simulation worlds.
pub fn rows(seed: u64) -> Vec<Fig2Row> {
    let mut out = Vec::new();
    for &n_r in &[8usize, 32, 128, 512] {
        for &d_r in &[2usize, 4, 10] {
            let world = SimulationConfig {
                scenario: Scenario::LoneForeignFeature,
                d_s: 1,
                d_r,
                n_r,
                p: 0.1,
                skew: FkSkew::Uniform,
            }
            .build_world(seed);
            let r = world.r_table();
            let fk = fk_partition(r).expect("simulation R has a primary key");
            let xr = xr_partition(r).expect("simulation R features are known");
            let lone = partition_by(r, &["xr0"]).expect("simulation R has xr0");
            let (refines, equal) = check_prop_3_3(r).expect("simulation R is well-formed");
            assert!(refines, "Prop 3.3 must hold by construction");
            out.push(Fig2Row {
                n_r,
                d_r,
                log2_h_fk: fk.log2_hypothesis_count(),
                log2_h_xr: xr.log2_hypothesis_count(),
                log2_h_xr_lone: lone.log2_hypothesis_count(),
                spaces_equal: equal,
            });
        }
    }
    out
}

/// Full report.
pub fn report(seed: u64) -> String {
    let mut t = TextTable::new([
        "|D_FK|",
        "d_R",
        "log2|H_FK|",
        "log2|H_XR|",
        "log2|H_Xr|",
        "H_XR = H_FK?",
    ]);
    for r in rows(seed) {
        t.row([
            r.n_r.to_string(),
            r.d_r.to_string(),
            r.log2_h_fk.to_string(),
            r.log2_h_xr.to_string(),
            r.log2_h_xr_lone.to_string(),
            if r.spaces_equal { "yes" } else { "no (strict)" }.to_string(),
        ]);
    }
    format!(
        "Figure 2, quantified: hypothesis-space sizes over boolean X_R worlds\n\
         (log2|H_Z| = #Z-equivalence classes of the FK domain; H_Xr <= H_XR <= H_FK always)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_holds_everywhere() {
        for r in rows(11) {
            assert!(r.log2_h_xr_lone <= r.log2_h_xr, "{r:?}");
            assert!(r.log2_h_xr <= r.log2_h_fk, "{r:?}");
            assert_eq!(r.log2_h_fk, r.n_r);
        }
    }

    #[test]
    fn gap_opens_as_fk_outgrows_xr_combinations() {
        let all = rows(11);
        // With d_R = 2 there are at most 4 X_R combinations: at
        // |D_FK| = 512 the gap must be enormous.
        let big = all
            .iter()
            .find(|r| r.n_r == 512 && r.d_r == 2)
            .expect("row exists");
        assert!(big.log2_h_xr <= 4);
        assert_eq!(big.log2_h_fk, 512);
        assert!(!big.spaces_equal);
        // With d_R = 10 and |D_FK| = 8, distinct rows are likely: the
        // spaces can coincide (2^10 patterns >> 8 draws).
        let small = all
            .iter()
            .find(|r| r.n_r == 8 && r.d_r == 10)
            .expect("row exists");
        assert!(small.log2_h_xr >= 7, "{small:?}");
    }

    #[test]
    fn report_renders() {
        let s = report(11);
        assert!(s.contains("log2|H_FK|"));
        assert!(s.lines().count() > 12);
    }
}
