//! Shared sweep machinery for the scatter figures (Figs 4 and 12):
//! ΔTest error vs ROR, ΔTest error vs TR, and ROR vs `1/sqrt(TR)`.

use hamlet_core::ror::{tuple_ratio, worst_case_ror, DEFAULT_DELTA};
use hamlet_core::tuning::{tune_threshold, SafeSide, TuningPoint};
use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;
use hamlet_datagen::stats::pearson;

use crate::runner::{simulate, MonteCarloOpts};
use crate::table::{f2, f4, TextTable};

/// One sweep point of a scatter figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// Training examples.
    pub n_s: usize,
    /// FK domain size.
    pub n_r: usize,
    /// Entity features.
    pub d_s: usize,
    /// Foreign features.
    pub d_r: usize,
    /// Worst-case ROR at this configuration (all-boolean `X_R`, so
    /// `q_R* = 2`).
    pub ror: f64,
    /// Tuple ratio `n_S / n_R`.
    pub tr: f64,
    /// Increase in test error caused by avoiding the join:
    /// `NoJoin - UseAll` (asymmetric, as in Fig 4).
    pub d_test: f64,
}

/// The grid swept by Figs 4 and 12 (a compact version of the paper's
/// "diverse set of simulation results").
pub fn sweep(scenario: Scenario, opts: &MonteCarloOpts) -> Vec<ScatterPoint> {
    let mut points = Vec::new();
    for &n_s in &[250usize, 1000, 4000] {
        for &n_r in &[10usize, 40, 160, 640] {
            if n_r * 2 >= n_s {
                continue; // keep n > v for the bound to be meaningful
            }
            for &d_r in &[2usize, 4] {
                let d_s = 2;
                let cfg = SimulationConfig {
                    scenario,
                    d_s,
                    d_r,
                    n_r,
                    p: 0.1,
                    skew: FkSkew::Uniform,
                };
                let [use_all, no_join, _no_fk] = simulate(&cfg, n_s, opts);
                points.push(ScatterPoint {
                    n_s,
                    n_r,
                    d_s,
                    d_r,
                    ror: worst_case_ror(n_s, n_r, 2, DEFAULT_DELTA),
                    tr: tuple_ratio(n_s, n_r),
                    d_test: no_join.test_error - use_all.test_error,
                });
            }
        }
    }
    points
}

/// The largest ROR threshold such that every sweep point at or below it
/// kept `ΔTest error <= tolerance` — the paper's Fig 4(A) tuning step
/// (delegates to [`hamlet_core::tuning`]).
pub fn suggest_rho(points: &[ScatterPoint], tolerance: f64) -> f64 {
    let pts: Vec<TuningPoint> = points
        .iter()
        .map(|p| TuningPoint {
            statistic: p.ror,
            error_increase: p.d_test,
        })
        .collect();
    tune_threshold(&pts, tolerance, SafeSide::Low).unwrap_or(0.0)
}

/// The smallest TR threshold such that every sweep point at or above it
/// kept `ΔTest error <= tolerance` — the Fig 4(B) tuning step.
pub fn suggest_tau(points: &[ScatterPoint], tolerance: f64) -> f64 {
    let pts: Vec<TuningPoint> = points
        .iter()
        .map(|p| TuningPoint {
            statistic: p.tr,
            error_increase: p.d_test,
        })
        .collect();
    tune_threshold(&pts, tolerance, SafeSide::High).unwrap_or(f64::INFINITY)
}

/// Pearson correlation between ROR and `1/sqrt(TR)` over the sweep —
/// the paper reports ≈ 0.97 (Fig 4(C)).
pub fn ror_invsqrt_tr_correlation(points: &[ScatterPoint]) -> f64 {
    if points.len() < 2 {
        return f64::NAN;
    }
    let xs: Vec<f64> = points.iter().map(|p| 1.0 / p.tr.sqrt()).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.ror).collect();
    pearson(&xs, &ys)
}

/// Renders the scatter as a table plus the tuning summary.
pub fn render(figure: &str, points: &[ScatterPoint], tolerance: f64) -> String {
    let mut t = TextTable::new([
        "n_S",
        "|D_FK|",
        "d_S",
        "d_R",
        "TR",
        "1/sqrt(TR)",
        "ROR",
        "dTestErr",
    ]);
    for p in points {
        t.row([
            p.n_s.to_string(),
            p.n_r.to_string(),
            p.d_s.to_string(),
            p.d_r.to_string(),
            f2(p.tr),
            f4(1.0 / p.tr.sqrt()),
            f4(p.ror),
            f4(p.d_test),
        ]);
    }
    let mut out = format!("{figure}: dTestErr = NoJoin - UseAll (avoiding the join)\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nPearson(ROR, 1/sqrt(TR)) = {:.4}\n",
        ror_invsqrt_tr_correlation(points)
    ));
    out.push_str(&format!(
        "suggested rho (tolerance {tolerance}): {:.2}\n",
        suggest_rho(points, tolerance)
    ));
    out.push_str(&format!(
        "suggested tau (tolerance {tolerance}): {:.1}\n",
        suggest_tau(points, tolerance)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(ror: f64, tr: f64, d: f64) -> ScatterPoint {
        ScatterPoint {
            n_s: 1000,
            n_r: 10,
            d_s: 2,
            d_r: 2,
            ror,
            tr,
            d_test: d,
        }
    }

    #[test]
    fn suggest_rho_finds_frontier() {
        let pts = vec![
            pt(1.0, 100.0, 0.0),
            pt(2.0, 50.0, 0.0005),
            pt(3.0, 10.0, 0.01),
            pt(4.0, 5.0, 0.05),
        ];
        let rho = suggest_rho(&pts, 0.001);
        assert_eq!(rho, 2.0);
        // Looser tolerance pushes the frontier out.
        assert_eq!(suggest_rho(&pts, 0.02), 3.0);
    }

    #[test]
    fn suggest_tau_finds_frontier() {
        let pts = vec![
            pt(1.0, 100.0, 0.0),
            pt(2.0, 50.0, 0.0005),
            pt(3.0, 10.0, 0.01),
        ];
        assert_eq!(suggest_tau(&pts, 0.001), 50.0);
        assert_eq!(suggest_tau(&pts, 0.02), 10.0);
    }

    #[test]
    fn correlation_is_high_on_analytic_points() {
        let pts: Vec<ScatterPoint> = [
            (1000usize, 10usize),
            (1000, 40),
            (1000, 160),
            (4000, 40),
            (4000, 160),
            (250, 10),
        ]
        .iter()
        .map(|&(n_s, n_r)| ScatterPoint {
            n_s,
            n_r,
            d_s: 2,
            d_r: 2,
            ror: hamlet_core::ror::worst_case_ror(n_s, n_r, 2, 0.1),
            tr: n_s as f64 / n_r as f64,
            d_test: 0.0,
        })
        .collect();
        assert!(ror_invsqrt_tr_correlation(&pts) > 0.9);
    }

    #[test]
    fn render_includes_summary() {
        let pts = vec![pt(1.0, 100.0, 0.0)];
        let s = render("Figure 4", &pts, 0.001);
        assert!(s.contains("Pearson"));
        assert!(s.contains("suggested rho"));
        assert!(s.contains("suggested tau"));
    }
}
