//! Runs the discovery-accuracy scenario (schema discovery vs datagen
//! ground truth over every built-in dataset); exits nonzero on any
//! violated assertion.
fn main() {
    match hamlet_experiments::discovery::report(hamlet_experiments::DEFAULT_SEED) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("discovery-accuracy FAILED: {e}");
            std::process::exit(1);
        }
    }
}
