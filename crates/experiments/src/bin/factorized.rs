//! Factorized vs materialized training at tuple ratios 1, 10, 100.
//!
//! Installs the counting allocator so the peak-bytes columns are real:
//! the factorized path must report lower peak allocation than JoinAll
//! whenever the tuple ratio is 10 or more.

use hamlet_experiments::factorized::{compare, report, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn main() {
    hamlet_obs::alloc::install_meter(&ALLOC);
    let n_s =
        match hamlet_obs::env::var_where("HAMLET_FANOUT_ROWS", "a positive integer", |&n| n > 0) {
            Ok(n) => n.unwrap_or(40_000),
            Err(e) => {
                eprintln!("error: {e} (unset the variable to use the default)");
                std::process::exit(2);
            }
        };
    let rows = compare(n_s, 8, hamlet_experiments::DEFAULT_SEED, Some(&ALLOC));
    print!("{}", report(&rows));
    for r in &rows {
        if r.ratio >= 10 {
            assert!(
                r.factorized_peak < r.materialized_peak,
                "factorized must allocate less than JoinAll at ratio {} \
                 ({} vs {} bytes)",
                r.ratio,
                r.factorized_peak,
                r.materialized_peak
            );
        }
    }
    println!("\nPeak-allocation win verified at every ratio >= 10.");
}
