//! Runs the chaos-degrade scenario (absent tables, scoring faults,
//! serving fallback chain); exits nonzero on any violated assertion.
fn main() {
    let dir = std::env::temp_dir().join("hamlet_chaos_degrade");
    match hamlet_experiments::degrade::report(&dir) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("chaos-degrade FAILED: {e}");
            std::process::exit(1);
        }
    }
}
