//! Regenerates the third simulation scenario (appendix D, completeness).
fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    print!("{}", hamlet_experiments::scenario3::report(&opts));
}
