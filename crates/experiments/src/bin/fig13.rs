//! Regenerates Figure 13 (foreign-key skew).
fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    print!("{}", hamlet_experiments::fig13::report(&opts));
}
