//! Regenerates every table and figure in one run (sequential), printing
//! section headers — convenient for producing a complete results dump:
//! `cargo run --release -p hamlet-experiments --bin all_figures > results.txt`

fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    let scale = hamlet_experiments::dataset_scale();
    let seed = hamlet_experiments::DEFAULT_SEED;
    let sections: Vec<(&str, String)> = vec![
        ("Figure 3", hamlet_experiments::fig3::report(&opts)),
        ("Figure 4", hamlet_experiments::fig4::report(&opts)),
        ("Figure 5", hamlet_experiments::fig5::report(100_000)),
        ("Figure 6", hamlet_experiments::fig6::report(scale)),
        (
            "Figure 7",
            hamlet_experiments::fig7::report(scale, seed, false),
        ),
        (
            "Figure 8(A)",
            hamlet_experiments::fig8::report_a(scale, seed),
        ),
        (
            "Figure 8(B)",
            hamlet_experiments::fig8::report_b(scale, seed),
        ),
        (
            "Figure 8(C)",
            hamlet_experiments::fig8::report_c(scale, seed),
        ),
        ("Figure 9", hamlet_experiments::fig9::report(scale, seed, 8)),
        ("Figure 10", hamlet_experiments::fig10::report(&opts)),
        ("Figure 11", hamlet_experiments::fig11::report(&opts)),
        ("Figure 12", hamlet_experiments::fig12::report(&opts)),
        ("Figure 13", hamlet_experiments::fig13::report(&opts)),
        (
            "Appendix E",
            hamlet_experiments::tan_appendix::report(4000, seed),
        ),
        (
            "Ablations",
            hamlet_experiments::ablation::report(&opts, scale, seed),
        ),
    ];
    for (name, body) in sections {
        println!("==================== {name} ====================");
        println!("{body}");
    }
}
