//! Regenerates Figure 6 (dataset statistics).
fn main() {
    print!(
        "{}",
        hamlet_experiments::fig6::report(hamlet_experiments::dataset_scale())
    );
}
