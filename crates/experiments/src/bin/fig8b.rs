//! Regenerates Figure 8(B) (threshold sensitivity).
fn main() {
    print!(
        "{}",
        hamlet_experiments::fig8::report_b(
            hamlet_experiments::dataset_scale(),
            hamlet_experiments::DEFAULT_SEED
        )
    );
}
