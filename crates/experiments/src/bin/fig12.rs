//! Regenerates Figure 12 (scenario-2 scatter).
fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    print!("{}", hamlet_experiments::fig12::report(&opts));
}
