//! Regenerates Figure 8(C) (JoinOpt vs JoinAllNoFK).
fn main() {
    print!(
        "{}",
        hamlet_experiments::fig8::report_c(
            hamlet_experiments::dataset_scale(),
            hamlet_experiments::DEFAULT_SEED
        )
    );
}
