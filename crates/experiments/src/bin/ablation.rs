//! Runs the ablation studies (DESIGN.md §4): exact vs worst-case ROR,
//! skew guards, and the threshold sweep.
fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    print!(
        "{}",
        hamlet_experiments::ablation::report(
            &opts,
            hamlet_experiments::dataset_scale(),
            hamlet_experiments::DEFAULT_SEED
        )
    );
}
