//! Regenerates Figure 11 (scenario-2 sweeps).
fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    print!("{}", hamlet_experiments::fig11::report(&opts));
}
