//! Quantifies the paper's Figure 2 (hypothesis-space relationships).
fn main() {
    print!(
        "{}",
        hamlet_experiments::fig2::report(hamlet_experiments::DEFAULT_SEED)
    );
}
