//! Regenerates the appendix-E TAN comparison.
fn main() {
    print!(
        "{}",
        hamlet_experiments::tan_appendix::report(4000, hamlet_experiments::DEFAULT_SEED)
    );
}
