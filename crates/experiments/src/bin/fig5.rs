//! Regenerates Figure 5 (TR vs ROR conservatism, analytic).
fn main() {
    print!("{}", hamlet_experiments::fig5::report(100_000));
}
