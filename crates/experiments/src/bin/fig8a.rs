//! Regenerates Figure 8(A) (robustness over the join-plan lattice).
fn main() {
    print!(
        "{}",
        hamlet_experiments::fig8::report_a(
            hamlet_experiments::dataset_scale(),
            hamlet_experiments::DEFAULT_SEED
        )
    );
}
