//! Runs the future-work experiment: decision trees under the rules.
fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    print!(
        "{}",
        hamlet_experiments::future_work::report(
            &opts,
            hamlet_experiments::dataset_scale(),
            hamlet_experiments::DEFAULT_SEED
        )
    );
}
