//! Regenerates Figure 7 (end-to-end error + runtime). Pass --features to
//! also print the output feature sets (Sec 5.1 / appendix F).
fn main() {
    let show = std::env::args().any(|a| a == "--features");
    print!(
        "{}",
        hamlet_experiments::fig7::report(
            hamlet_experiments::dataset_scale(),
            hamlet_experiments::DEFAULT_SEED,
            show
        )
    );
}
