//! Regenerates Figure 10 (scenario-1 sweeps over d_R, d_S, p).
fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    print!("{}", hamlet_experiments::fig10::report(&opts));
}
