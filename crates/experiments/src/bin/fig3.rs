//! Regenerates Figure 3 (scenario-1 simulation sweeps).
fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    print!("{}", hamlet_experiments::fig3::report(&opts));
}
