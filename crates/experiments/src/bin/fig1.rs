//! Quantifies the paper's Figure 1 box diagram over the seven datasets.
fn main() {
    print!(
        "{}",
        hamlet_experiments::fig1::report(
            hamlet_experiments::dataset_scale(),
            hamlet_experiments::DEFAULT_SEED
        )
    );
}
