//! Regenerates Figure 4 (scenario-1 scatter + threshold tuning).
fn main() {
    let opts = hamlet_experiments::monte_carlo_opts();
    print!("{}", hamlet_experiments::fig4::report(&opts));
}
