//! Validates the joint-shrink scale substitution (DESIGN.md §3).
fn main() {
    print!(
        "{}",
        hamlet_experiments::scale_check::report(
            &[0.02, 0.05, 0.1, 0.2],
            hamlet_experiments::DEFAULT_SEED
        )
    );
}
