//! Regenerates Figure 9 (logistic regression with embedded L1/L2).
fn main() {
    print!(
        "{}",
        hamlet_experiments::fig9::report(
            hamlet_experiments::dataset_scale(),
            hamlet_experiments::DEFAULT_SEED,
            8
        )
    );
}
