//! Exports the seven synthetic datasets as CSV files (one file per base
//! table, normalized — exactly what an analyst's warehouse would hold),
//! so the reproduction's data can be inspected or consumed by other
//! tools.
//!
//! Usage: `export_datasets [out_dir]` (default `./hamlet_datasets`);
//! scale via `HAMLET_SCALE` (default 0.1).

use std::fs;
use std::path::PathBuf;

use hamlet_datagen::realistic::DatasetSpec;
use hamlet_relational::write_csv;

fn main() -> std::io::Result<()> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hamlet_datasets".to_string())
        .into();
    let scale = hamlet_experiments::dataset_scale();
    let seed = hamlet_experiments::DEFAULT_SEED;
    fs::create_dir_all(&out_dir)?;

    for spec in DatasetSpec::all() {
        let dir = out_dir.join(spec.name.to_lowercase());
        fs::create_dir_all(&dir)?;
        let g = spec.generate(scale, seed);
        let entity_path = dir.join(format!("{}.csv", spec.name.to_lowercase()));
        fs::write(&entity_path, write_csv(g.star.entity(), ','))?;
        println!(
            "{:>12} rows -> {}",
            g.star.entity().n_rows(),
            entity_path.display()
        );
        for at in g.star.attributes() {
            let path = dir.join(format!("{}.csv", at.table.name().to_lowercase()));
            fs::write(&path, write_csv(&at.table, ','))?;
            println!("{:>12} rows -> {}", at.table.n_rows(), path.display());
        }
    }
    println!("\nExported at scale {scale} with seed {seed}.");
    Ok(())
}
