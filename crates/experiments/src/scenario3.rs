//! The third simulation scenario: only `X_S` and `FK` are part of the
//! true distribution (a hidden per-FK bit; `X_R` is pure noise).
//!
//! Appendix D mentions this scenario and skips its plots ("did not
//! reveal any interesting new insights"); we include it for completeness
//! and because it isolates the *opposite* danger to Figure 3's: here
//! avoiding the join costs nothing at any `n_S` — the joined features
//! can only add noise — while dropping the FK (`NoFK`) destroys the
//! signal entirely.

use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;

use crate::fig3::{render_panel, SweepPoint};
use crate::runner::{simulate, MonteCarloOpts};

fn cfg(d_s: usize, d_r: usize, n_r: usize) -> SimulationConfig {
    SimulationConfig {
        scenario: Scenario::EntityAndFk,
        d_s,
        d_r,
        n_r,
        p: 0.1,
        skew: FkSkew::Uniform,
    }
}

/// Vary `n_S` at `(d_S, d_R, |D_FK|) = (2, 4, 40)`.
pub fn panel_a(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    [250usize, 500, 1000, 2000, 4000]
        .iter()
        .map(|&n_s| (n_s, simulate(&cfg(2, 4, 40), n_s, opts)))
        .collect()
}

/// Vary `|D_FK|` at `(n_S, d_S, d_R) = (1000, 2, 4)`.
pub fn panel_b(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    [10usize, 25, 50, 100, 200]
        .iter()
        .map(|&n_r| (n_r, simulate(&cfg(2, 4, n_r), 1000, opts)))
        .collect()
}

/// Full scenario-3 report.
pub fn report(opts: &MonteCarloOpts) -> String {
    let mut out = String::from(
        "Scenario 3 (appendix D): only X_S and FK in the true distribution; X_R is noise\n\n",
    );
    out.push_str("(A) vary n_S; (d_S, d_R, |D_FK|) = (2, 4, 40)\n");
    out.push_str(&render_panel("n_S", &panel_a(opts)));
    out.push_str("\n(B) vary |D_FK|; (n_S, d_S, d_R) = (1000, 2, 4)\n");
    out.push_str(&render_panel("|D_FK|", &panel_b(opts)));
    out.push_str(
        "\nReading: UseAll and NoJoin coincide (X_R never helps); NoFK loses the\n\
         per-FK signal and sits strictly above both — the Fig 8(C) mechanism in vitro.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nofk_is_strictly_worse_in_scenario3() {
        let opts = MonteCarloOpts {
            train_sets: 8,
            repeats: 2,
            base_seed: 5,
        };
        let [use_all, no_join, no_fk] = simulate(&cfg(2, 2, 10), 2000, &opts);
        // Dropping FK destroys the per-FK half of the signal.
        assert!(
            no_fk.test_error > use_all.test_error + 0.02,
            "NoFK {} vs UseAll {}",
            no_fk.test_error,
            use_all.test_error
        );
        // Avoiding the join costs nothing.
        assert!(
            (no_join.test_error - use_all.test_error).abs() < 0.03,
            "NoJoin {} vs UseAll {}",
            no_join.test_error,
            use_all.test_error
        );
    }
}
