//! Figure 4: scatter plots for scenario 1 — ΔTest error vs ROR (A), vs
//! TR (B), and ROR vs `1/sqrt(TR)` with its Pearson correlation (C) —
//! plus the threshold-tuning step that yields `rho` and `tau`.

use hamlet_datagen::sim::Scenario;

use crate::runner::MonteCarloOpts;
use crate::scatter::{render, sweep, ScatterPoint};

/// The error tolerance the paper tunes with ("an absolute increase of
/// 0.001").
pub const TOLERANCE: f64 = 0.001;

/// Runs the scenario-1 sweep.
pub fn points(opts: &MonteCarloOpts) -> Vec<ScatterPoint> {
    sweep(Scenario::LoneForeignFeature, opts)
}

/// Full Figure 4 report.
pub fn report(opts: &MonteCarloOpts) -> String {
    let pts = points(opts);
    render(
        "Figure 4 (scenario 1: lone X_r in the true distribution)",
        &pts,
        TOLERANCE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::{suggest_rho, suggest_tau};

    #[test]
    fn sweep_produces_monotone_risk_relationship() {
        let opts = MonteCarloOpts {
            train_sets: 6,
            repeats: 2,
            base_seed: 11,
        };
        let pts = points(&opts);
        assert!(pts.len() >= 10, "sweep too small: {}", pts.len());
        // The low-ROR half must have a lower mean dTest than the high-ROR
        // half — the monotone trend Fig 4(A) shows.
        let mut sorted = pts.clone();
        sorted.sort_by(|a, b| a.ror.partial_cmp(&b.ror).unwrap());
        let half = sorted.len() / 2;
        let lo: f64 = sorted[..half].iter().map(|p| p.d_test).sum::<f64>() / half as f64;
        let hi: f64 =
            sorted[half..].iter().map(|p| p.d_test).sum::<f64>() / (sorted.len() - half) as f64;
        assert!(lo <= hi + 0.005, "low-ROR mean {lo} vs high-ROR mean {hi}");
        // Threshold suggestions are finite and ordered sanely.
        let rho = suggest_rho(&pts, TOLERANCE.max(0.01));
        let tau = suggest_tau(&pts, TOLERANCE.max(0.01));
        assert!(rho >= 0.0);
        assert!(tau.is_finite());
    }
}
