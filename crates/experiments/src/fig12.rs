//! Figure 12: scatter plots for scenario 2 (as Figure 4, but with all of
//! `X_S ∪ X_R` in the true distribution). The paper's observation: "the
//! trends are largely similar to those in Figure 4 and the same
//! thresholds for rho and tau work here as well."

use hamlet_datagen::sim::Scenario;

use crate::fig4::TOLERANCE;
use crate::runner::MonteCarloOpts;
use crate::scatter::{render, sweep, ScatterPoint};

/// Runs the scenario-2 sweep.
pub fn points(opts: &MonteCarloOpts) -> Vec<ScatterPoint> {
    sweep(Scenario::AllFeatures, opts)
}

/// Full Figure 12 report.
pub fn report(opts: &MonteCarloOpts) -> String {
    let pts = points(opts);
    render(
        "Figure 12 (scenario 2: all of X_S and X_R in the true distribution)",
        &pts,
        TOLERANCE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::ror_invsqrt_tr_correlation;

    #[test]
    fn correlation_holds_in_scenario2() {
        let opts = MonteCarloOpts {
            train_sets: 5,
            repeats: 1,
            base_seed: 31,
        };
        let pts = points(&opts);
        assert!(pts.len() >= 8);
        // The ROR/TR relationship is analytic, so it holds regardless of
        // the scenario that produced the errors.
        assert!(ror_invsqrt_tr_correlation(&pts) > 0.9);
    }
}
