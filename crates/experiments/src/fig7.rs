//! Figure 7: end-to-end error (A) and feature-selection runtime (B) on
//! the seven datasets — JoinAll vs JoinOpt × four selection methods with
//! Naive Bayes, under the 50/25/25 holdout.

use hamlet_core::planner::{plan as make_plan, PlanKind};
use hamlet_core::rules::TrRule;
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_fs::Method;
use hamlet_ml::classifier::ErrorMetric;

use crate::runner::{prepare_plan, run_methods, PlanMethodRun};
use crate::table::{f2, f4, TextTable};

/// All results for one dataset.
#[derive(Debug, Clone)]
pub struct DatasetResults {
    /// Dataset name.
    pub name: &'static str,
    /// Error metric used (paper's convention).
    pub metric: ErrorMetric,
    /// Tables in the JoinAll input (1 + k).
    pub join_all_tables: usize,
    /// Tables in the JoinOpt input (1 + #joined).
    pub join_opt_tables: usize,
    /// Per method: (JoinAll run, JoinOpt run).
    pub runs: Vec<(PlanMethodRun, PlanMethodRun)>,
}

/// Runs one dataset end to end.
pub fn run_dataset(spec: &DatasetSpec, scale: f64, seed: u64) -> DatasetResults {
    let g = spec.generate(scale, seed);
    let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;

    let all_plan = make_plan(&g.star, PlanKind::JoinAll, &TrRule::default(), n_train);
    let opt_plan = make_plan(&g.star, PlanKind::JoinOpt, &TrRule::default(), n_train);
    let join_all_tables = 1 + all_plan.joined.len();
    let join_opt_tables = 1 + opt_plan.joined.len();

    let prepared_all = prepare_plan(&g.star, all_plan, seed).expect("synthetic star materializes");
    let prepared_opt = prepare_plan(&g.star, opt_plan, seed).expect("synthetic star materializes");

    // One statistics cache per plan, shared by all four methods.
    let runs = run_methods(&prepared_all, &Method::ALL)
        .into_iter()
        .zip(run_methods(&prepared_opt, &Method::ALL))
        .collect();

    DatasetResults {
        name: spec.name,
        metric: prepared_all.metric,
        join_all_tables,
        join_opt_tables,
        runs,
    }
}

/// Renders panels (A) error and (B) runtime for a set of results.
pub fn render(results: &[DatasetResults], show_features: bool) -> String {
    let mut a = TextTable::new([
        "Dataset",
        "Metric",
        "Method",
        "JoinAll err",
        "JoinOpt err",
        "#Tables All",
        "#Tables Opt",
    ]);
    let mut b = TextTable::new([
        "Dataset",
        "Method",
        "JoinAll time (s)",
        "JoinOpt time (s)",
        "Speedup",
        "JoinAll fits",
        "JoinOpt fits",
    ]);
    let mut features = String::new();
    for r in results {
        for (all, opt) in &r.runs {
            a.row([
                r.name.to_string(),
                r.metric.name().to_string(),
                all.method.name().to_string(),
                f4(all.test_error),
                f4(opt.test_error),
                r.join_all_tables.to_string(),
                r.join_opt_tables.to_string(),
            ]);
            let ta = all.selection_time.as_secs_f64();
            let to = opt.selection_time.as_secs_f64();
            b.row([
                r.name.to_string(),
                all.method.name().to_string(),
                format!("{ta:.3}"),
                format!("{to:.3}"),
                format!("{}x", f2(if to > 0.0 { ta / to } else { f64::NAN })),
                all.selection.model_fits.to_string(),
                opt.selection.model_fits.to_string(),
            ]);
            if show_features {
                features.push_str(&format!(
                    "{} / {}:\n  JoinAll -> {:?}\n  JoinOpt -> {:?}\n",
                    r.name,
                    all.method.name(),
                    all.selected_names,
                    opt.selected_names
                ));
            }
        }
    }
    let mut out = String::from("Figure 7(A): holdout test error after feature selection\n");
    out.push_str(&a.render());
    out.push_str("\nFigure 7(B): feature selection runtime\n");
    out.push_str(&b.render());
    if show_features {
        out.push_str("\nOutput feature sets (Sec 5.1 / appendix F):\n");
        out.push_str(&features);
    }
    out
}

/// Full Figure 7 report over all seven datasets.
pub fn report(scale: f64, seed: u64, show_features: bool) -> String {
    let results: Vec<DatasetResults> = DatasetSpec::all()
        .iter()
        .map(|spec| run_dataset(spec, scale, seed))
        .collect();
    render(&results, show_features)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walmart_join_opt_avoids_both_without_error_blowup() {
        let r = run_dataset(&DatasetSpec::walmart(), 0.004, 5);
        assert_eq!(r.join_all_tables, 3);
        assert_eq!(r.join_opt_tables, 1, "both Walmart joins should be avoided");
        // At this tiny scale errors are noisy; just require JoinOpt not to
        // be wildly worse than JoinAll for the filter methods.
        for (all, opt) in &r.runs {
            assert!(
                opt.test_error <= all.test_error + 0.35,
                "{}: {} vs {}",
                all.method.name(),
                all.test_error,
                opt.test_error
            );
        }
    }

    #[test]
    fn yelp_join_opt_keeps_both() {
        let r = run_dataset(&DatasetSpec::yelp(), 0.004, 5);
        assert_eq!(r.join_opt_tables, 3, "Yelp joins must both be kept");
    }

    #[test]
    fn render_contains_panels() {
        let r = run_dataset(&DatasetSpec::walmart(), 0.002, 1);
        let s = render(&[r], true);
        assert!(s.contains("Figure 7(A)"));
        assert!(s.contains("Figure 7(B)"));
        assert!(s.contains("Speedup"));
        assert!(s.contains("JoinAll ->"));
    }
}
