//! Figure 13: effects of foreign-key skew (appendix D), scenario 1.
//!
//! (A) **benign** Zipf skew: `P(FK)` is Zipfian but the skew does not
//! collude with `P(Y)` — NoJoin's error should not blow up;
//! (B) **malign** needle-and-thread skew: one FK value carries mass `p`
//! and is tied to one label — NoJoin's error rises, and the gap closes as
//! `n_S` grows.

use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;

use crate::runner::{simulate, MonteCarloOpts, SimEstimate};
use crate::table::{f4, TextTable};

fn cfg(skew: FkSkew) -> SimulationConfig {
    SimulationConfig {
        scenario: Scenario::LoneForeignFeature,
        d_s: 4,
        d_r: 4,
        n_r: 40,
        p: 0.1,
        skew,
    }
}

/// (A1) vary the Zipf exponent at `n_S = 1000` (exponent 0 = uniform).
pub fn panel_a1(opts: &MonteCarloOpts) -> Vec<(String, [SimEstimate; 2])> {
    let mut rows = Vec::new();
    let uniform = simulate(&cfg(FkSkew::Uniform), 1000, opts);
    rows.push(("uniform".to_string(), [uniform[0], uniform[1]]));
    for &e in &[0.5f64, 1.0, 2.0] {
        let est = simulate(&cfg(FkSkew::Zipf { exponent: e }), 1000, opts);
        rows.push((format!("zipf({e})"), [est[0], est[1]]));
    }
    rows
}

/// (A2) vary `n_S` with Zipf exponent 2.
pub fn panel_a2(opts: &MonteCarloOpts) -> Vec<(String, [SimEstimate; 2])> {
    [250usize, 500, 1000, 2000, 4000]
        .iter()
        .map(|&n_s| {
            let est = simulate(&cfg(FkSkew::Zipf { exponent: 2.0 }), n_s, opts);
            (n_s.to_string(), [est[0], est[1]])
        })
        .collect()
}

/// (B1) vary the needle probability at `n_S = 1000`.
pub fn panel_b1(opts: &MonteCarloOpts) -> Vec<(String, [SimEstimate; 2])> {
    [0.1f64, 0.3, 0.5, 0.7]
        .iter()
        .map(|&p| {
            let est = simulate(&cfg(FkSkew::NeedleAndThread { needle_prob: p }), 1000, opts);
            (format!("needle({p})"), [est[0], est[1]])
        })
        .collect()
}

/// (B2) vary `n_S` with needle probability 0.5.
pub fn panel_b2(opts: &MonteCarloOpts) -> Vec<(String, [SimEstimate; 2])> {
    [250usize, 500, 1000, 2000, 4000]
        .iter()
        .map(|&n_s| {
            let est = simulate(
                &cfg(FkSkew::NeedleAndThread { needle_prob: 0.5 }),
                n_s,
                opts,
            );
            (n_s.to_string(), [est[0], est[1]])
        })
        .collect()
}

fn render(varied: &str, rows: &[(String, [SimEstimate; 2])]) -> String {
    let mut t = TextTable::new([
        varied,
        "UseAll err",
        "NoJoin err",
        "UseAll netvar",
        "NoJoin netvar",
    ]);
    for (x, est) in rows {
        t.row([
            x.clone(),
            f4(est[0].test_error),
            f4(est[1].test_error),
            f4(est[0].net_variance),
            f4(est[1].net_variance),
        ]);
    }
    t.render()
}

/// Full Figure 13 report.
pub fn report(opts: &MonteCarloOpts) -> String {
    let mut out = String::from(
        "Figure 13: foreign-key skew, scenario 1; (n_S, n_R, d_S, d_R) = (1000, 40, 4, 4) unless varied\n\n",
    );
    out.push_str("(A1) benign Zipf skew: vary exponent\n");
    out.push_str(&render("skew", &panel_a1(opts)));
    out.push_str("\n(A2) benign Zipf skew (exponent 2): vary n_S\n");
    out.push_str(&render("n_S", &panel_a2(opts)));
    out.push_str("\n(B1) malign needle-and-thread: vary needle probability\n");
    out.push_str(&render("skew", &panel_b1(opts)));
    out.push_str("\n(B2) malign needle-and-thread (p = 0.5): vary n_S\n");
    out.push_str(&render("n_S", &panel_b2(opts)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MonteCarloOpts {
        MonteCarloOpts {
            train_sets: 6,
            repeats: 2,
            base_seed: 41,
        }
    }

    #[test]
    fn malign_gap_closes_with_n() {
        let rows = panel_b2(&tiny());
        let gap = |est: &[SimEstimate; 2]| est[1].test_error - est[0].test_error;
        let first = gap(&rows[0].1); // n_S = 250
        let last = gap(&rows[rows.len() - 1].1); // n_S = 4000
        assert!(
            last <= first + 0.02,
            "gap should close with n_S: {first} -> {last}"
        );
    }

    #[test]
    fn benign_skew_does_not_blow_up_nojoin() {
        let rows = panel_a1(&tiny());
        for (label, est) in &rows {
            let gap = est[1].test_error - est[0].test_error;
            assert!(
                gap < 0.25,
                "{label}: NoJoin gap {gap} too large for benign skew"
            );
        }
    }
}
