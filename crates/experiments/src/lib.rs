//! # hamlet-experiments
//!
//! The reproduction harness: one module (and one binary) per table and
//! figure of "To Join or Not to Join?" (SIGMOD 2016). Each module's
//! `report` function regenerates the rows/series the paper presents:
//!
//! | Module | Paper content |
//! |---|---|
//! | [`fig3`] | Scenario-1 simulation: error/net variance vs `n_S`, `|D_FK|` |
//! | [`fig4`] | Scenario-1 scatter: ΔTest error vs ROR/TR, threshold tuning |
//! | [`fig5`] | Why TR is more conservative than ROR (analytic) |
//! | [`fig6`] | Dataset statistics table |
//! | [`fig7`] | End-to-end error + feature-selection runtime, JoinAll vs JoinOpt |
//! | [`fig8`] | Robustness (A), threshold sensitivity (B), dropping FKs (C) |
//! | [`fig9`] | Logistic regression, embedded L1/L2 |
//! | [`fig10`] | Scenario-1 sweeps over `d_R`, `d_S`, `p` |
//! | [`fig11`] | Scenario-2 sweeps |
//! | [`fig12`] | Scenario-2 scatter |
//! | [`fig13`] | Foreign-key skew (benign Zipf / malign needle-and-thread) |
//! | [`tan_appendix`] | Appendix E: TAN on KFK-joined data |
//! | [`ablation`] | Exact-vs-worst-case ROR, skew guards, threshold sweep |
//! | [`degrade`] | Chaos scenario: absent tables, scoring faults, serving fallback chain |
//!
//! Environment knobs: `HAMLET_SCALE` (dataset scale, default 0.1),
//! `HAMLET_TRAIN_SETS` / `HAMLET_REPEATS` (Monte-Carlo replication),
//! `HAMLET_CHECKPOINT_DIR` (persist completed simulation cells for
//! crash/resume — see [`checkpoint`]).

pub mod ablation;
pub mod checkpoint;
pub mod degrade;
pub mod discovery;
pub mod factorized;
pub mod family;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod future_work;
pub mod runner;
pub mod scale_check;
pub mod scatter;
pub mod scenario3;
pub mod table;
pub mod tan_appendix;

pub use checkpoint::{config_key, CheckpointStore, CHECKPOINT_DIR_VAR, DEFAULT_CHECKPOINT_DIR};
pub use family::{revalidate_all, revalidate_family, FamilyPoint, FamilyThresholds};
pub use runner::{
    dataset_scale, join_opt_plan, monte_carlo_opts, prepare_plan, run_method, simulate,
    simulate_with, FeatureSetChoice, MonteCarloOpts, PlanMethodRun, PreparedPlan, SimEstimate,
    DEFAULT_SEED,
};
