//! Shared experiment machinery: Monte-Carlo simulation estimates and the
//! end-to-end (dataset × plan × feature-selection method) protocol.

use std::time::{Duration, Instant};

use hamlet_core::planner::{plan, JoinPlan, PlanKind};
use hamlet_core::rules::TrRule;
use hamlet_datagen::sim::SimulationConfig;
use hamlet_fs::{Method, SelectionContext, SelectionResult, SweepEngine};
use hamlet_ml::bias_variance::{decompose, BiasVarianceReport};
use hamlet_ml::classifier::{ErrorMetric, Model};
use hamlet_ml::dataset::Dataset;
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::split::HoldoutSplit;
use hamlet_ml::suffstats::{SuffStats, SweepFit};
use hamlet_obs::env::{var_where, EnvError};
use hamlet_relational::{RelationalError, StarSchema};

/// Default experiment seed.
pub const DEFAULT_SEED: u64 = 20_160_626; // SIGMOD'16 opening day

/// Scale factor for the realistic datasets, read from `HAMLET_SCALE`
/// (default 0.1). `n_S` and all `n_Ri` shrink (or grow, for the
/// out-of-core stress scales above 1) jointly, preserving tuple ratios;
/// see DESIGN.md §3. An invalid value is a typed error — it used to
/// silently fall back to 0.1, so a typo quietly ran a tiny experiment.
pub fn try_dataset_scale() -> Result<f64, EnvError> {
    Ok(
        var_where("HAMLET_SCALE", "a float in (0, 100]", |&s: &f64| {
            s > 0.0 && s <= 100.0
        })?
        .unwrap_or(0.1),
    )
}

/// [`try_dataset_scale`] for the figure binaries: an invalid value
/// prints an actionable error and exits(2) instead of running the wrong
/// experiment.
pub fn dataset_scale() -> f64 {
    try_dataset_scale().unwrap_or_else(exit_on_env_error)
}

/// Monte-Carlo replication counts, read from `HAMLET_TRAIN_SETS` /
/// `HAMLET_REPEATS` (defaults 100 and 8; the paper uses 100 x 100).
/// Invalid values are typed errors, not silent defaults.
pub fn try_monte_carlo_opts() -> Result<MonteCarloOpts, EnvError> {
    let env = |k: &str, d: usize| -> Result<usize, EnvError> {
        Ok(var_where(k, "a positive integer", |&v: &usize| v > 0)?.unwrap_or(d))
    };
    Ok(MonteCarloOpts {
        train_sets: env("HAMLET_TRAIN_SETS", 100)?,
        repeats: env("HAMLET_REPEATS", 8)?,
        base_seed: DEFAULT_SEED,
    })
}

/// [`try_monte_carlo_opts`] for the figure binaries: an invalid value
/// prints an actionable error and exits(2).
pub fn monte_carlo_opts() -> MonteCarloOpts {
    try_monte_carlo_opts().unwrap_or_else(exit_on_env_error)
}

fn exit_on_env_error<T>(e: EnvError) -> T {
    eprintln!("error: {e} (unset the variable to use the default)");
    std::process::exit(2);
}

/// Replication configuration for simulation estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloOpts {
    /// Number of independent training sets per world (`|S|`; paper: 100).
    pub train_sets: usize,
    /// Number of worlds (outer seeds; paper: 100).
    pub repeats: usize,
    /// Base RNG seed.
    pub base_seed: u64,
}

/// The three model classes Fig 3 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSetChoice {
    /// `X_S ∪ {FK} ∪ X_R`.
    UseAll,
    /// `X_S ∪ {FK}` — the join is avoided.
    NoJoin,
    /// `X_S ∪ X_R` — the FK is dropped.
    NoFk,
}

impl FeatureSetChoice {
    /// All three, in the paper's order.
    pub const ALL: [FeatureSetChoice; 3] = [
        FeatureSetChoice::UseAll,
        FeatureSetChoice::NoJoin,
        FeatureSetChoice::NoFk,
    ];

    /// Display name matching Fig 3's legend.
    pub fn name(self) -> &'static str {
        match self {
            FeatureSetChoice::UseAll => "UseAll",
            FeatureSetChoice::NoJoin => "NoJoin",
            FeatureSetChoice::NoFk => "NoFK",
        }
    }

    /// Resolves the feature positions for this choice in a dataset built
    /// from the fully joined simulation table (features are named
    /// `xs*`, `FK`, `xr*`).
    pub fn features(self, data: &Dataset) -> Vec<usize> {
        data.features()
            .iter()
            .enumerate()
            .filter(|(_, f)| match self {
                FeatureSetChoice::UseAll => true,
                FeatureSetChoice::NoJoin => !f.name.starts_with("xr"),
                FeatureSetChoice::NoFk => f.name != "FK",
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Bias/variance estimates for one (configuration, feature-set) pair,
/// averaged over worlds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEstimate {
    /// Average expected test error.
    pub test_error: f64,
    /// Average net variance `(1-2B)V`.
    pub net_variance: f64,
    /// Average bias.
    pub bias: f64,
    /// Average raw variance.
    pub variance: f64,
}

impl SimEstimate {
    fn from_reports(reports: &[BiasVarianceReport]) -> Self {
        let n = reports.len().max(1) as f64;
        Self {
            test_error: reports.iter().map(|r| r.avg_test_error).sum::<f64>() / n,
            net_variance: reports.iter().map(|r| r.avg_net_variance).sum::<f64>() / n,
            bias: reports.iter().map(|r| r.avg_bias).sum::<f64>() / n,
            variance: reports.iter().map(|r| r.avg_variance).sum::<f64>() / n,
        }
    }
}

/// Runs the paper's Monte-Carlo protocol (Sec 4.1) for one configuration
/// and training-set size: per world, draw one test set of `n_s / 4`
/// examples and `train_sets` training sets of `n_s` examples; fit Naive
/// Bayes per feature-set choice per training set; decompose against the
/// exact conditionals.
pub fn simulate(cfg: &SimulationConfig, n_s: usize, opts: &MonteCarloOpts) -> [SimEstimate; 3] {
    simulate_with(&NaiveBayes::default(), cfg, n_s, opts)
}

/// [`simulate`] generalized over the classifier — used by the
/// future-work experiment to check whether the rules' behaviour
/// transfers to models with non-linear VC dimensions (decision trees).
pub fn simulate_with<C: SweepFit + Sync>(
    nb: &C,
    cfg: &SimulationConfig,
    n_s: usize,
    opts: &MonteCarloOpts,
) -> [SimEstimate; 3] {
    let mut reports: [Vec<BiasVarianceReport>; 3] = Default::default();

    // With HAMLET_CHECKPOINT_DIR set, completed (repeat, train-set)
    // cells are persisted and a rerun resumes from them. The key hashes
    // everything that determines a cell's predictions, so a changed
    // configuration gets a fresh checkpoint set rather than stale cells.
    let store =
        crate::checkpoint::CheckpointStore::from_env(&crate::checkpoint::config_key(&format!(
            "{}|{cfg:?}|{n_s}|{}|{}|{}",
            std::any::type_name::<C>(),
            opts.train_sets,
            opts.repeats,
            opts.base_seed
        )));

    for rep in 0..opts.repeats {
        let _world_span = hamlet_obs::span!("experiments.world", rep = rep);
        let world_seed = opts
            .base_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rep as u64 + 1));
        let world = cfg.build_world(world_seed);

        let test = world.sample((n_s / 4).max(1), world_seed ^ 0x7E57_7E57);
        let test_table = test
            .star
            .materialize_all()
            .expect("simulation star always materializes");
        let test_data = Dataset::from_table_trusted(&test_table);
        let test_rows: Vec<usize> = (0..test_data.n_examples()).collect();

        // One (choice -> predictions) bundle per training set; the
        // training sets are i.i.d., so they parallelize embarrassingly
        // across scoped threads (result order stays deterministic).
        let one_train_set = |t: usize| -> [Vec<u32>; 3] {
            if let Some(preds) = store.as_ref().and_then(|s| s.load_cell(rep, t)) {
                return preds;
            }
            let sample = world.sample(n_s, world_seed.wrapping_add(1000 + t as u64));
            let table = sample
                .star
                .materialize_all()
                .expect("simulation star always materializes");
            let data = Dataset::from_table_trusted(&table);
            let rows: Vec<usize> = (0..data.n_examples()).collect();
            // One statistics cache per training table: the three
            // feature-set choices share every per-feature count table.
            let stats = SuffStats::new(&data, &rows);
            let mut out: [Vec<u32>; 3] = Default::default();
            for (c, choice) in FeatureSetChoice::ALL.iter().enumerate() {
                let feats = choice.features(&data);
                let model = nb.fit_swept(&stats, &feats, None);
                out[c] = model.predict(&test_data, &test_rows);
            }
            // A failed cell write degrades to running without the
            // checkpoint — this repeat's result is still correct, it
            // just cannot be resumed from.
            if let Some(s) = &store {
                if let Err(e) = s.store_cell(rep, t, &out) {
                    hamlet_obs::counter_add!("hamlet_checkpoint_write_failures_total", 1);
                    hamlet_obs::record_warning(format!(
                        "checkpoint cell (rep {rep}, train set {t}) not persisted: {e}"
                    ));
                }
            }
            out
        };
        let bundles = run_indexed_parallel(opts.train_sets, &one_train_set);

        // preds[choice][train_set] = predictions on the test set
        let mut preds: [Vec<Vec<u32>>; 3] = Default::default();
        for bundle in bundles {
            for (c, p) in bundle.into_iter().enumerate() {
                preds[c].push(p);
            }
        }
        for c in 0..3 {
            reports[c].push(decompose(&test.cond, &preds[c]));
        }
    }

    [
        SimEstimate::from_reports(&reports[0]),
        SimEstimate::from_reports(&reports[1]),
        SimEstimate::from_reports(&reports[2]),
    ]
}

/// Runs `job(0..n)` across scoped threads, returning results in index
/// order. The worker count is the once-per-process `HAMLET_THREADS`
/// resolution ([`hamlet_obs::env::resolved_threads`]): it used to be
/// re-read from the environment on every parallel region, which both
/// repeated the parse/warn work mid-experiment and let a mid-run
/// `set_var` change the worker count between regions. Now it is
/// resolved and journalled exactly once.
fn run_indexed_parallel<T, F>(n: usize, job: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    hamlet_obs::parallel::run_indexed(n, hamlet_obs::env::resolved_threads(), job)
}

/// One end-to-end run: a dataset plan materialized, a feature-selection
/// method applied, the selected subset scored on the final holdout.
#[derive(Debug, Clone)]
pub struct PlanMethodRun {
    /// The plan that produced the input table.
    pub plan_kind: PlanKind,
    /// Number of attribute tables in the input ("#Tables in input",
    /// Fig 7: entity counts as 1).
    pub tables_in_input: usize,
    /// Number of candidate features the method searched over.
    pub candidate_features: usize,
    /// The selection method.
    pub method: Method,
    /// The selection outcome.
    pub selection: SelectionResult,
    /// Names of the selected features.
    pub selected_names: Vec<String>,
    /// Final holdout test error of the selected subset.
    pub test_error: f64,
    /// Wall-clock time of the feature selection (excluding the join, as
    /// in Sec 5.1).
    pub selection_time: Duration,
}

/// Fixed split + materialized plan for running several methods.
pub struct PreparedPlan {
    /// The resolved plan.
    pub plan: JoinPlan,
    /// The flat dataset for this plan.
    pub data: Dataset,
    /// Error metric per the paper's convention.
    pub metric: ErrorMetric,
    /// The shared 50/25/25 split.
    pub split: HoldoutSplit,
}

/// Materializes a plan over a star schema and prepares the shared
/// split. Materialization failures (e.g. a dangling foreign key in a
/// user-supplied star) propagate as the relational error instead of
/// aborting the process.
pub fn prepare_plan(
    star: &StarSchema,
    plan: JoinPlan,
    seed: u64,
) -> Result<PreparedPlan, RelationalError> {
    let _span = hamlet_obs::span!("experiments.prepare_plan", plan = plan.kind.name());
    let table = plan.materialize(star)?;
    let data = Dataset::from_table(&table);
    let metric = ErrorMetric::for_classes(data.n_classes());
    let split = HoldoutSplit::paper_protocol(data.n_examples(), seed);
    Ok(PreparedPlan {
        plan,
        data,
        metric,
        split,
    })
}

/// Runs several feature-selection methods on one prepared plan with
/// Naive Bayes, scoring each selected subset on the holdout test rows.
///
/// All methods share a single [`SweepEngine`] — one sufficient-statistics
/// cache per (plan, fold), so the per-feature count tables built during
/// the first method's sweep are reused by every later method and by the
/// final-model fits (zero additional row scans).
pub fn run_methods(prepared: &PreparedPlan, methods: &[Method]) -> Vec<PlanMethodRun> {
    let nb = NaiveBayes::default();
    let candidates: Vec<usize> = (0..prepared.data.n_features()).collect();
    let ctx = SelectionContext {
        data: &prepared.data,
        train: &prepared.split.train,
        validation: &prepared.split.validation,
        classifier: &nb,
        metric: prepared.metric,
    };
    let engine = SweepEngine::new(&ctx);
    methods
        .iter()
        .map(|&method| {
            let _span = hamlet_obs::span!("experiments.run_method", method = method.name());
            let started = Instant::now();
            let selection = method.run_with(&engine, &candidates);
            let selection_time = started.elapsed();

            let final_model = nb.fit_swept(engine.stats(), &selection.features, None);
            let test_error =
                prepared
                    .metric
                    .eval(&final_model, &prepared.data, &prepared.split.test);

            PlanMethodRun {
                plan_kind: prepared.plan.kind,
                tables_in_input: 1 + prepared.plan.joined.len(),
                candidate_features: candidates.len(),
                method,
                selected_names: selection
                    .feature_names(&prepared.data)
                    .into_iter()
                    .map(str::to_string)
                    .collect(),
                selection,
                test_error,
                selection_time,
            }
        })
        .collect()
}

/// Runs one feature-selection method on a prepared plan with Naive Bayes
/// and scores the selected subset on the holdout test rows.
pub fn run_method(prepared: &PreparedPlan, method: Method) -> PlanMethodRun {
    run_methods(prepared, &[method])
        .pop()
        .expect("one method in, one run out")
}

/// Builds the paper's JoinOpt plan with the default TR rule (the ROR
/// rule gives identical verdicts on all seven datasets — checked by
/// `fig8b` and the integration tests).
pub fn join_opt_plan(star: &StarSchema, seed: u64) -> JoinPlan {
    let n_train = HoldoutSplit::paper_protocol(star.n_s(), seed).train.len();
    plan(star, PlanKind::JoinOpt, &TrRule::default(), n_train)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_datagen::realistic::DatasetSpec;
    use hamlet_datagen::sim::Scenario;
    use hamlet_datagen::skew::FkSkew;

    fn tiny_opts() -> MonteCarloOpts {
        MonteCarloOpts {
            train_sets: 8,
            repeats: 2,
            base_seed: 7,
        }
    }

    #[test]
    fn feature_set_choices_partition() {
        let spec = SimulationConfig {
            scenario: Scenario::LoneForeignFeature,
            d_s: 2,
            d_r: 3,
            n_r: 10,
            p: 0.1,
            skew: FkSkew::Uniform,
        };
        let world = spec.build_world(1);
        let sample = world.sample(50, 2);
        let data = Dataset::from_table(&sample.star.materialize_all().unwrap());
        assert_eq!(FeatureSetChoice::UseAll.features(&data).len(), 6);
        assert_eq!(FeatureSetChoice::NoJoin.features(&data).len(), 3);
        assert_eq!(FeatureSetChoice::NoFk.features(&data).len(), 5);
    }

    #[test]
    fn simulate_shows_low_error_for_useall() {
        let cfg = SimulationConfig {
            scenario: Scenario::LoneForeignFeature,
            d_s: 2,
            d_r: 2,
            n_r: 20,
            p: 0.1,
            skew: FkSkew::Uniform,
        };
        let [use_all, no_join, no_fk] = simulate(&cfg, 500, &tiny_opts());
        // UseAll and NoFK see x_r directly: error near the noise floor 0.1.
        assert!(
            use_all.test_error < 0.2,
            "UseAll error {}",
            use_all.test_error
        );
        assert!(no_fk.test_error < 0.2, "NoFK error {}", no_fk.test_error);
        // NoJoin must still be a sane classifier.
        assert!(no_join.test_error < 0.5);
        // Variance ordering: NoJoin (FK-based) >= UseAll-ish.
        assert!(no_join.net_variance >= use_all.net_variance - 0.02);
    }

    #[test]
    fn prepared_plan_and_method_run() {
        let g = DatasetSpec::walmart().generate(0.002, 3);
        let jp = join_opt_plan(&g.star, 3);
        let prepared = prepare_plan(&g.star, jp, 3).expect("synthetic star materializes");
        let run = run_method(&prepared, Method::FilterMi);
        assert!(run.test_error.is_finite());
        assert!(!run.selected_names.is_empty());
        assert!(run.candidate_features >= run.selection.features.len());
    }

    #[test]
    fn join_opt_on_walmart_avoids_both() {
        let g = DatasetSpec::walmart().generate(0.01, 5);
        let jp = join_opt_plan(&g.star, 5);
        assert!(jp.joined.is_empty(), "Walmart joins should both be avoided");
    }

    #[test]
    fn join_opt_on_yelp_joins_both() {
        let g = DatasetSpec::yelp().generate(0.01, 5);
        let jp = join_opt_plan(&g.star, 5);
        assert_eq!(jp.joined, vec![0, 1], "Yelp joins are not safe to avoid");
    }

    #[test]
    fn scale_env_parsing_defaults() {
        // Do not set the env var here (tests run in parallel); just check
        // the default path yields a sane value.
        let s = dataset_scale();
        assert!(s > 0.0 && s <= 1.0);
        let mc = try_monte_carlo_opts().unwrap();
        assert!(mc.train_sets > 0 && mc.repeats > 0);
    }

    #[test]
    fn invalid_scale_is_an_error_not_a_silent_default() {
        // Regression: HAMLET_SCALE=1.5 used to silently run at 0.1.
        // Serialized in one test (set/check/unset) because other tests
        // read the same variable; `dataset_scale` itself is not called
        // here since it exits the process on the error path.
        std::env::set_var("HAMLET_SCALE", "150");
        let e = try_dataset_scale().unwrap_err();
        assert_eq!(e.key, "HAMLET_SCALE");
        assert_eq!(e.value, "150");
        assert!(e.to_string().contains("(0, 100]"), "{e}");
        std::env::set_var("HAMLET_SCALE", "not-a-number");
        assert!(try_dataset_scale().is_err());
        std::env::set_var("HAMLET_SCALE", "10");
        assert_eq!(try_dataset_scale(), Ok(10.0));
        std::env::remove_var("HAMLET_SCALE");
        assert_eq!(try_dataset_scale(), Ok(0.1));
    }

    #[test]
    fn invalid_replication_counts_are_errors() {
        std::env::set_var("HAMLET_TRAIN_SETS", "0");
        let e = try_monte_carlo_opts().unwrap_err();
        assert_eq!(e.key, "HAMLET_TRAIN_SETS");
        std::env::remove_var("HAMLET_TRAIN_SETS");
        std::env::set_var("HAMLET_REPEATS", "-3");
        assert!(try_monte_carlo_opts().is_err());
        std::env::remove_var("HAMLET_REPEATS");
    }

    #[test]
    fn checkpointed_simulate_survives_crash_and_resumes_bit_for_bit() {
        // Serialized via the failpoint guard: both the process-global
        // failpoint registry and HAMLET_CHECKPOINT_DIR are shared state.
        let _g = hamlet_chaos::failpoint::serial();
        let cfg = SimulationConfig {
            scenario: Scenario::LoneForeignFeature,
            d_s: 2,
            d_r: 2,
            n_r: 10,
            p: 0.1,
            skew: FkSkew::Uniform,
        };
        let opts = tiny_opts();
        let baseline = simulate(&cfg, 100, &opts);

        let root = std::env::temp_dir().join("hamlet_runner_resume_test");
        let _ = std::fs::remove_dir_all(&root);
        std::env::set_var(crate::checkpoint::CHECKPOINT_DIR_VAR, &root);

        // Crash the run at the fifth completed cell (of 16).
        hamlet_chaos::failpoint::set_failpoints("runner.cell=panic@5").unwrap();
        let crashed = std::panic::catch_unwind(|| simulate(&cfg, 100, &opts));
        hamlet_chaos::failpoint::clear_failpoints();
        assert!(crashed.is_err(), "the armed failpoint must crash the run");

        // Resume: finished cells load from disk, the rest recompute.
        let resumed = simulate(&cfg, 100, &opts);
        std::env::remove_var(crate::checkpoint::CHECKPOINT_DIR_VAR);
        assert_eq!(resumed, baseline, "resume must be bit-for-bit identical");

        // A cold second pass over a complete checkpoint set also agrees.
        std::env::set_var(crate::checkpoint::CHECKPOINT_DIR_VAR, &root);
        let replayed = simulate(&cfg, 100, &opts);
        std::env::remove_var(crate::checkpoint::CHECKPOINT_DIR_VAR);
        assert_eq!(replayed, baseline);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn prepare_plan_propagates_relational_errors() {
        // Regression: a plan that cannot materialize used to abort the
        // process via `.expect("plan must materialize")`. (A dangling FK
        // itself is rejected at `StarSchema::new`, so the reachable
        // failure here is a plan referencing a nonexistent table.)
        let g = DatasetSpec::walmart().generate(0.002, 3);
        let mut jp = join_opt_plan(&g.star, 3);
        jp.joined = vec![99];
        jp.strategies = vec![hamlet_core::planner::ExecStrategy::Materialize];
        let err = match prepare_plan(&g.star, jp, 3) {
            Err(e) => e,
            Ok(_) => panic!("a plan over table #99 must not materialize"),
        };
        assert!(
            matches!(err, RelationalError::UnknownTable { .. }),
            "{err:?}"
        );
    }
}
