//! Appendix E: Tree-Augmented Naive Bayes on KFK-joined data.
//!
//! The paper's observation: "the FD `FK -> X_R` causes all features in
//! `X_R` to be dependent on FK in the tree computed by TAN. This leads to
//! `X_R` participating only via unhelpful Kronecker delta distributions"
//! — so TAN can end up *no better* (or worse) than Naive Bayes here.
//! This experiment fits both on joined simulation data, reports errors,
//! and prints the learned dependency tree to expose the FK-parent effect.

use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;
use hamlet_ml::classifier::{zero_one_error, Classifier};
use hamlet_ml::dataset::Dataset;
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::tan::Tan;

use crate::table::{f4, TextTable};

/// Result of the TAN-vs-NB comparison.
#[derive(Debug, Clone)]
pub struct TanComparison {
    /// NB holdout error.
    pub nb_error: f64,
    /// TAN holdout error.
    pub tan_error: f64,
    /// Per feature: `(name, parent name or "Y only")`.
    pub tree: Vec<(String, String)>,
    /// How many foreign features have the FK as their tree parent.
    pub xr_under_fk: usize,
    /// Total foreign features.
    pub xr_total: usize,
}

/// Runs the comparison on scenario-1 joined data.
pub fn compare(n_s: usize, n_r: usize, d_r: usize, seed: u64) -> TanComparison {
    let cfg = SimulationConfig {
        scenario: Scenario::LoneForeignFeature,
        d_s: 2,
        d_r,
        n_r,
        p: 0.1,
        skew: FkSkew::Uniform,
    };
    let world = cfg.build_world(seed);
    let train = world.sample(n_s, seed + 1);
    let test = world.sample(n_s / 4, seed + 2);
    let train_data = Dataset::from_table_trusted(&train.star.materialize_all().unwrap());
    let test_data = Dataset::from_table_trusted(&test.star.materialize_all().unwrap());
    let rows: Vec<usize> = (0..train_data.n_examples()).collect();
    let test_rows: Vec<usize> = (0..test_data.n_examples()).collect();
    let feats: Vec<usize> = (0..train_data.n_features()).collect();

    let nb = NaiveBayes::default().fit(&train_data, &rows, &feats);
    let tan = Tan::default().fit(&train_data, &rows, &feats);

    let fk_pos = train_data
        .feature_index("FK")
        .expect("joined sim data has an FK feature");
    let mut tree = Vec::new();
    let mut xr_under_fk = 0;
    let mut xr_total = 0;
    for (i, parent) in tan.parents().iter().enumerate() {
        let name = train_data.feature(feats[i]).name.clone();
        let parent_name = match parent {
            Some(p) => train_data.feature(feats[*p]).name.clone(),
            None => "Y only".to_string(),
        };
        if name.starts_with("xr") {
            xr_total += 1;
            if *parent == Some(fk_pos) {
                xr_under_fk += 1;
            }
        }
        tree.push((name, parent_name));
    }

    TanComparison {
        nb_error: zero_one_error(&nb, &test_data, &test_rows),
        tan_error: zero_one_error(&tan, &test_data, &test_rows),
        tree,
        xr_under_fk,
        xr_total,
    }
}

/// Full appendix-E report.
pub fn report(n_s: usize, seed: u64) -> String {
    let cmp = compare(n_s, 40, 4, seed);
    let mut t = TextTable::new(["Feature", "Tree parent (besides Y)"]);
    for (f, p) in &cmp.tree {
        t.row([f.clone(), p.clone()]);
    }
    format!(
        "Appendix E: TAN vs Naive Bayes on KFK-joined data (scenario 1, n_S = {n_s})\n\
         NB error  = {}\nTAN error = {}\n\
         Foreign features parented by FK in TAN's tree: {}/{}\n\n{}",
        f4(cmp.nb_error),
        f4(cmp.tan_error),
        cmp.xr_under_fk,
        cmp.xr_total,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fk_captures_foreign_features_in_tree() {
        let cmp = compare(2000, 20, 3, 7);
        // The FD FK -> X_R makes I(xr_i; FK | Y) maximal: every foreign
        // feature should hang off FK (or off another xr that hangs off FK
        // transitively — we require a majority directly under FK).
        assert!(
            cmp.xr_under_fk * 2 >= cmp.xr_total,
            "only {}/{} foreign features under FK",
            cmp.xr_under_fk,
            cmp.xr_total
        );
        assert_eq!(cmp.xr_total, 3);
    }

    #[test]
    fn tan_is_not_better_than_nb_here() {
        let cmp = compare(2000, 20, 3, 9);
        // Appendix E: TAN "might actually be less accurate" — require it
        // not to beat NB by a meaningful margin on this FD-ridden data.
        assert!(
            cmp.tan_error >= cmp.nb_error - 0.03,
            "TAN {} unexpectedly beat NB {}",
            cmp.tan_error,
            cmp.nb_error
        );
    }
}
