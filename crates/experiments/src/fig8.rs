//! Figure 8: drill-down on the real datasets.
//!
//! * **(A) robustness** — holdout errors for *every* subset of avoidable
//!   joins under forward and backward selection, highlighting the plan
//!   JoinOpt picked;
//! * **(B) sensitivity** — the TR and ROR values per attribute table
//!   against the default and relaxed thresholds, plus the hindsight
//!   ground truth;
//! * **(C) dropping FKs** — JoinOpt vs JoinAllNoFK.

use hamlet_core::planner::{explicit_plan, join_stats, plan as make_plan, PlanKind};
use hamlet_core::rules::{DecisionRule, RorRule, TrRule, RELAXED_RHO, RELAXED_TAU};
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_fs::Method;

use crate::runner::{prepare_plan, run_method};
use crate::table::{f2, f4, TextTable};

/// All subsets of `0..k` (k <= 16), smallest first.
fn subsets(k: usize) -> Vec<Vec<usize>> {
    assert!(k <= 16, "subset lattice too large");
    let mut out = Vec::with_capacity(1 << k);
    for mask in 0..(1u32 << k) {
        out.push((0..k).filter(|&i| mask & (1 << i) != 0).collect());
    }
    out.sort_by_key(Vec::len);
    out
}

/// Human-readable plan label: which joins are avoided.
fn plan_label(spec: &DatasetSpec, joined: &[usize]) -> String {
    let avoided: Vec<&str> = (0..spec.tables.len())
        .filter(|i| !joined.contains(i))
        .map(|i| spec.tables[i].table)
        .collect();
    if avoided.is_empty() {
        "JoinAll".to_string()
    } else if avoided.len() == spec.tables.len() {
        "NoJoins".to_string()
    } else {
        format!("No{}", avoided.join("+No"))
    }
}

/// Panel (A): robustness over the plan lattice for one dataset.
///
/// Open-domain FK tables (Expedia's Searches) are always joined, matching
/// the paper's exclusion of Expedia from this panel when only one closed
/// FK exists.
pub fn robustness(spec: &DatasetSpec, scale: f64, seed: u64) -> String {
    let g = spec.generate(scale, seed);
    let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
    let open: Vec<usize> = (0..spec.tables.len())
        .filter(|&i| !spec.tables[i].closed)
        .collect();
    let closed: Vec<usize> = (0..spec.tables.len())
        .filter(|&i| spec.tables[i].closed)
        .collect();

    let join_opt = make_plan(&g.star, PlanKind::JoinOpt, &TrRule::default(), n_train);

    let mut t = TextTable::new(["Plan", "FS err", "BS err", "JoinOpt?"]);
    for subset in subsets(closed.len()) {
        let mut joined: Vec<usize> = subset.iter().map(|&j| closed[j]).collect();
        joined.extend(open.iter().copied());
        joined.sort_unstable();
        let prepared = prepare_plan(&g.star, explicit_plan(&joined), seed)
            .expect("synthetic star materializes");
        let fs = run_method(&prepared, Method::Forward);
        let bs = run_method(&prepared, Method::Backward);
        let chosen = {
            let mut a = join_opt.joined.clone();
            a.sort_unstable();
            a == joined
        };
        t.row([
            plan_label(spec, &joined),
            f4(fs.test_error),
            f4(bs.test_error),
            if chosen { "<- chosen" } else { "" }.to_string(),
        ]);
    }
    format!(
        "{} (metric: {})\n{}",
        spec.name,
        if spec.n_classes <= 2 {
            "Zero-one"
        } else {
            "RMSE"
        },
        t.render()
    )
}

/// Full panel (A) report. Expedia is skipped, as in the paper (it has
/// only one closed-domain foreign key, so Fig 7 already covers it).
pub fn report_a(scale: f64, seed: u64) -> String {
    let mut out =
        String::from("Figure 8(A): robustness — errors for every join-avoidance plan (FS/BS)\n\n");
    for spec in DatasetSpec::all() {
        if spec.name == "Expedia" {
            continue;
        }
        out.push_str(&robustness(&spec, scale, seed));
        out.push('\n');
    }
    out
}

/// Panel (B): rule statistics per attribute table.
pub fn report_b(scale: f64, seed: u64) -> String {
    let tr_rule = TrRule::default();
    let ror_rule = RorRule::default();
    let tr_relaxed = TrRule::with_tau(RELAXED_TAU);
    let ror_relaxed = RorRule::with_rho(RELAXED_RHO);

    let mut t = TextTable::new([
        "Dataset",
        "Table",
        "TR",
        "1/sqrt(TR)",
        "ROR",
        "TR rule",
        "ROR rule",
        "relaxed",
        "hindsight",
    ]);
    for spec in DatasetSpec::all() {
        let g = spec.generate(scale, seed);
        let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
        for (i, at) in spec.tables.iter().enumerate() {
            let stats = join_stats(&g.star, i, n_train);
            let verdict = |d: hamlet_core::rules::Decision| {
                if d.is_avoid() {
                    "avoid"
                } else {
                    "join"
                }
            };
            let tr = tr_rule.statistic(&stats);
            t.row([
                spec.name.to_string(),
                at.table.to_string(),
                f2(tr),
                f4(1.0 / tr.sqrt()),
                f4(ror_rule.statistic(&stats)),
                verdict(tr_rule.decide(&stats)).to_string(),
                verdict(ror_rule.decide(&stats)).to_string(),
                format!(
                    "{}/{}",
                    verdict(tr_relaxed.decide(&stats)),
                    verdict(ror_relaxed.decide(&stats))
                ),
                if at.safe_to_avoid_in_hindsight {
                    "okay to avoid"
                } else {
                    "NOT okay"
                }
                .to_string(),
            ]);
        }
    }
    format!(
        "Figure 8(B): sensitivity — rule statistics vs thresholds (tau = {}, rho = {}; relaxed tau = {}, rho = {})\n{}",
        TrRule::default().tau,
        RorRule::default().rho,
        RELAXED_TAU,
        RELAXED_RHO,
        t.render()
    )
}

/// Panel (C): JoinOpt vs JoinAllNoFK with FS and BS.
pub fn report_c(scale: f64, seed: u64) -> String {
    let mut t = TextTable::new([
        "Dataset",
        "Metric",
        "JoinOpt FS",
        "NoFK FS",
        "JoinOpt BS",
        "NoFK BS",
    ]);
    for spec in DatasetSpec::all() {
        let g = spec.generate(scale, seed);
        let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
        let opt = prepare_plan(
            &g.star,
            make_plan(&g.star, PlanKind::JoinOpt, &TrRule::default(), n_train),
            seed,
        )
        .expect("synthetic star materializes");
        let nofk = prepare_plan(
            &g.star,
            make_plan(&g.star, PlanKind::JoinAllNoFk, &TrRule::default(), n_train),
            seed,
        )
        .expect("synthetic star materializes");
        let opt_fs = run_method(&opt, Method::Forward);
        let opt_bs = run_method(&opt, Method::Backward);
        let nofk_fs = run_method(&nofk, Method::Forward);
        let nofk_bs = run_method(&nofk, Method::Backward);
        t.row([
            spec.name.to_string(),
            opt.metric.name().to_string(),
            f4(opt_fs.test_error),
            f4(nofk_fs.test_error),
            f4(opt_bs.test_error),
            f4(nofk_bs.test_error),
        ]);
    }
    format!(
        "Figure 8(C): dropping all foreign keys a priori (JoinAllNoFK) vs JoinOpt\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_enumerate_lattice() {
        let s = subsets(3);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], Vec::<usize>::new());
        assert!(s.contains(&vec![0, 1, 2]));
    }

    #[test]
    fn plan_labels() {
        let spec = DatasetSpec::walmart();
        assert_eq!(plan_label(&spec, &[0, 1]), "JoinAll");
        assert_eq!(plan_label(&spec, &[]), "NoJoins");
        assert_eq!(plan_label(&spec, &[0]), "NoStores");
        assert_eq!(plan_label(&spec, &[1]), "NoIndicators");
    }

    #[test]
    fn report_b_covers_all_14_joins() {
        let s = report_b(0.002, 3);
        // 7 datasets x 2-3 tables = 14 rows + header + separator.
        let rows = s.lines().count() - 3;
        assert_eq!(rows, 15, "expected 15 attribute tables:\n{s}");
        assert!(s.contains("okay to avoid"));
    }

    #[test]
    fn robustness_marks_chosen_plan() {
        let spec = DatasetSpec::walmart();
        let s = robustness(&spec, 0.002, 3);
        assert!(s.contains("<- chosen"));
        assert!(s.contains("NoJoins"));
    }
}
