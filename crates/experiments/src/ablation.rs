//! Ablation studies for the design choices DESIGN.md §4 calls out:
//!
//! 1. **exact vs worst-case ROR** — on simulation worlds the oracle
//!    quantities (`U_S`, `U_R`, hence `v_Yes`, `v_No`) are known, so the
//!    conservatism gap of the computable bound can be measured;
//! 2. **skew guards** — the paper's conservative `H(Y)` check vs the
//!    targeted `min_y H(FK|Y=y)/H(FK)` detector (appendix D), against the
//!    actual NoJoin error increase under benign and malign skew;
//! 3. **threshold sweep** — how the number of avoided joins and of
//!    *unsafely* avoided joins moves with `tau` and `rho` across the
//!    seven datasets.

use hamlet_core::planner::join_stats;
use hamlet_core::ror::{exact_ror, worst_case_ror, OracleRor, DEFAULT_DELTA};
use hamlet_core::rules::{DecisionRule, RorRule, TrRule};
use hamlet_core::skew::{diagnose_skew, MALIGN_RETENTION_FLOOR};
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;
use hamlet_ml::dataset::Dataset;

use crate::runner::{simulate, MonteCarloOpts};
use crate::table::{f2, f4, TextTable};

/// Ablation 1: the oracle-vs-bound gap on scenario-2 worlds, where
/// `U_R = X_R`, so `v_No = q_S + (#distinct X_R combinations in R)`.
pub fn ror_gap_report() -> String {
    let mut t = TextTable::new([
        "n_S",
        "|D_FK|",
        "d_R",
        "q_No (joint)",
        "exact ROR",
        "worst-case ROR",
        "gap",
    ]);
    for &n_s in &[1_000usize, 4_000] {
        for &n_r in &[40usize, 160] {
            for &d_r in &[2usize, 4, 8] {
                let cfg = SimulationConfig {
                    scenario: Scenario::AllFeatures,
                    d_s: 2,
                    d_r,
                    n_r,
                    p: 0.1,
                    skew: FkSkew::Uniform,
                };
                let world = cfg.build_world(7);
                // Distinct joint X_R combinations actually in R.
                let r = world.r_table();
                let mut seen = std::collections::HashSet::new();
                for row in 0..r.n_rows() {
                    let combo: Vec<u32> = r
                        .schema()
                        .features()
                        .iter()
                        .map(|&i| r.column(i).get(row))
                        .collect();
                    seen.insert(combo);
                }
                let q_no = seen.len();
                let q_s = 2; // d_S booleans, binary-coded width
                let oracle = OracleRor {
                    v_yes: q_s + n_r,
                    v_no: q_s + q_no,
                    delta_bias: 0.0,
                };
                let exact = exact_ror(oracle, n_s, DEFAULT_DELTA);
                let worst = worst_case_ror(n_s, n_r, 2, DEFAULT_DELTA);
                t.row([
                    n_s.to_string(),
                    n_r.to_string(),
                    d_r.to_string(),
                    q_no.to_string(),
                    f4(exact),
                    f4(worst),
                    f4(worst - exact),
                ]);
            }
        }
    }
    format!(
        "Ablation 1: exact (oracle) vs worst-case ROR, scenario 2\n\
         The bound is tight when X_R is coarse (few joint values) and loosens as d_R grows.\n{}",
        t.render()
    )
}

/// Ablation 2: skew guards vs actual harm.
pub fn skew_guard_report(opts: &MonteCarloOpts) -> String {
    let mut t = TextTable::new([
        "skew",
        "H(Y)",
        "retention",
        "H(Y) guard",
        "H(FK|Y) detector",
        "NoJoin - UseAll err",
    ]);
    let cases: Vec<(String, FkSkew)> = vec![
        ("uniform".into(), FkSkew::Uniform),
        ("zipf(1)".into(), FkSkew::Zipf { exponent: 1.0 }),
        ("zipf(2)".into(), FkSkew::Zipf { exponent: 2.0 }),
        (
            "needle(0.3)".into(),
            FkSkew::NeedleAndThread { needle_prob: 0.3 },
        ),
        (
            "needle(0.5)".into(),
            FkSkew::NeedleAndThread { needle_prob: 0.5 },
        ),
        (
            "needle(0.7)".into(),
            FkSkew::NeedleAndThread { needle_prob: 0.7 },
        ),
    ];
    for (label, skew) in cases {
        let cfg = SimulationConfig {
            scenario: Scenario::LoneForeignFeature,
            d_s: 2,
            d_r: 2,
            n_r: 40,
            p: 0.1,
            skew,
        };
        // Diagnostics on one large sample.
        let world = cfg.build_world(opts.base_seed);
        let sample = world.sample(4_000, opts.base_seed + 1);
        let data =
            Dataset::from_table_trusted(&sample.star.materialize_all().expect("materializes"));
        let fk = data.feature(data.feature_index("FK").expect("FK present"));
        let rows: Vec<usize> = (0..data.n_examples()).collect();
        let report = diagnose_skew(
            &fk.codes,
            fk.domain_size,
            data.labels(),
            data.n_classes(),
            &rows,
        );
        // Actual harm.
        let est = simulate(&cfg, 1_000, opts);
        let harm = est[1].test_error - est[0].test_error;
        t.row([
            label,
            f2(report.h_y),
            f2(report.retention),
            if report.conservative_guard_fires() {
                "fires"
            } else {
                "-"
            }
            .to_string(),
            if report.is_malign(MALIGN_RETENTION_FLOOR) {
                "malign"
            } else {
                "benign"
            }
            .to_string(),
            f4(harm),
        ]);
    }
    format!(
        "Ablation 2: skew guards vs actual NoJoin harm (scenario 1, n_S = 1000, |D_FK| = 40)\n\
         The targeted H(FK|Y) detector flags exactly the distributions that actually hurt.\n{}",
        t.render()
    )
}

/// Ablation 3: threshold sweep over the seven datasets.
pub fn threshold_sweep_report(scale: f64, seed: u64) -> String {
    let mut t = TextTable::new([
        "rule",
        "threshold",
        "#avoided (of 15)",
        "#unsafe avoided",
        "#missed opportunities",
    ]);
    let sweep_tau = [5.0f64, 10.0, 20.0, 40.0, 80.0];
    let sweep_rho = [1.0f64, 2.0, 2.6, 4.2, 6.0];

    let datasets: Vec<(DatasetSpec, _)> = DatasetSpec::all()
        .into_iter()
        .map(|spec| {
            let g = spec.generate(scale, seed);
            (spec, g)
        })
        .collect();

    let mut eval = |name: &str, threshold: f64, rule: &dyn DecisionRule| {
        let mut avoided = 0usize;
        let mut unsafe_avoided = 0usize;
        let mut missed = 0usize;
        for (spec, g) in &datasets {
            let n_train = (g.star.n_s() as f64 * 0.5).round() as usize;
            for (i, at) in spec.tables.iter().enumerate() {
                let stats = join_stats(&g.star, i, n_train);
                let avoid = rule.decide(&stats).is_avoid();
                if avoid {
                    avoided += 1;
                    if !at.safe_to_avoid_in_hindsight {
                        unsafe_avoided += 1;
                    }
                } else if at.safe_to_avoid_in_hindsight {
                    missed += 1;
                }
            }
        }
        t.row([
            name.to_string(),
            f2(threshold),
            avoided.to_string(),
            unsafe_avoided.to_string(),
            missed.to_string(),
        ]);
    };

    for &tau in &sweep_tau {
        eval("TR", tau, &TrRule::with_tau(tau));
    }
    for &rho in &sweep_rho {
        eval("ROR", rho, &RorRule::with_rho(rho));
    }
    format!(
        "Ablation 3: threshold sweep (15 attribute tables across 7 datasets)\n\
         Lower tau / higher rho avoid more joins; conservatism = zero unsafe avoids.\n{}",
        t.render()
    )
}

/// Full ablation report.
pub fn report(opts: &MonteCarloOpts, scale: f64, seed: u64) -> String {
    format!(
        "{}\n{}\n{}",
        ror_gap_report(),
        skew_guard_report(opts),
        threshold_sweep_report(scale, seed)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ror_gap_is_nonnegative_and_grows_with_dr() {
        let s = ror_gap_report();
        assert!(s.contains("worst-case ROR"));
        // Parse gaps: all nonnegative.
        for line in s.lines().skip(4) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            if cols.len() >= 7 {
                if let Ok(gap) = cols[6].parse::<f64>() {
                    assert!(gap >= -1e-9, "negative gap in: {line}");
                }
            }
        }
    }

    #[test]
    fn threshold_sweep_is_monotone_for_tr() {
        let s = threshold_sweep_report(0.01, 5);
        // Larger tau avoids fewer joins.
        let counts: Vec<usize> = s
            .lines()
            .filter(|l| l.starts_with("TR"))
            .map(|l| l.split_whitespace().nth(2).unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), 5);
        for w in counts.windows(2) {
            assert!(w[1] <= w[0], "avoided counts not monotone: {counts:?}");
        }
        // The default tau = 20 row must avoid without unsafe avoids.
        assert!(s.contains("TR"));
    }

    #[test]
    fn skew_guard_detects_needles() {
        let opts = MonteCarloOpts {
            train_sets: 6,
            repeats: 2,
            base_seed: 13,
        };
        let s = skew_guard_report(&opts);
        // All needle rows flagged malign; uniform/zipf benign.
        for line in s.lines() {
            if line.starts_with("needle") {
                assert!(line.contains("malign"), "needle not flagged: {line}");
            }
            if line.starts_with("uniform") || line.starts_with("zipf") {
                assert!(line.contains("benign"), "benign skew misflagged: {line}");
            }
        }
    }
}
