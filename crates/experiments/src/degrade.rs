//! The `chaos-degrade` scenario: an end-to-end proof that the pipeline
//! survives absent attribute tables and scoring faults.
//!
//! Three phases, each asserting the degraded-mode contract from
//! DESIGN.md §11:
//!
//! 1. **Parity, no fault armed.** A manifest corpus loads under both
//!    [`TablePolicy::Require`] and [`TablePolicy::AllowDegraded`]; with
//!    every table present the two stars, artifacts, and predictions must
//!    be bit-for-bit identical — tolerance is free when nothing is
//!    broken.
//! 2. **Degraded load.** With `relational.table_open=io@1` armed, the
//!    strict load fails with a typed error while the tolerant load
//!    substitutes an FK-only surrogate, records the worst-case ROR
//!    evidence, and the built artifact marks the decision `degraded`.
//! 3. **Serving fallback chain.** A `fallback: true` server takes a
//!    `serve.model_score=panic@3` fault mid-traffic: every response is
//!    still 2xx (the faulted one answers from the prior-only surrogate
//!    with the `X-Hamlet-Degraded` marker), `hamlet_serve_degraded_total`
//!    counts it, the post-fault response is byte-identical to the
//!    pre-fault one, and the drain is clean (zero 4xx/5xx).
//!
//! The `chaos_degrade` binary runs the scenario and exits nonzero on
//! any violated assertion; CI's `degrade-smoke` job invokes it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use hamlet_chaos::failpoint;
use hamlet_core::advisor::AdvisorConfig;
use hamlet_core::ModelFamily;
use hamlet_obs::json::Json;
use hamlet_relational::{DirtyPolicy, FkPolicy, LoadPolicy, Manifest, TablePolicy};
use hamlet_serve::{build_artifact_with_availability, ModelKind, Scorer, ServerConfig};

fn ensure(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

fn policy(on_missing_table: TablePolicy) -> LoadPolicy {
    LoadPolicy {
        on_dirty: DirtyPolicy::Abort,
        on_dangling_fk: FkPolicy::Abort,
        on_missing_table,
    }
}

/// Writes the two-table churn corpus and returns the manifest path.
fn write_corpus(dir: &Path) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mut customers = String::from("Churn,Age,EmployerID\n");
    for i in 0..5000 {
        let e = i % 50;
        customers.push_str(&format!("{},{},e{}\n", (e + i / 50) % 2, 20 + i % 40, e));
    }
    let mut employers = String::from("EmployerID,Country\n");
    for e in 0..50 {
        employers.push_str(&format!("e{},c{}\n", e, e % 8));
    }
    std::fs::write(dir.join("customers.csv"), customers).map_err(|e| e.to_string())?;
    std::fs::write(dir.join("employers.csv"), employers).map_err(|e| e.to_string())?;
    let manifest = "\
entity customers.csv
target Churn
numeric Age 8
fk EmployerID employers.csv closed

table employers.csv
key EmployerID
feature Country
";
    let mpath = dir.join("churn.manifest");
    std::fs::write(&mpath, manifest).map_err(|e| e.to_string())?;
    Ok(mpath)
}

/// A positional-rows request body valid for `artifact`'s schema: one
/// all-zeros row plus one cold-start row (huge FK code).
fn rows_body(artifact: &hamlet_serve::ModelArtifact) -> String {
    let zeros: Vec<&str> = artifact.features.iter().map(|_| "0").collect();
    let cold: Vec<&str> = artifact
        .features
        .iter()
        .map(|f| if f.fk.is_some() { "999999" } else { "0" })
        .collect();
    format!("{{\"rows\":[[{}],[{}]]}}", zeros.join(","), cold.join(","))
}

/// One-shot HTTP client: sends raw bytes, reads the full response.
fn roundtrip(port: u16, raw: &str) -> Result<String, String> {
    let mut s = TcpStream::connect(("127.0.0.1", port)).map_err(|e| e.to_string())?;
    s.write_all(raw.as_bytes()).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match s.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
        }
    }
    Ok(String::from_utf8_lossy(&out).into_owned())
}

fn post(port: u16, path: &str, body: &str) -> Result<String, String> {
    roundtrip(
        port,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(port: u16, path: &str) -> Result<String, String> {
    roundtrip(
        port,
        &format!("GET {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n"),
    )
}

/// Runs the three-phase scenario in `dir` (created fresh, left on disk
/// for post-mortems) and returns the human-readable report; any violated
/// assertion is an `Err`.
pub fn report(dir: &Path) -> Result<String, String> {
    let _ = std::fs::remove_dir_all(dir);
    let mpath = write_corpus(dir)?;
    let text = std::fs::read_to_string(&mpath).map_err(|e| e.to_string())?;
    let manifest = Manifest::parse(&text).map_err(|e| e.to_string())?;
    let config = AdvisorConfig::for_family(ModelFamily::NaiveBayes);
    let kind = ModelKind::from_name("nb").expect("nb is a model kind");
    let mut out = String::from("chaos-degrade scenario\n");

    // Phase 1 — parity with no fault armed: Require and AllowDegraded
    // must agree bit for bit.
    let strict = manifest
        .load_policy(dir, &policy(TablePolicy::Require))
        .map_err(|e| e.to_string())?;
    let tolerant = manifest
        .load_policy(dir, &policy(TablePolicy::AllowDegraded))
        .map_err(|e| e.to_string())?;
    ensure(
        tolerant.substitutions.is_empty(),
        "phase 1: a clean load must not substitute any table",
    )?;
    let strict_built = build_artifact_with_availability(&strict.star, kind, &config, "churn", &[])
        .map_err(|e| e.to_string())?;
    let tolerant_built =
        build_artifact_with_availability(&tolerant.star, kind, &config, "churn", &[])
            .map_err(|e| e.to_string())?;
    let body = rows_body(&strict_built.artifact);
    let doc = Json::parse(&body).map_err(|e| e.to_string())?;
    let strict_scorer = Scorer::new(strict_built.artifact);
    let tolerant_scorer = Scorer::new(tolerant_built.artifact);
    let strict_preds = strict_scorer
        .predict_body(&doc)
        .map_err(|e| e.to_string())?;
    let tolerant_preds = tolerant_scorer
        .predict_body(&doc)
        .map_err(|e| e.to_string())?;
    ensure(
        Scorer::render_predictions(&strict_preds).to_string()
            == Scorer::render_predictions(&tolerant_preds).to_string(),
        "phase 1: Require and AllowDegraded predictions must be bit-for-bit identical",
    )?;
    out.push_str("phase 1 (parity, no fault): Require == AllowDegraded bit-for-bit\n");

    // Phase 2 — degraded load: the strict load fails typed, the
    // tolerant load substitutes an FK-only surrogate with evidence.
    failpoint::set_failpoints("relational.table_open=io@1").map_err(|e| e.to_string())?;
    let strict_res = manifest.load_policy(dir, &policy(TablePolicy::Require));
    ensure(
        strict_res.is_err(),
        "phase 2: the strict load must fail under relational.table_open=io@1",
    )?;
    failpoint::set_failpoints("relational.table_open=io@1").map_err(|e| e.to_string())?;
    let degraded = manifest
        .load_policy(dir, &policy(TablePolicy::AllowDegraded))
        .map_err(|e| e.to_string())?;
    failpoint::clear_failpoints();
    ensure(
        degraded.substitutions.len() == 1,
        "phase 2: exactly one table must be substituted",
    )?;
    let evidence = degraded.substitutions[0].evidence();
    let degraded_built = build_artifact_with_availability(
        &degraded.star,
        kind,
        &config,
        "churn",
        &degraded.substitutions,
    )
    .map_err(|e| e.to_string())?;
    ensure(
        degraded_built.artifact.decisions.iter().any(|d| d.degraded),
        "phase 2: the substituted table's decision must be marked degraded",
    )?;
    out.push_str(&format!("phase 2 (degraded load): {evidence}\n"));

    // Phase 3 — serving fallback chain: a scoring panic mid-traffic
    // never surfaces as 5xx, the surrogate answer is marked, and the
    // no-fault path stays byte-identical.
    let handle = hamlet_serve::start(
        strict_scorer,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            queue_capacity: 16,
            fallback: true,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let port = handle.port();
    let before = post(port, "/predict", &body)?;
    ensure(
        before.starts_with("HTTP/1.1 200"),
        "phase 3: the pre-fault predict must be 200",
    )?;
    ensure(
        !before.contains("X-Hamlet-Degraded"),
        "phase 3: the pre-fault predict must not be marked degraded",
    )?;
    failpoint::set_failpoints("serve.model_score=panic@3").map_err(|e| e.to_string())?;
    let mut degraded_responses = 0;
    for i in 0..6 {
        let resp = post(port, "/predict", &body)?;
        ensure(
            resp.starts_with("HTTP/1.1 2"),
            &format!("phase 3: request {i} under fault must be 2xx, got: {resp}"),
        )?;
        if resp.contains("X-Hamlet-Degraded: true") {
            ensure(
                resp.contains("\"degraded\":true"),
                "phase 3: the degraded header and JSON field must travel together",
            )?;
            degraded_responses += 1;
        }
    }
    failpoint::clear_failpoints();
    ensure(
        degraded_responses == 1,
        "phase 3: exactly the panicked request must answer from the surrogate",
    )?;
    let after = post(port, "/predict", &body)?;
    ensure(
        after == before,
        "phase 3: the post-fault response must be byte-identical to the pre-fault one",
    )?;
    let metrics = get(port, "/metrics")?;
    let degraded_total: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("hamlet_serve_degraded_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    ensure(
        degraded_total >= 1,
        "phase 3: hamlet_serve_degraded_total must be nonzero",
    )?;
    handle.stop();
    let stats = handle.run_until_stopped()?;
    ensure(
        stats.errors == 0,
        "phase 3: the drain must report zero 4xx/5xx responses",
    )?;
    out.push_str(&format!(
        "phase 3 (fallback chain): {} request(s), 0 errors, {} surrogate answer(s), \
         hamlet_serve_degraded_total {degraded_total}, clean drain\n",
        stats.requests, degraded_responses,
    ));
    out.push_str("chaos-degrade: all phases passed\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_degrade_scenario_passes() {
        // The scenario arms process-global failpoints.
        let _g = failpoint::serial();
        let dir = std::env::temp_dir().join("hamlet_chaos_degrade_test");
        let out = report(&dir).unwrap_or_else(|e| panic!("scenario failed: {e}"));
        assert!(out.contains("bit-for-bit"), "{out}");
        assert!(out.contains("FK-only"), "{out}");
        assert!(out.contains("clean drain"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
