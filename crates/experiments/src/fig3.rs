//! Figure 3: simulation scenario 1 (lone `X_r` carries the signal).
//!
//! (A) average test error and net variance vs `n_S` at
//! `(d_S, d_R, |D_FK|) = (2, 4, 40)`, `p = 0.1`;
//! (B) the same vs `|D_FK| (= n_R)` at `(n_S, d_S, d_R) = (1000, 4, 4)`.
//!
//! The reproduced shape: `UseAll` and `NoFK` sit near the noise floor;
//! `NoJoin` matches them at large `n_S` but degrades as `n_S` shrinks or
//! `|D_FK|` grows — and the degradation is driven by net variance.

use hamlet_datagen::sim::{Scenario, SimulationConfig};
use hamlet_datagen::skew::FkSkew;

use crate::runner::{simulate, FeatureSetChoice, MonteCarloOpts, SimEstimate};
use crate::table::{f4, TextTable};

/// `n_S` sweep of panel (A).
pub const PANEL_A_NS: [usize; 6] = [250, 500, 1000, 2000, 4000, 8000];
/// `|D_FK|` sweep of panel (B).
pub const PANEL_B_DFK: [usize; 6] = [10, 25, 50, 100, 200, 500];

/// One sweep point: the varied value plus estimates for the three model
/// classes (UseAll, NoJoin, NoFK).
pub type SweepPoint = (usize, [SimEstimate; 3]);

/// Runs panel (A): vary `n_S`.
pub fn panel_a(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    let cfg = SimulationConfig {
        scenario: Scenario::LoneForeignFeature,
        d_s: 2,
        d_r: 4,
        n_r: 40,
        p: 0.1,
        skew: FkSkew::Uniform,
    };
    PANEL_A_NS
        .iter()
        .map(|&n_s| (n_s, simulate(&cfg, n_s, opts)))
        .collect()
}

/// Runs panel (B): vary `|D_FK|`.
pub fn panel_b(opts: &MonteCarloOpts) -> Vec<SweepPoint> {
    PANEL_B_DFK
        .iter()
        .map(|&n_r| {
            let cfg = SimulationConfig {
                scenario: Scenario::LoneForeignFeature,
                d_s: 4,
                d_r: 4,
                n_r,
                p: 0.1,
                skew: FkSkew::Uniform,
            };
            (n_r, simulate(&cfg, 1000, opts))
        })
        .collect()
}

/// Renders one panel as the paper's two series (test error, net variance)
/// per model class.
pub fn render_panel(varied: &str, points: &[SweepPoint]) -> String {
    let mut t = TextTable::new([
        varied,
        "UseAll err",
        "NoJoin err",
        "NoFK err",
        "UseAll netvar",
        "NoJoin netvar",
        "NoFK netvar",
    ]);
    for (x, est) in points {
        t.row([
            x.to_string(),
            f4(est[0].test_error),
            f4(est[1].test_error),
            f4(est[2].test_error),
            f4(est[0].net_variance),
            f4(est[1].net_variance),
            f4(est[2].net_variance),
        ]);
    }
    t.render()
}

/// Full Figure 3 report.
pub fn report(opts: &MonteCarloOpts) -> String {
    let mut out = String::new();
    out.push_str("Figure 3: scenario 1 (lone X_r in the true distribution), p = 0.1\n");
    out.push_str(&format!(
        "Monte Carlo: {} train sets x {} worlds\n\n",
        opts.train_sets, opts.repeats
    ));
    out.push_str("(A) vary n_S; (d_S, d_R, |D_FK|) = (2, 4, 40)\n");
    out.push_str(&render_panel("n_S", &panel_a(opts)));
    out.push_str("\n(B) vary |D_FK| (= n_R); (n_S, d_S, d_R) = (1000, 4, 4)\n");
    out.push_str(&render_panel("|D_FK|", &panel_b(opts)));
    let _ = FeatureSetChoice::ALL; // names documented in render header
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MonteCarloOpts {
        MonteCarloOpts {
            train_sets: 6,
            repeats: 2,
            base_seed: 3,
        }
    }

    #[test]
    fn nojoin_error_decreases_with_n_s() {
        // The headline trend of Fig 3(A): NoJoin's error at the largest
        // n_S is no worse than at the smallest.
        let cfg = SimulationConfig {
            scenario: Scenario::LoneForeignFeature,
            d_s: 2,
            d_r: 4,
            n_r: 40,
            p: 0.1,
            skew: FkSkew::Uniform,
        };
        let small = simulate(&cfg, 250, &tiny());
        let large = simulate(&cfg, 4000, &tiny());
        assert!(
            large[1].test_error <= small[1].test_error + 0.02,
            "NoJoin {} -> {}",
            small[1].test_error,
            large[1].test_error
        );
    }

    #[test]
    fn nojoin_error_increases_with_dfk() {
        // The headline trend of Fig 3(B).
        let mk = |n_r| SimulationConfig {
            scenario: Scenario::LoneForeignFeature,
            d_s: 2,
            d_r: 2,
            n_r,
            p: 0.1,
            skew: FkSkew::Uniform,
        };
        let small = simulate(&mk(10), 600, &tiny());
        let large = simulate(&mk(300), 600, &tiny());
        assert!(
            large[1].test_error > small[1].test_error,
            "NoJoin {} -> {}",
            small[1].test_error,
            large[1].test_error
        );
        // ... and it is a variance effect.
        assert!(large[1].net_variance > small[1].net_variance);
    }

    #[test]
    fn render_has_all_rows() {
        let est = SimEstimate {
            test_error: 0.1,
            net_variance: 0.01,
            bias: 0.0,
            variance: 0.01,
        };
        let s = render_panel("n_S", &[(250, [est; 3]), (500, [est; 3])]);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("NoJoin err"));
    }
}
