//! Error types for the relational substrate.

use std::fmt;

/// Errors raised by relational operations (schema violations, bad joins,
/// malformed tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A column's length does not match the table's row count.
    ColumnLengthMismatch {
        table: String,
        column: String,
        expected: usize,
        actual: usize,
    },
    /// A code in a column falls outside its domain.
    CodeOutOfDomain {
        table: String,
        column: String,
        code: u32,
        domain_size: usize,
    },
    /// An attribute name was referenced but does not exist.
    UnknownAttribute { table: String, attribute: String },
    /// A table name was referenced but does not exist in the catalog.
    UnknownTable { name: String },
    /// Two attributes in one table share a name.
    DuplicateAttribute { table: String, attribute: String },
    /// A table declared more than one primary key or target.
    DuplicateRole { table: String, role: &'static str },
    /// A table is missing a role (e.g. target) an operation requires.
    MissingRole { table: String, role: &'static str },
    /// A primary key column contains duplicate values.
    PrimaryKeyNotUnique { table: String, attribute: String },
    /// The foreign key's domain does not match the referenced primary key's
    /// domain (the paper assumes `dom(FK_i) = {RID_i values in R_i}`).
    ForeignKeyDomainMismatch {
        entity: String,
        fk: String,
        referenced: String,
    },
    /// A foreign key value has no matching primary key row (dangling
    /// reference; the paper assumes referential integrity and no NULLs).
    DanglingForeignKey {
        entity: String,
        fk: String,
        code: u32,
        /// The FK value's human-readable label (what the analyst typed).
        label: String,
        /// 0-based entity row holding the dangling value.
        row: usize,
    },
    /// A join was requested over an attribute that is not a foreign key.
    NotAForeignKey { table: String, attribute: String },
    /// Binning was requested with zero bins or over an empty value range.
    InvalidBinning { reason: String },
    /// A schema manifest failed to parse or load.
    Manifest { reason: String },
    /// A star decomposition request was malformed or does not hold in the
    /// instance.
    Decomposition { reason: String },
    /// The table has no rows where at least one was required.
    EmptyTable { table: String },
    /// An IO fault while streaming or spilling chunked column data
    /// (ingest reads, spill-file writes, chunk reads from disk).
    Io {
        /// What was being read or written (a path or a description).
        context: String,
        /// The underlying OS error rendered as text (kept as a string so
        /// the error type stays `Clone + PartialEq`).
        message: String,
    },
    /// A spilled chunk file failed structural validation on read-back
    /// (truncated, wrong length, or byte count not a multiple of the
    /// element width) — the spill directory was tampered with or the
    /// disk is corrupting data.
    SpillCorrupt { file: String, reason: String },
    /// An invalid `HAMLET_*` environment value reached the data plane
    /// (e.g. an unparsable `HAMLET_MEM_BUDGET_MB`); strict per the
    /// observability sweep — never a silent default.
    Env { reason: String },
    /// Lenient ingest quarantined more rows than the error budget
    /// allows; the table is too dirty to degrade gracefully.
    DirtyBudgetExceeded {
        table: String,
        /// Rows quarantined before giving up.
        quarantined: usize,
        /// The per-table budget that was exceeded.
        budget: usize,
        /// 0-based data row that broke the budget, with its reason.
        last_row: usize,
        last_reason: String,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ColumnLengthMismatch {
                table,
                column,
                expected,
                actual,
            } => write!(
                f,
                "table '{table}': column '{column}' has {actual} rows, expected {expected}"
            ),
            Self::CodeOutOfDomain {
                table,
                column,
                code,
                domain_size,
            } => write!(
                f,
                "table '{table}': column '{column}' holds code {code} outside domain of size {domain_size}"
            ),
            Self::UnknownAttribute { table, attribute } => {
                write!(f, "table '{table}': unknown attribute '{attribute}'")
            }
            Self::UnknownTable { name } => write!(f, "unknown table '{name}'"),
            Self::DuplicateAttribute { table, attribute } => {
                write!(f, "table '{table}': duplicate attribute '{attribute}'")
            }
            Self::DuplicateRole { table, role } => {
                write!(f, "table '{table}': more than one {role}")
            }
            Self::MissingRole { table, role } => {
                write!(f, "table '{table}': no {role} attribute declared")
            }
            Self::PrimaryKeyNotUnique { table, attribute } => {
                write!(f, "table '{table}': primary key '{attribute}' is not unique")
            }
            Self::ForeignKeyDomainMismatch {
                entity,
                fk,
                referenced,
            } => write!(
                f,
                "entity '{entity}': foreign key '{fk}' domain differs from referenced key '{referenced}'"
            ),
            Self::DanglingForeignKey {
                entity,
                fk,
                code,
                label,
                row,
            } => write!(
                f,
                "entity '{entity}' row {row}: foreign key '{fk}' value '{label}' (code {code}) has no referenced row"
            ),
            Self::NotAForeignKey { table, attribute } => {
                write!(f, "table '{table}': attribute '{attribute}' is not a foreign key")
            }
            Self::Io { context, message } => write!(f, "io error ({context}): {message}"),
            Self::SpillCorrupt { file, reason } => {
                write!(f, "spill file '{file}' is corrupt: {reason}")
            }
            Self::Env { reason } => write!(f, "environment: {reason}"),
            Self::InvalidBinning { reason } => write!(f, "invalid binning: {reason}"),
            Self::Manifest { reason } => write!(f, "manifest: {reason}"),
            Self::Decomposition { reason } => write!(f, "decomposition: {reason}"),
            Self::EmptyTable { table } => write!(f, "table '{table}' is empty"),
            Self::DirtyBudgetExceeded {
                table,
                quarantined,
                budget,
                last_row,
                last_reason,
            } => write!(
                f,
                "table '{table}': quarantined {quarantined} rows, exceeding the error budget of {budget} \
                 (row {last_row}: {last_reason})"
            ),
        }
    }
}

impl std::error::Error for RelationalError {}

/// Convenient result alias for relational operations.
pub type Result<T> = std::result::Result<T, RelationalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_table_and_column() {
        let err = RelationalError::ColumnLengthMismatch {
            table: "S".into(),
            column: "age".into(),
            expected: 10,
            actual: 9,
        };
        let msg = err.to_string();
        assert!(msg.contains("'S'"));
        assert!(msg.contains("'age'"));
        assert!(msg.contains("10"));
    }

    #[test]
    fn display_dangling_fk_is_actionable() {
        let err = RelationalError::DanglingForeignKey {
            entity: "Customers".into(),
            fk: "EmployerID".into(),
            code: 42,
            label: "e42".into(),
            row: 17,
        };
        let msg = err.to_string();
        assert!(msg.contains("EmployerID"));
        assert!(msg.contains("42"));
        // The label and row make the error actionable: the analyst can
        // grep their CSV for 'e42' / jump to the row.
        assert!(msg.contains("'e42'"), "{msg}");
        assert!(msg.contains("row 17"), "{msg}");
    }

    #[test]
    fn display_dirty_budget() {
        let err = RelationalError::DirtyBudgetExceeded {
            table: "Customers".into(),
            quarantined: 6,
            budget: 5,
            last_row: 99,
            last_reason: "expected 3 fields, found 2".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("budget of 5"), "{msg}");
        assert!(msg.contains("row 99"), "{msg}");
    }

    #[test]
    fn errors_are_comparable() {
        let a = RelationalError::UnknownTable { name: "R".into() };
        let b = RelationalError::UnknownTable { name: "R".into() };
        assert_eq!(a, b);
    }
}
