//! CSV import/export for nominal tables.
//!
//! A downstream user's data arrives as delimited text. This module reads
//! a CSV into a [`Table`] (building labelled domains from the observed
//! categories, with optional equal-width binning for numeric columns)
//! and writes tables back out. The dialect is deliberately small: one
//! header row, a configurable delimiter, double-quote quoting with `""`
//! escapes, no embedded newlines.

use std::fmt::Write as _;
use std::io::BufRead;

use crate::error::{RelationalError, Result};
use crate::schema::{AttributeDef, Role};
use crate::table::Table;

/// How one CSV column should be interpreted.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSpec {
    /// Nominal: the domain is the set of distinct strings observed, in
    /// first-appearance order.
    Nominal(AttributeDef),
    /// Numeric: parsed as `f64` and discretized with an equal-width
    /// binner of the given bin count (Sec 2.1 footnote 1).
    Numeric(AttributeDef, usize),
    /// Skip this CSV column entirely.
    Skip,
}

impl ColumnSpec {
    /// A nominal feature column.
    pub fn feature(name: &str) -> Self {
        Self::Nominal(AttributeDef::feature(name))
    }

    /// A numeric feature column binned into `bins` buckets.
    pub fn numeric_feature(name: &str, bins: usize) -> Self {
        Self::Numeric(AttributeDef::feature(name), bins)
    }

    /// A nominal target column.
    pub fn target(name: &str) -> Self {
        Self::Nominal(AttributeDef::target(name))
    }

    /// A primary-key column.
    pub fn primary_key(name: &str) -> Self {
        Self::Nominal(AttributeDef::primary_key(name))
    }

    /// A closed-domain foreign-key column referencing `table`.
    pub fn foreign_key(name: &str, table: &str) -> Self {
        Self::Nominal(AttributeDef::foreign_key(name, table))
    }
}

/// Splits one CSV record, honouring double-quote quoting.
pub(crate) fn split_record(line: &str, delimiter: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    fields.push(field);
    fields
}

/// Parses the header row of a CSV (the first non-blank line), honouring
/// the same quoting rules as the record reader. Returns `None` for an
/// empty input. Schema miners use this to enumerate columns before they
/// know any roles.
pub fn csv_header(text: &str, delimiter: char) -> Option<Vec<String>> {
    text.lines()
        .find(|l| !l.trim().is_empty())
        .map(|l| split_record(l, delimiter))
}

/// [`csv_header`] for a file on disk: reads only up to the first
/// non-blank line through a buffered reader instead of loading the whole
/// file. `Ok(None)` means the file exists but holds no non-blank line.
pub fn csv_header_path(path: &std::path::Path, delimiter: char) -> Result<Option<Vec<String>>> {
    let io_err = |e: std::io::Error| RelationalError::Io {
        context: format!("read header of {}", path.display()),
        message: e.to_string(),
    };
    let file = std::fs::File::open(path).map_err(io_err)?;
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(io_err)?;
        if !line.trim().is_empty() {
            return Ok(Some(split_record(&line, delimiter)));
        }
    }
    Ok(None)
}

/// Quotes one field if it contains the delimiter, a quote, or leading /
/// trailing whitespace.
fn quote_field(field: &str, delimiter: char) -> String {
    let needs_quoting = field.contains(delimiter) || field.contains('"') || field != field.trim();
    if needs_quoting {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// What to do with a data row that fails validation (wrong field count,
/// unparseable numeric, duplicate primary key).
///
/// The paper's setting assumes clean closed-domain data; real exports are
/// dirtier. `Abort` keeps the strict semantics (first bad row is a typed
/// error); `Quarantine` degrades gracefully by setting bad rows aside, up
/// to a per-table budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirtyPolicy {
    /// Fail on the first bad row (strict; the default).
    #[default]
    Abort,
    /// Set bad rows aside and keep loading, up to `max_bad_rows`; one row
    /// past the budget the load fails with
    /// [`RelationalError::DirtyBudgetExceeded`].
    Quarantine { max_bad_rows: usize },
}

impl DirtyPolicy {
    /// Parses a CLI value: `abort`, `quarantine` (unlimited budget), or
    /// `quarantine:N` (budget of `N` bad rows per table).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "abort" => Some(Self::Abort),
            "quarantine" => Some(Self::Quarantine {
                max_bad_rows: usize::MAX,
            }),
            _ => s
                .strip_prefix("quarantine:")?
                .parse()
                .ok()
                .map(|n| Self::Quarantine { max_bad_rows: n }),
        }
    }
}

/// One data row set aside by [`read_csv_lenient`], with enough context to
/// find it in the source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRow {
    /// 0-based data-row index (header excluded, blank lines skipped).
    pub row: usize,
    /// Why the row was rejected.
    pub reason: String,
    /// The raw line as it appeared in the input.
    pub raw: String,
}

/// Result of a lenient CSV load: the table built from clean rows plus the
/// quarantine report. `quarantined.len() + table.n_rows() == total_rows`.
#[derive(Debug, Clone)]
pub struct CsvLoad {
    /// Table built from the rows that passed validation.
    pub table: Table,
    /// Rows set aside, in input order.
    pub quarantined: Vec<QuarantinedRow>,
    /// Data rows seen in the input (clean + quarantined).
    pub total_rows: usize,
}

/// Reads a CSV string into a validated [`Table`].
///
/// `specs` are matched to CSV columns by header name; CSV columns without
/// a spec are an error (be explicit), and spec'd columns missing from the
/// header are an error too.
pub fn read_csv(
    name: &str,
    text: &str,
    specs: &[(&str, ColumnSpec)],
    delimiter: char,
) -> Result<Table> {
    read_csv_lenient(name, text, specs, delimiter, DirtyPolicy::Abort).map(|load| load.table)
}

/// Reads a CSV string, applying `policy` to rows that fail validation.
///
/// Row-level faults — wrong field count (including rows mangled by an
/// unterminated quote), unparseable numeric fields, duplicate primary-key
/// values — are either fatal ([`DirtyPolicy::Abort`], preserving
/// [`read_csv`]'s error types) or quarantined up to the policy's budget.
/// File-level faults (missing header, unknown columns, empty table) are
/// always fatal: there is no sensible degraded interpretation.
///
/// Since the out-of-core PR this is a thin wrapper over the streaming
/// chunked ingester ([`crate::ingest::read_csv_chunked`]) with no memory
/// budget: one code path implements the validation rules, and the
/// in-memory and out-of-core loads agree by construction.
pub fn read_csv_lenient(
    name: &str,
    text: &str,
    specs: &[(&str, ColumnSpec)],
    delimiter: char,
    policy: DirtyPolicy,
) -> Result<CsvLoad> {
    let load = crate::ingest::read_csv_chunked(
        name,
        std::io::Cursor::new(text.as_bytes()),
        specs,
        delimiter,
        policy,
        &crate::ingest::IngestOptions::dense(),
    )?;
    Ok(CsvLoad {
        table: load.table.to_table()?,
        quarantined: load.quarantined,
        total_rows: load.total_rows,
    })
}

/// Writes a table as CSV (header + one record per row), using each
/// domain's labels.
pub fn write_csv(table: &Table, delimiter: char) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .attributes()
        .iter()
        .map(|a| quote_field(&a.name, delimiter))
        .collect();
    let _ = writeln!(out, "{}", header.join(&delimiter.to_string()));
    for row in 0..table.n_rows() {
        let fields: Vec<String> = table
            .columns()
            .iter()
            .map(|c| quote_field(&c.domain().label(c.get(row)), delimiter))
            .collect();
        let _ = writeln!(out, "{}", fields.join(&delimiter.to_string()));
    }
    out
}

/// Convenience: which roles a round-tripped column keeps (labels only
/// survive for [`ColumnSpec::Nominal`]; binned numerics become interval
/// labels).
pub fn roles(table: &Table) -> Vec<(&str, &Role)> {
    table
        .schema()
        .attributes()
        .iter()
        .map(|a| (a.name.as_str(), &a.role))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
CustomerID,Churn,Gender,Age,EmployerID
c1,yes,F,34.5,e1
c2,no,M,51.0,e2
c3,no,F,28.2,e1
c4,yes,M,61.9,e3
";

    fn specs() -> Vec<(&'static str, ColumnSpec)> {
        vec![
            ("CustomerID", ColumnSpec::primary_key("CustomerID")),
            ("Churn", ColumnSpec::target("Churn")),
            ("Gender", ColumnSpec::feature("Gender")),
            ("Age", ColumnSpec::numeric_feature("Age", 4)),
            (
                "EmployerID",
                ColumnSpec::foreign_key("EmployerID", "Employers"),
            ),
        ]
    }

    #[test]
    fn reads_nominal_and_numeric() {
        let t = read_csv("Customers", CSV, &specs(), ',').unwrap();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.schema().len(), 5);
        let churn = t.column_by_name("Churn").unwrap();
        assert_eq!(churn.domain().size(), 2);
        assert_eq!(churn.domain().label(0), "yes");
        assert_eq!(churn.codes(), &[0, 1, 1, 0]);
        let age = t.column_by_name("Age").unwrap();
        assert_eq!(age.domain().size(), 4);
        assert_eq!(age.get(0), 0); // 34.5 lands in the first bin of [28.2, 61.9]
        assert!(t.schema().get("EmployerID").unwrap().role.is_foreign_key());
        assert_eq!(t.schema().target(), Some(1));
    }

    #[test]
    fn skip_columns() {
        let mut s = specs();
        s[2] = ("Gender", ColumnSpec::Skip);
        let t = read_csv("Customers", CSV, &s, ',').unwrap();
        assert!(t.schema().index_of("Gender").is_none());
        assert_eq!(t.schema().len(), 4);
    }

    #[test]
    fn missing_spec_is_error() {
        let mut s = specs();
        s.remove(2);
        assert!(matches!(
            read_csv("Customers", CSV, &s, ','),
            Err(RelationalError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn spec_for_absent_column_is_error() {
        let mut s = specs();
        s.push(("Ghost", ColumnSpec::feature("Ghost")));
        assert!(read_csv("Customers", CSV, &s, ',').is_err());
    }

    #[test]
    fn ragged_record_is_error() {
        let bad = "a,b\n1,2\n3\n";
        let s = vec![
            ("a", ColumnSpec::feature("a")),
            ("b", ColumnSpec::feature("b")),
        ];
        assert!(matches!(
            read_csv("T", bad, &s, ','),
            Err(RelationalError::ColumnLengthMismatch { .. })
        ));
    }

    #[test]
    fn quoting_roundtrip() {
        let csv = "name,note\nalice,\"hello, world\"\nbob,\"say \"\"hi\"\"\"\n";
        let s = vec![
            ("name", ColumnSpec::feature("name")),
            ("note", ColumnSpec::feature("note")),
        ];
        let t = read_csv("T", csv, &s, ',').unwrap();
        let note = t.column_by_name("note").unwrap();
        assert_eq!(note.domain().label(0), "hello, world");
        assert_eq!(note.domain().label(1), "say \"hi\"");
        // Write back and re-read: identical labels.
        let text = write_csv(&t, ',');
        let t2 = read_csv("T", &text, &s, ',').unwrap();
        assert_eq!(
            t2.column_by_name("note").unwrap().domain().label(1),
            "say \"hi\""
        );
    }

    #[test]
    fn write_then_read_preserves_codes_for_nominal() {
        let t = read_csv("Customers", CSV, &specs(), ',').unwrap();
        let nominal_only = t.project(&["Churn", "Gender", "EmployerID"]).unwrap();
        let text = write_csv(&nominal_only, ',');
        let s = vec![
            ("Churn", ColumnSpec::target("Churn")),
            ("Gender", ColumnSpec::feature("Gender")),
            (
                "EmployerID",
                ColumnSpec::foreign_key("EmployerID", "Employers"),
            ),
        ];
        let t2 = read_csv("Customers", &text, &s, ',').unwrap();
        assert_eq!(
            t2.column_by_name("Churn").unwrap().codes(),
            nominal_only.column_by_name("Churn").unwrap().codes()
        );
    }

    #[test]
    fn alternate_delimiter() {
        let csv = "a|b\nx|y\n";
        let s = vec![
            ("a", ColumnSpec::feature("a")),
            ("b", ColumnSpec::feature("b")),
        ];
        let t = read_csv("T", csv, &s, '|').unwrap();
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn empty_csv_is_error() {
        assert!(matches!(
            read_csv("T", "", &[], ','),
            Err(RelationalError::EmptyTable { .. })
        ));
    }

    #[test]
    fn non_numeric_data_in_numeric_column() {
        let csv = "x\nabc\n";
        let s = vec![("x", ColumnSpec::numeric_feature("x", 2))];
        assert!(matches!(
            read_csv("T", csv, &s, ','),
            Err(RelationalError::InvalidBinning { .. })
        ));
    }

    const DIRTY: &str = "\
CustomerID,Churn,Gender,Age,EmployerID
c1,yes,F,34.5,e1
c2,no,M,fifty-one,e2
c3,no,F
c1,yes,M,61.9,e3
c4,no,M,44.0,e2
";

    #[test]
    fn quarantine_sets_bad_rows_aside() {
        let load = read_csv_lenient(
            "Customers",
            DIRTY,
            &specs(),
            ',',
            DirtyPolicy::Quarantine { max_bad_rows: 5 },
        )
        .unwrap();
        assert_eq!(load.total_rows, 5);
        assert_eq!(load.table.n_rows(), 2);
        assert_eq!(load.quarantined.len(), 3);
        assert_eq!(
            load.table.n_rows() + load.quarantined.len(),
            load.total_rows
        );
        // Row 1: bad numeric. Row 2: ragged. Row 3: duplicate PK.
        assert_eq!(load.quarantined[0].row, 1);
        assert!(load.quarantined[0].reason.contains("fifty-one"));
        assert_eq!(load.quarantined[1].row, 2);
        assert!(load.quarantined[1].reason.contains("expected 5 fields"));
        assert_eq!(load.quarantined[2].row, 3);
        assert!(load.quarantined[2].reason.contains("duplicate primary key"));
        assert_eq!(load.quarantined[2].raw, "c1,yes,M,61.9,e3");
        // The surviving table is the clean subset.
        let pk = load.table.column_by_name("CustomerID").unwrap();
        assert_eq!(pk.domain().label(0), "c1");
        assert_eq!(pk.domain().label(1), "c4");
    }

    #[test]
    fn quarantine_budget_exceeded_is_typed() {
        let err = read_csv_lenient(
            "Customers",
            DIRTY,
            &specs(),
            ',',
            DirtyPolicy::Quarantine { max_bad_rows: 2 },
        )
        .unwrap_err();
        match err {
            RelationalError::DirtyBudgetExceeded {
                quarantined,
                budget,
                last_row,
                ..
            } => {
                assert_eq!(quarantined, 3);
                assert_eq!(budget, 2);
                assert_eq!(last_row, 3);
            }
            other => panic!("expected DirtyBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn abort_policy_matches_strict_reader() {
        // First fault in DIRTY is the unparseable numeric on row 1.
        assert!(matches!(
            read_csv("Customers", DIRTY, &specs(), ','),
            Err(RelationalError::InvalidBinning { .. })
        ));
        let dup = "a,b\nx,1\nx,2\n";
        let s = vec![
            ("a", ColumnSpec::primary_key("a")),
            ("b", ColumnSpec::feature("b")),
        ];
        assert!(matches!(
            read_csv("T", dup, &s, ','),
            Err(RelationalError::PrimaryKeyNotUnique { .. })
        ));
    }

    #[test]
    fn unterminated_quote_quarantines_as_ragged() {
        let csv = "a,b\n\"oops,1\nx,2\n";
        let s = vec![
            ("a", ColumnSpec::feature("a")),
            ("b", ColumnSpec::feature("b")),
        ];
        let load = read_csv_lenient(
            "T",
            csv,
            &s,
            ',',
            DirtyPolicy::Quarantine { max_bad_rows: 9 },
        )
        .unwrap();
        assert_eq!(load.table.n_rows(), 1);
        assert_eq!(load.quarantined.len(), 1);
        assert_eq!(load.quarantined[0].raw, "\"oops,1");
    }

    #[test]
    fn dirty_policy_parse() {
        assert_eq!(DirtyPolicy::parse("abort"), Some(DirtyPolicy::Abort));
        assert!(matches!(
            DirtyPolicy::parse("quarantine"),
            Some(DirtyPolicy::Quarantine { .. })
        ));
        assert_eq!(
            DirtyPolicy::parse("quarantine:12"),
            Some(DirtyPolicy::Quarantine { max_bad_rows: 12 })
        );
        assert_eq!(DirtyPolicy::parse("lenient"), None);
        assert_eq!(DirtyPolicy::parse("quarantine:x"), None);
    }

    #[test]
    fn header_helper_honours_quoting() {
        assert_eq!(
            csv_header("a,\"b,c\",d\n1,2,3\n", ','),
            Some(vec!["a".to_string(), "b,c".to_string(), "d".to_string()])
        );
        assert_eq!(
            csv_header("\n\nx|y\n", '|'),
            Some(vec!["x".into(), "y".into()])
        );
        assert_eq!(csv_header("", ','), None);
        assert_eq!(csv_header("  \n\t\n", ','), None);
    }

    #[test]
    fn roles_helper() {
        let t = read_csv("Customers", CSV, &specs(), ',').unwrap();
        let rs = roles(&t);
        assert_eq!(rs.len(), 5);
        assert_eq!(rs[1].0, "Churn");
        assert_eq!(*rs[1].1, Role::Target);
    }
}
