//! Relational operators beyond the KFK join: selection, sorting, and
//! group-by aggregation.
//!
//! These power the data-preparation steps around the paper's pipeline —
//! e.g. restricting a ratings table to active users, or computing the
//! per-FK row counts that a skew analysis consumes.

use std::cmp::Ordering;

use crate::error::Result;
use crate::table::Table;

/// A predicate over one attribute's code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `attribute == code`.
    Eq(String, u32),
    /// `attribute != code`.
    Ne(String, u32),
    /// `attribute ∈ codes`.
    In(String, Vec<u32>),
    /// `attribute < code` (codes are ordinal for binned numerics).
    Lt(String, u32),
    /// `attribute >= code`.
    Ge(String, u32),
}

impl Predicate {
    /// The attribute this predicate tests.
    pub fn attribute(&self) -> &str {
        match self {
            Predicate::Eq(a, _)
            | Predicate::Ne(a, _)
            | Predicate::In(a, _)
            | Predicate::Lt(a, _)
            | Predicate::Ge(a, _) => a,
        }
    }

    fn test(&self, code: u32) -> bool {
        match self {
            Predicate::Eq(_, c) => code == *c,
            Predicate::Ne(_, c) => code != *c,
            Predicate::In(_, cs) => cs.contains(&code),
            Predicate::Lt(_, c) => code < *c,
            Predicate::Ge(_, c) => code >= *c,
        }
    }
}

/// Returns the row positions satisfying **all** predicates (conjunction).
pub fn select_rows(table: &Table, predicates: &[Predicate]) -> Result<Vec<usize>> {
    let cols: Vec<_> = predicates
        .iter()
        .map(|p| table.column_by_name(p.attribute()))
        .collect::<Result<_>>()?;
    Ok((0..table.n_rows())
        .filter(|&row| {
            predicates
                .iter()
                .zip(&cols)
                .all(|(p, c)| p.test(c.get(row)))
        })
        .collect())
}

/// Filters a table by a conjunction of predicates.
pub fn filter(table: &Table, predicates: &[Predicate]) -> Result<Table> {
    let rows = select_rows(table, predicates)?;
    Ok(table.select_rows(&rows))
}

/// Sorts a table by the given attributes (ascending code order,
/// lexicographic across attributes). Stable.
pub fn sort_by(table: &Table, attributes: &[&str]) -> Result<Table> {
    let cols: Vec<_> = attributes
        .iter()
        .map(|a| table.column_by_name(a))
        .collect::<Result<_>>()?;
    let mut order: Vec<usize> = (0..table.n_rows()).collect();
    order.sort_by(|&a, &b| {
        for c in &cols {
            match c.get(a).cmp(&c.get(b)) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    });
    Ok(table.select_rows(&order))
}

/// One group of a group-by: the key codes and per-aggregate values.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Key attribute codes, in the order the keys were given.
    pub key: Vec<u32>,
    /// Row count of the group.
    pub count: u64,
}

/// Groups rows by the given key attributes and counts each group.
/// Groups are returned in first-appearance order.
pub fn group_count(table: &Table, keys: &[&str]) -> Result<Vec<Group>> {
    let cols: Vec<_> = keys
        .iter()
        .map(|a| table.column_by_name(a))
        .collect::<Result<_>>()?;
    let mut index: std::collections::HashMap<Vec<u32>, usize> = Default::default();
    let mut groups: Vec<Group> = Vec::new();
    for row in 0..table.n_rows() {
        let key: Vec<u32> = cols.iter().map(|c| c.get(row)).collect();
        match index.get(&key) {
            Some(&g) => groups[g].count += 1,
            None => {
                index.insert(key.clone(), groups.len());
                groups.push(Group { key, count: 1 });
            }
        }
    }
    Ok(groups)
}

/// Rows-per-key histogram for a single attribute: `out[code] = count`.
/// The fan-out profile of a foreign key — the quantity FK-skew analyses
/// start from.
pub fn fanout(table: &Table, attribute: &str) -> Result<Vec<u64>> {
    Ok(table.column_by_name(attribute)?.histogram())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::table::TableBuilder;

    fn sample() -> Table {
        TableBuilder::new("T")
            .feature(
                "a",
                Domain::indexed("a", 4).shared(),
                vec![3, 1, 2, 1, 0, 2],
            )
            .feature(
                "b",
                Domain::indexed("b", 2).shared(),
                vec![0, 1, 0, 1, 1, 1],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn predicates_test_codes() {
        let t = sample();
        assert_eq!(
            select_rows(&t, &[Predicate::Eq("a".into(), 1)]).unwrap(),
            vec![1, 3]
        );
        assert_eq!(
            select_rows(&t, &[Predicate::Ne("b".into(), 1)]).unwrap(),
            vec![0, 2]
        );
        assert_eq!(
            select_rows(&t, &[Predicate::In("a".into(), vec![0, 3])]).unwrap(),
            vec![0, 4]
        );
        assert_eq!(
            select_rows(&t, &[Predicate::Lt("a".into(), 2)]).unwrap(),
            vec![1, 3, 4]
        );
        assert_eq!(
            select_rows(&t, &[Predicate::Ge("a".into(), 2)]).unwrap(),
            vec![0, 2, 5]
        );
    }

    #[test]
    fn conjunction() {
        let t = sample();
        let rows = select_rows(
            &t,
            &[Predicate::Ge("a".into(), 1), Predicate::Eq("b".into(), 1)],
        )
        .unwrap();
        assert_eq!(rows, vec![1, 3, 5]);
    }

    #[test]
    fn filter_builds_subtable() {
        let t = sample();
        let f = filter(&t, &[Predicate::Eq("b".into(), 0)]).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert_eq!(f.column_by_name("a").unwrap().codes(), &[3, 2]);
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = sample();
        assert!(select_rows(&t, &[Predicate::Eq("zzz".into(), 0)]).is_err());
        assert!(sort_by(&t, &["zzz"]).is_err());
        assert!(group_count(&t, &["zzz"]).is_err());
    }

    #[test]
    fn sort_orders_lexicographically() {
        let t = sample();
        let s = sort_by(&t, &["b", "a"]).unwrap();
        assert_eq!(s.column_by_name("b").unwrap().codes(), &[0, 0, 1, 1, 1, 1]);
        assert_eq!(s.column_by_name("a").unwrap().codes(), &[2, 3, 0, 1, 1, 2]);
    }

    #[test]
    fn sort_is_stable() {
        let t = sample();
        let s = sort_by(&t, &["b"]).unwrap();
        // Within b=1 the original order 1,3,4,5 is preserved -> a codes 1,1,0,2.
        assert_eq!(s.column_by_name("a").unwrap().codes(), &[3, 2, 1, 1, 0, 2]);
    }

    #[test]
    fn group_count_first_appearance_order() {
        let t = sample();
        let groups = group_count(&t, &["b"]).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].key, vec![0]);
        assert_eq!(groups[0].count, 2);
        assert_eq!(groups[1].count, 4);
        let pairs = group_count(&t, &["a", "b"]).unwrap();
        assert_eq!(pairs.len(), 5); // (3,0),(1,1),(2,0),(0,1),(2,1)
        let total: u64 = pairs.iter().map(|g| g.count).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn fanout_is_histogram() {
        let t = sample();
        assert_eq!(fanout(&t, "a").unwrap(), vec![1, 2, 2, 1]);
    }

    #[test]
    fn empty_filter_result() {
        let t = sample();
        let f = filter(
            &t,
            &[Predicate::Eq("a".into(), 1), Predicate::Eq("a".into(), 2)],
        )
        .unwrap();
        assert_eq!(f.n_rows(), 0);
    }
}
