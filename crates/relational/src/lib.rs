//! # hamlet-relational
//!
//! In-memory columnar relational substrate for normalized feature data,
//! built for the reproduction of *"To Join or Not to Join? Thinking Twice
//! about Joins before Feature Selection"* (Kumar et al., SIGMOD 2016).
//!
//! The paper's setting is a star schema: an **entity table**
//! `S(SID, Y, X_S, FK_1..FK_k)` whose foreign keys reference **attribute
//! tables** `R_i(RID_i, X_Ri)`. All attributes are nominal with known
//! finite domains (numeric data is discretized by equal-width binning).
//! This crate provides:
//!
//! * [`Domain`] / [`Column`] — finite categorical domains and dense code
//!   columns;
//! * [`Schema`] / [`Table`] — validated logical schemas with attribute
//!   roles (primary key, foreign key with a closed/open domain flag,
//!   feature, target);
//! * [`kfk_join`] — the KFK equi-join `T <- R ⋈_{RID=FK} S` that creates
//!   the FD `FK -> X_R` the paper analyzes;
//! * [`StarSchema`] — a validated catalog exposing the metadata the
//!   decision rules need (`n_S`, `n_Ri`, feature domain sizes, closed FK
//!   flags) and materialization of any join subset;
//! * [`FunctionalDependency`] — instance-level FD checks and FD-set
//!   acyclicity (appendix C);
//! * [`EqualWidthBinner`] — the paper's unsupervised binning.
//!
//! ```
//! use hamlet_relational::{Domain, TableBuilder, StarSchema, AttributeTable, kfk_join};
//!
//! // Employers(EmployerID, Country); Customers(CustomerID, Churn, EmployerID)
//! let rid = Domain::indexed("EmployerID", 2).shared();
//! let employers = TableBuilder::new("Employers")
//!     .primary_key("EmployerID", rid.clone(), vec![0, 1])
//!     .feature("Country", Domain::from_labels("Country", &["NZ", "IN"]).shared(), vec![0, 1])
//!     .build().unwrap();
//! let customers = TableBuilder::new("Customers")
//!     .target("Churn", Domain::boolean("Churn").shared(), vec![0, 1, 1])
//!     .foreign_key("EmployerID", "Employers", rid, vec![0, 1, 0])
//!     .build().unwrap();
//! let t = kfk_join(&customers, "EmployerID", &employers).unwrap();
//! assert_eq!(t.column_by_name("Country").unwrap().codes(), &[0, 1, 0]);
//! ```

pub mod availability;
pub mod binning;
pub mod catalog;
pub mod chunk;
pub mod coldstart;
pub mod column;
pub mod csv;
pub mod decompose;
pub mod domain;
pub mod error;
pub mod fd;
pub mod ingest;
pub mod join;
pub mod lint;
pub mod manifest;
pub mod profile;
pub mod query;
pub mod schema;
pub mod table;

pub use availability::{TablePolicy, TableSubstitution, TABLE_OPEN_FAILPOINT};
pub use binning::{EqualFrequencyBinner, EqualWidthBinner};
pub use catalog::{AttributeTable, SplitIndices, StarSchema};
pub use chunk::{
    default_chunk_rows, gather_chunks, Chunk, ChunkedColumn, ChunkedTable, ColumnChunks,
    DenseChunks, SpillDir,
};
pub use coldstart::{with_others_record, DomainRevision};
pub use column::Column;
pub use csv::{
    csv_header, csv_header_path, read_csv, read_csv_lenient, write_csv, ColumnSpec, CsvLoad,
    DirtyPolicy, QuarantinedRow,
};
pub use decompose::{decompose_star, infer_single_fds, select_compatible_fds};
pub use domain::Domain;
pub use error::{RelationalError, Result};
pub use fd::{is_acyclic, redundant_attributes, FunctionalDependency};
pub use ingest::{
    read_csv_chunked, read_csv_file_chunked, read_csv_file_lenient, ChunkedCsvLoad, IngestOptions,
};
pub use join::{kfk_join, kfk_join_all, kfk_join_policy, FkPolicy, JoinOutcome};
pub use lint::{lint_star, Lint, LintConfig};
pub use manifest::{LoadPolicy, Manifest, StarLoad, TableQuarantine};
pub use profile::{profile_star, profile_table, ColumnProfile, StarProfile, TableProfile};
pub use query::{fanout, filter, group_count, select_rows, sort_by, Group, Predicate};
pub use schema::{AttributeDef, Role, Schema};
pub use table::{Table, TableBuilder};
