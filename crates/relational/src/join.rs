//! Key–foreign-key equi-joins.
//!
//! Implements `T <- pi(R ⋈_{RID=FK} S)` from Sec 2.1: every row of the
//! entity table `S` is extended with the feature columns of the attribute
//! table `R` row its foreign key references. Because `RID` is `R`'s primary
//! key, the join is N:1 and preserves `S`'s row count; the functional
//! dependency `FK -> X_R` holds in the output by construction.

use crate::error::{RelationalError, Result};
use crate::schema::{Role, Schema};
use crate::table::Table;

/// Builds the RID -> row-position index over an attribute table.
///
/// The index is dense over the primary-key domain, exploiting the closed
/// domain assumption: `dom(FK) = {RID values in R}`.
fn key_index(attr: &Table) -> Result<Vec<Option<u32>>> {
    let pk_idx = attr
        .schema()
        .primary_key()
        .ok_or_else(|| RelationalError::UnknownAttribute {
            table: attr.name().to_string(),
            attribute: "<primary key>".to_string(),
        })?;
    let pk = attr.column(pk_idx);
    let mut index = vec![None; pk.domain().size()];
    for (row, &code) in pk.codes().iter().enumerate() {
        index[code as usize] = Some(row as u32);
    }
    Ok(index)
}

/// Joins the entity table with one attribute table through the named
/// foreign key, appending the attribute table's feature columns.
///
/// * The FK column stays in the output (the paper keeps FKs as features).
/// * The attribute table's primary key is *not* duplicated into the output
///   (it would equal the FK column).
/// * Returns an error if a foreign-key value references a missing row
///   (referential-integrity violation) or the FK/RID domains differ in size.
pub fn kfk_join(entity: &Table, fk_name: &str, attr: &Table) -> Result<Table> {
    let _span = hamlet_obs::span!(
        "relational.kfk_join",
        attr = attr.name(),
        rows = entity.n_rows()
    );
    let fk_pos =
        entity
            .schema()
            .index_of(fk_name)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                table: entity.name().to_string(),
                attribute: fk_name.to_string(),
            })?;
    if !entity.schema().attributes()[fk_pos].role.is_foreign_key() {
        return Err(RelationalError::NotAForeignKey {
            table: entity.name().to_string(),
            attribute: fk_name.to_string(),
        });
    }
    let fk_col = entity.column(fk_pos);

    let pk_idx = attr
        .schema()
        .primary_key()
        .ok_or_else(|| RelationalError::UnknownAttribute {
            table: attr.name().to_string(),
            attribute: "<primary key>".to_string(),
        })?;
    if fk_col.domain().size() != attr.column(pk_idx).domain().size() {
        return Err(RelationalError::ForeignKeyDomainMismatch {
            entity: entity.name().to_string(),
            fk: fk_name.to_string(),
            referenced: attr.schema().attributes()[pk_idx].name.clone(),
        });
    }

    let index = key_index(attr)?;

    // Map each entity row's FK code to a row position in the attribute table.
    let mut gather = Vec::with_capacity(entity.n_rows());
    for &code in fk_col.codes() {
        match index[code as usize] {
            Some(row) => gather.push(row),
            None => {
                return Err(RelationalError::DanglingForeignKey {
                    entity: entity.name().to_string(),
                    fk: fk_name.to_string(),
                    code,
                })
            }
        }
    }

    let mut defs: Vec<_> = entity.schema().attributes().to_vec();
    let mut cols: Vec<_> = entity.columns().to_vec();
    for (def, col) in attr.schema().attributes().iter().zip(attr.columns()) {
        if def.role != Role::Feature {
            continue; // skip RID (and any nested keys)
        }
        defs.push(def.clone());
        cols.push(col.gather(&gather));
    }

    hamlet_obs::counter_add!("hamlet_rows_joined_total", entity.n_rows());
    hamlet_obs::histogram_observe!("hamlet_join_rows", entity.n_rows());
    let name = format!("{}_join_{}", entity.name(), attr.name());
    let schema = Schema::new(&name, defs)?;
    Table::new(name, schema, cols)
}

/// Joins the entity table with each of the given `(fk_name, table)` pairs
/// in order, producing the fully denormalized table
/// `T(SID, Y, X_S, FK_1..FK_k, X_R1..X_Rk)`.
pub fn kfk_join_all<'a, I>(entity: &Table, attrs: I) -> Result<Table>
where
    I: IntoIterator<Item = (&'a str, &'a Table)>,
{
    let mut out = entity.clone();
    for (fk, attr) in attrs {
        out = kfk_join(&out, fk, attr)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::table::TableBuilder;

    fn employers() -> Table {
        let rid = Domain::indexed("EmployerID", 3).shared();
        let country = Domain::from_labels("Country", &["NZ", "IN"]).shared();
        let revenue = Domain::indexed("Revenue", 4).shared();
        TableBuilder::new("Employers")
            .primary_key("EmployerID", rid, vec![2, 0, 1])
            .feature("Country", country, vec![1, 0, 1])
            .feature("Revenue", revenue, vec![3, 1, 0])
            .build()
            .unwrap()
    }

    fn customers(fk_codes: Vec<u32>) -> Table {
        let n = fk_codes.len();
        let sid = Domain::indexed("CustomerID", n).shared();
        let churn = Domain::boolean("Churn").shared();
        let age = Domain::indexed("Age", 5).shared();
        TableBuilder::new("Customers")
            .primary_key("CustomerID", sid, (0..n as u32).collect())
            .target("Churn", churn, vec![0; n])
            .feature("Age", age, vec![1; n])
            .foreign_key(
                "EmployerID",
                "Employers",
                Domain::indexed("EmployerID", 3).shared(),
                fk_codes,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn join_gathers_foreign_features() {
        let s = customers(vec![0, 1, 2, 0]);
        let r = employers();
        let t = kfk_join(&s, "EmployerID", &r).unwrap();
        assert_eq!(t.n_rows(), 4);
        // Employers stores RIDs out of order: RID 0 -> row 1, 1 -> row 2, 2 -> row 0.
        let country = t.column_by_name("Country").unwrap();
        assert_eq!(country.codes(), &[0, 1, 1, 0]);
        let revenue = t.column_by_name("Revenue").unwrap();
        assert_eq!(revenue.codes(), &[1, 0, 3, 1]);
        // FK survives; RID is not duplicated.
        assert!(t.schema().index_of("EmployerID").is_some());
        assert_eq!(
            t.schema()
                .attributes()
                .iter()
                .filter(|a| a.name == "EmployerID")
                .count(),
            1
        );
    }

    #[test]
    fn fd_fk_to_xr_holds_in_output() {
        let s = customers(vec![0, 1, 2, 0, 1, 2, 1]);
        let t = kfk_join(&s, "EmployerID", &employers()).unwrap();
        let fk = t.column_by_name("EmployerID").unwrap();
        let country = t.column_by_name("Country").unwrap();
        let mut seen: std::collections::HashMap<u32, u32> = Default::default();
        for i in 0..t.n_rows() {
            let e = seen.entry(fk.get(i)).or_insert_with(|| country.get(i));
            assert_eq!(*e, country.get(i), "FD FK -> Country violated");
        }
    }

    #[test]
    fn dangling_fk_detected() {
        // Attribute table missing RID=1.
        let rid = Domain::indexed("EmployerID", 3).shared();
        let r = TableBuilder::new("Employers")
            .primary_key("EmployerID", rid, vec![0, 2])
            .feature("Country", Domain::boolean("Country").shared(), vec![0, 1])
            .build()
            .unwrap();
        let s = customers(vec![0, 1]);
        let err = kfk_join(&s, "EmployerID", &r).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::DanglingForeignKey { code: 1, .. }
        ));
    }

    #[test]
    fn non_fk_attribute_rejected() {
        let s = customers(vec![0]);
        let err = kfk_join(&s, "Age", &employers()).unwrap_err();
        assert!(matches!(err, RelationalError::NotAForeignKey { .. }));
    }

    #[test]
    fn domain_size_mismatch_rejected() {
        let rid = Domain::indexed("EmployerID", 5).shared();
        let r = TableBuilder::new("Employers")
            .primary_key("EmployerID", rid, vec![0, 1, 2, 3, 4])
            .feature(
                "Country",
                Domain::boolean("Country").shared(),
                vec![0, 1, 0, 1, 0],
            )
            .build()
            .unwrap();
        let s = customers(vec![0]);
        let err = kfk_join(&s, "EmployerID", &r).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::ForeignKeyDomainMismatch { .. }
        ));
    }

    #[test]
    fn join_all_chains_tables() {
        let s = customers(vec![0, 1, 2]);
        let r = employers();
        let t = kfk_join_all(&s, [("EmployerID", &r)]).unwrap();
        assert_eq!(t.schema().len(), s.schema().len() + 2);
    }

    #[test]
    fn join_preserves_row_count_always() {
        for n in [1usize, 2, 7, 31] {
            let fk: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
            let s = customers(fk);
            let t = kfk_join(&s, "EmployerID", &employers()).unwrap();
            assert_eq!(t.n_rows(), n);
        }
    }
}
