//! Key–foreign-key equi-joins.
//!
//! Implements `T <- pi(R ⋈_{RID=FK} S)` from Sec 2.1: every row of the
//! entity table `S` is extended with the feature columns of the attribute
//! table `R` row its foreign key references. Because `RID` is `R`'s primary
//! key, the join is N:1 and preserves `S`'s row count; the functional
//! dependency `FK -> X_R` holds in the output by construction.
//!
//! The paper assumes referential integrity; real data violates it. A
//! [`FkPolicy`] decides what a dangling FK value does: abort with a
//! typed error (the default, and the paper's idealized setting), drop
//! the offending entity rows, or map them onto the paper's `Others`
//! placeholder record (Sec 2.1's revision mechanism, reusing
//! [`crate::coldstart::with_others_record`]). Every degradation is
//! counted in `hamlet-obs` metrics and so lands in the run journal.

use crate::coldstart::with_others_record;
use crate::error::{RelationalError, Result};
use crate::schema::{AttributeDef, Role, Schema};
use crate::table::Table;

/// Builds the RID -> row-position index over an attribute table.
///
/// The index is dense over the primary-key domain, exploiting the closed
/// domain assumption: `dom(FK) = {RID values in R}`.
fn key_index(attr: &Table) -> Result<Vec<Option<u32>>> {
    let pk_idx = attr
        .schema()
        .primary_key()
        .ok_or_else(|| RelationalError::UnknownAttribute {
            table: attr.name().to_string(),
            attribute: "<primary key>".to_string(),
        })?;
    let pk = attr.column(pk_idx);
    let mut index = vec![None; pk.domain().size()];
    for (row, &code) in pk.codes().iter().enumerate() {
        index[code as usize] = Some(row as u32);
    }
    Ok(index)
}

/// What to do when a foreign-key value references no attribute-table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FkPolicy {
    /// Typed error naming the label and entity row (the paper's
    /// idealized referential-integrity assumption).
    #[default]
    Abort,
    /// Drop the offending entity rows (losing labeled examples).
    DropRow,
    /// Map the offending rows to the paper's `Others` placeholder
    /// record, widening the attribute table by one row (Sec 2.1).
    MapToOthers,
}

impl FkPolicy {
    /// Parses a CLI-facing policy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "abort" => Some(Self::Abort),
            "drop" => Some(Self::DropRow),
            "others" => Some(Self::MapToOthers),
            _ => None,
        }
    }

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Abort => "abort",
            Self::DropRow => "drop",
            Self::MapToOthers => "others",
        }
    }
}

/// A join that may have degraded: the output table plus which entity
/// rows (0-based, pre-join indices) were sacrificed or remapped.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The joined table.
    pub table: Table,
    /// Entity rows dropped under [`FkPolicy::DropRow`].
    pub dropped_rows: Vec<usize>,
    /// Entity rows remapped to `Others` under [`FkPolicy::MapToOthers`].
    pub others_rows: Vec<usize>,
}

/// Joins the entity table with one attribute table through the named
/// foreign key, appending the attribute table's feature columns.
///
/// * The FK column stays in the output (the paper keeps FKs as features).
/// * The attribute table's primary key is *not* duplicated into the output
///   (it would equal the FK column).
/// * Returns an error if a foreign-key value references a missing row
///   (referential-integrity violation) or the FK/RID domains differ in size.
pub fn kfk_join(entity: &Table, fk_name: &str, attr: &Table) -> Result<Table> {
    kfk_join_policy(entity, fk_name, attr, FkPolicy::Abort).map(|o| o.table)
}

/// [`kfk_join`] with an explicit dangling-FK policy; see [`FkPolicy`].
pub fn kfk_join_policy(
    entity: &Table,
    fk_name: &str,
    attr: &Table,
    policy: FkPolicy,
) -> Result<JoinOutcome> {
    let _span = hamlet_obs::span!(
        "relational.kfk_join",
        attr = attr.name(),
        rows = entity.n_rows()
    );
    let fk_pos =
        entity
            .schema()
            .index_of(fk_name)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                table: entity.name().to_string(),
                attribute: fk_name.to_string(),
            })?;
    if !entity.schema().attributes()[fk_pos].role.is_foreign_key() {
        return Err(RelationalError::NotAForeignKey {
            table: entity.name().to_string(),
            attribute: fk_name.to_string(),
        });
    }
    let fk_col = entity.column(fk_pos);

    let pk_idx = attr
        .schema()
        .primary_key()
        .ok_or_else(|| RelationalError::UnknownAttribute {
            table: attr.name().to_string(),
            attribute: "<primary key>".to_string(),
        })?;
    if fk_col.domain().size() != attr.column(pk_idx).domain().size() {
        return Err(RelationalError::ForeignKeyDomainMismatch {
            entity: entity.name().to_string(),
            fk: fk_name.to_string(),
            referenced: attr.schema().attributes()[pk_idx].name.clone(),
        });
    }

    let index = key_index(attr)?;

    // Entity rows whose FK code references no attribute row.
    let dangling: Vec<usize> = fk_col
        .codes()
        .iter()
        .enumerate()
        .filter(|&(_, &code)| index[code as usize].is_none())
        .map(|(row, _)| row)
        .collect();

    match (&dangling[..], policy) {
        ([], _) => {
            let gather: Vec<u32> = fk_col
                .codes()
                .iter()
                .map(|&code| index[code as usize].expect("no dangling codes in this branch"))
                .collect();
            let table = assemble(entity, attr, None, &gather, entity.n_rows())?;
            Ok(JoinOutcome {
                table,
                dropped_rows: Vec::new(),
                others_rows: Vec::new(),
            })
        }
        ([first, ..], FkPolicy::Abort) => {
            let code = fk_col.get(*first);
            Err(RelationalError::DanglingForeignKey {
                entity: entity.name().to_string(),
                fk: fk_name.to_string(),
                code,
                label: fk_col.domain().label(code).into_owned(),
                row: *first,
            })
        }
        (_, FkPolicy::DropRow) => {
            let keep: Vec<usize> = (0..entity.n_rows())
                .filter(|&r| index[fk_col.get(r) as usize].is_some())
                .collect();
            if keep.is_empty() {
                return Err(RelationalError::EmptyTable {
                    table: entity.name().to_string(),
                });
            }
            let gather: Vec<u32> = keep
                .iter()
                .map(|&r| index[fk_col.get(r) as usize].expect("kept rows resolve"))
                .collect();
            hamlet_obs::counter_add!("hamlet_fk_rows_dropped_total", dangling.len());
            let survivors = entity.select_rows(&keep);
            let table = assemble(&survivors, attr, None, &gather, keep.len())?;
            Ok(JoinOutcome {
                table,
                dropped_rows: dangling,
                others_rows: Vec::new(),
            })
        }
        (_, FkPolicy::MapToOthers) => {
            // Widen the attribute table with the paper's `Others`
            // placeholder (default feature code 0 per column) and send
            // every dangling entity row to it.
            let defaults = vec![0u32; attr.schema().features().len()];
            let (widened, others_code) = with_others_record(attr, &defaults)?;
            let others_row = (widened.n_rows() - 1) as u32;
            let widened_index = key_index(&widened)?;
            let gather: Vec<u32> = fk_col
                .codes()
                .iter()
                .map(|&code| widened_index[code as usize].unwrap_or(others_row))
                .collect();
            // The FK column itself is recoded onto the widened key
            // domain so the FD `FK -> X_R` still holds at `Others`.
            let widened_key = widened.column(
                widened
                    .schema()
                    .primary_key()
                    .expect("widened keeps its key"),
            );
            let recoded: Vec<u32> = fk_col
                .codes()
                .iter()
                .map(|&code| {
                    if index[code as usize].is_some() {
                        code
                    } else {
                        others_code
                    }
                })
                .collect();
            let fk_replacement =
                crate::column::Column::new_unchecked(widened_key.domain().clone(), recoded);
            hamlet_obs::counter_add!("hamlet_fk_rows_to_others_total", dangling.len());
            let table = assemble(
                entity,
                &widened,
                Some((fk_pos, fk_replacement)),
                &gather,
                entity.n_rows(),
            )?;
            Ok(JoinOutcome {
                table,
                dropped_rows: Vec::new(),
                others_rows: dangling,
            })
        }
    }
}

/// Builds the output table: entity columns (with at most one replaced)
/// plus the attribute table's features gathered through `gather`.
fn assemble(
    entity: &Table,
    attr: &Table,
    replace: Option<(usize, crate::column::Column)>,
    gather: &[u32],
    rows: usize,
) -> Result<Table> {
    let defs: Vec<AttributeDef> = entity.schema().attributes().to_vec();
    let mut cols: Vec<_> = entity.columns().to_vec();
    if let Some((pos, col)) = replace {
        cols[pos] = col;
    }
    let mut defs = defs;
    for (def, col) in attr.schema().attributes().iter().zip(attr.columns()) {
        if def.role != Role::Feature {
            continue; // skip RID (and any nested keys)
        }
        defs.push(def.clone());
        cols.push(col.gather(gather));
    }
    hamlet_obs::counter_add!("hamlet_rows_joined_total", rows);
    hamlet_obs::histogram_observe!("hamlet_join_rows", rows);
    let name = format!("{}_join_{}", entity.name(), attr.name());
    let schema = Schema::new(&name, defs)?;
    Table::new(name, schema, cols)
}

/// Joins the entity table with each of the given `(fk_name, table)` pairs
/// in order, producing the fully denormalized table
/// `T(SID, Y, X_S, FK_1..FK_k, X_R1..X_Rk)`.
pub fn kfk_join_all<'a, I>(entity: &Table, attrs: I) -> Result<Table>
where
    I: IntoIterator<Item = (&'a str, &'a Table)>,
{
    let mut out = entity.clone();
    for (fk, attr) in attrs {
        out = kfk_join(&out, fk, attr)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::table::TableBuilder;

    fn employers() -> Table {
        let rid = Domain::indexed("EmployerID", 3).shared();
        let country = Domain::from_labels("Country", &["NZ", "IN"]).shared();
        let revenue = Domain::indexed("Revenue", 4).shared();
        TableBuilder::new("Employers")
            .primary_key("EmployerID", rid, vec![2, 0, 1])
            .feature("Country", country, vec![1, 0, 1])
            .feature("Revenue", revenue, vec![3, 1, 0])
            .build()
            .unwrap()
    }

    fn customers(fk_codes: Vec<u32>) -> Table {
        let n = fk_codes.len();
        let sid = Domain::indexed("CustomerID", n).shared();
        let churn = Domain::boolean("Churn").shared();
        let age = Domain::indexed("Age", 5).shared();
        TableBuilder::new("Customers")
            .primary_key("CustomerID", sid, (0..n as u32).collect())
            .target("Churn", churn, vec![0; n])
            .feature("Age", age, vec![1; n])
            .foreign_key(
                "EmployerID",
                "Employers",
                Domain::indexed("EmployerID", 3).shared(),
                fk_codes,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn join_gathers_foreign_features() {
        let s = customers(vec![0, 1, 2, 0]);
        let r = employers();
        let t = kfk_join(&s, "EmployerID", &r).unwrap();
        assert_eq!(t.n_rows(), 4);
        // Employers stores RIDs out of order: RID 0 -> row 1, 1 -> row 2, 2 -> row 0.
        let country = t.column_by_name("Country").unwrap();
        assert_eq!(country.codes(), &[0, 1, 1, 0]);
        let revenue = t.column_by_name("Revenue").unwrap();
        assert_eq!(revenue.codes(), &[1, 0, 3, 1]);
        // FK survives; RID is not duplicated.
        assert!(t.schema().index_of("EmployerID").is_some());
        assert_eq!(
            t.schema()
                .attributes()
                .iter()
                .filter(|a| a.name == "EmployerID")
                .count(),
            1
        );
    }

    #[test]
    fn fd_fk_to_xr_holds_in_output() {
        let s = customers(vec![0, 1, 2, 0, 1, 2, 1]);
        let t = kfk_join(&s, "EmployerID", &employers()).unwrap();
        let fk = t.column_by_name("EmployerID").unwrap();
        let country = t.column_by_name("Country").unwrap();
        let mut seen: std::collections::HashMap<u32, u32> = Default::default();
        for i in 0..t.n_rows() {
            let e = seen.entry(fk.get(i)).or_insert_with(|| country.get(i));
            assert_eq!(*e, country.get(i), "FD FK -> Country violated");
        }
    }

    #[test]
    fn dangling_fk_detected() {
        // Attribute table missing RID=1.
        let rid = Domain::indexed("EmployerID", 3).shared();
        let r = TableBuilder::new("Employers")
            .primary_key("EmployerID", rid, vec![0, 2])
            .feature("Country", Domain::boolean("Country").shared(), vec![0, 1])
            .build()
            .unwrap();
        let s = customers(vec![0, 1]);
        let err = kfk_join(&s, "EmployerID", &r).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::DanglingForeignKey { code: 1, .. }
        ));
    }

    #[test]
    fn non_fk_attribute_rejected() {
        let s = customers(vec![0]);
        let err = kfk_join(&s, "Age", &employers()).unwrap_err();
        assert!(matches!(err, RelationalError::NotAForeignKey { .. }));
    }

    #[test]
    fn domain_size_mismatch_rejected() {
        let rid = Domain::indexed("EmployerID", 5).shared();
        let r = TableBuilder::new("Employers")
            .primary_key("EmployerID", rid, vec![0, 1, 2, 3, 4])
            .feature(
                "Country",
                Domain::boolean("Country").shared(),
                vec![0, 1, 0, 1, 0],
            )
            .build()
            .unwrap();
        let s = customers(vec![0]);
        let err = kfk_join(&s, "EmployerID", &r).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::ForeignKeyDomainMismatch { .. }
        ));
    }

    #[test]
    fn join_all_chains_tables() {
        let s = customers(vec![0, 1, 2]);
        let r = employers();
        let t = kfk_join_all(&s, [("EmployerID", &r)]).unwrap();
        assert_eq!(t.schema().len(), s.schema().len() + 2);
    }

    #[test]
    fn join_preserves_row_count_always() {
        for n in [1usize, 2, 7, 31] {
            let fk: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
            let s = customers(fk);
            let t = kfk_join(&s, "EmployerID", &employers()).unwrap();
            assert_eq!(t.n_rows(), n);
        }
    }
}
