//! Discretization of numeric data into nominal domains.
//!
//! The paper assumes numeric features "have been discretized to a finite
//! set of categories, say, using binning" (Sec 2.1, footnote 1) and uses
//! "a standard unsupervised binning technique (equal-length histograms)"
//! for the real datasets (Sec 5). This module implements that technique.

use std::sync::Arc;

use crate::column::Column;
use crate::domain::Domain;
use crate::error::{RelationalError, Result};

/// An equal-width binning of a closed numeric range into `n_bins` buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct EqualWidthBinner {
    name: String,
    lo: f64,
    hi: f64,
    n_bins: usize,
}

impl EqualWidthBinner {
    /// Builds a binner over `[lo, hi]` with `n_bins` equal-width buckets.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64, n_bins: usize) -> Result<Self> {
        if n_bins == 0 {
            return Err(RelationalError::InvalidBinning {
                reason: "n_bins must be positive".into(),
            });
        }
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(RelationalError::InvalidBinning {
                reason: format!("invalid range [{lo}, {hi}]"),
            });
        }
        Ok(Self {
            name: name.into(),
            lo,
            hi,
            n_bins,
        })
    }

    /// Builds a binner whose range is the min/max of `values`.
    ///
    /// If all values are equal the range is widened by ±0.5 so the single
    /// observed value falls in a well-defined bin.
    pub fn fit(name: impl Into<String>, values: &[f64], n_bins: usize) -> Result<Self> {
        if values.is_empty() {
            return Err(RelationalError::InvalidBinning {
                reason: "cannot fit binner on empty data".into(),
            });
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            if !v.is_finite() {
                return Err(RelationalError::InvalidBinning {
                    reason: format!("non-finite value {v}"),
                });
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo == hi {
            lo -= 0.5;
            hi += 0.5;
        }
        Self::new(name, lo, hi, n_bins)
    }

    /// Number of bins (the resulting domain size).
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Maps one value to its bin code; values outside the fitted range are
    /// clamped to the first/last bin (standard practice for held-out data).
    pub fn bin(&self, v: f64) -> u32 {
        let width = (self.hi - self.lo) / self.n_bins as f64;
        let raw = ((v - self.lo) / width).floor();
        raw.clamp(0.0, (self.n_bins - 1) as f64) as u32
    }

    /// The nominal domain produced by this binner, with interval labels.
    pub fn domain(&self) -> Domain {
        let width = (self.hi - self.lo) / self.n_bins as f64;
        let labels = (0..self.n_bins)
            .map(|i| {
                let a = self.lo + width * i as f64;
                let b = a + width;
                format!("[{a:.4},{b:.4})")
            })
            .collect();
        Domain::labelled(self.name.clone(), labels)
    }

    /// Bins a whole numeric vector into a [`Column`].
    pub fn bin_column(&self, values: &[f64]) -> Column {
        let domain = Arc::new(self.domain());
        let codes = values.iter().map(|&v| self.bin(v)).collect();
        Column::new_unchecked(domain, codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_are_equal_width() {
        let b = EqualWidthBinner::new("x", 0.0, 10.0, 5).unwrap();
        assert_eq!(b.bin(0.0), 0);
        assert_eq!(b.bin(1.99), 0);
        assert_eq!(b.bin(2.0), 1);
        assert_eq!(b.bin(9.99), 4);
        // The max lands in the last bin, not one past it.
        assert_eq!(b.bin(10.0), 4);
    }

    #[test]
    fn out_of_range_clamped() {
        let b = EqualWidthBinner::new("x", 0.0, 1.0, 4).unwrap();
        assert_eq!(b.bin(-100.0), 0);
        assert_eq!(b.bin(100.0), 3);
    }

    #[test]
    fn fit_uses_min_max() {
        let b = EqualWidthBinner::fit("x", &[3.0, 7.0, 5.0], 2).unwrap();
        assert_eq!(b.bin(3.0), 0);
        assert_eq!(b.bin(6.9), 1);
    }

    #[test]
    fn fit_constant_data() {
        let b = EqualWidthBinner::fit("x", &[4.2, 4.2], 3).unwrap();
        // All values land in a valid bin.
        let code = b.bin(4.2);
        assert!(code < 3);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(EqualWidthBinner::new("x", 0.0, 1.0, 0).is_err());
        assert!(EqualWidthBinner::new("x", 2.0, 1.0, 3).is_err());
        assert!(EqualWidthBinner::new("x", f64::NAN, 1.0, 3).is_err());
        assert!(EqualWidthBinner::fit("x", &[], 3).is_err());
        assert!(EqualWidthBinner::fit("x", &[1.0, f64::INFINITY], 3).is_err());
    }

    #[test]
    fn bin_column_produces_valid_codes() {
        let b = EqualWidthBinner::new("x", 0.0, 1.0, 10).unwrap();
        let col = b.bin_column(&[0.05, 0.15, 0.95, 0.5]);
        assert_eq!(col.codes(), &[0, 1, 9, 5]);
        assert_eq!(col.domain().size(), 10);
    }

    #[test]
    fn domain_labels_are_intervals() {
        let b = EqualWidthBinner::new("x", 0.0, 2.0, 2).unwrap();
        let d = b.domain();
        assert!(d.label(0).contains("[0.0000,1.0000)"));
    }
}

/// An equal-frequency (quantile) binning: bin edges are chosen so each
/// bucket receives roughly the same number of fitted values. The paper
/// uses equal-length histograms (Sec 5); equal-frequency is the standard
/// alternative and is exposed for ablations on the discretization choice.
#[derive(Debug, Clone, PartialEq)]
pub struct EqualFrequencyBinner {
    name: String,
    /// Upper edges of bins 0..n-1 (the last bin is unbounded above).
    edges: Vec<f64>,
}

impl EqualFrequencyBinner {
    /// Fits quantile edges on `values`.
    pub fn fit(name: impl Into<String>, values: &[f64], n_bins: usize) -> Result<Self> {
        if n_bins == 0 {
            return Err(RelationalError::InvalidBinning {
                reason: "n_bins must be positive".into(),
            });
        }
        if values.is_empty() {
            return Err(RelationalError::InvalidBinning {
                reason: "cannot fit binner on empty data".into(),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(RelationalError::InvalidBinning {
                reason: "non-finite value".into(),
            });
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len();
        let mut edges = Vec::with_capacity(n_bins - 1);
        for k in 1..n_bins {
            let idx = (k * n / n_bins).min(n - 1);
            edges.push(sorted[idx]);
        }
        edges.dedup_by(|a, b| a == b);
        Ok(Self {
            name: name.into(),
            edges,
        })
    }

    /// Number of bins (may be fewer than requested when the data has few
    /// distinct values).
    pub fn n_bins(&self) -> usize {
        self.edges.len() + 1
    }

    /// Maps a value to its bin code.
    pub fn bin(&self, v: f64) -> u32 {
        self.edges.iter().filter(|&&e| v >= e).count() as u32
    }

    /// The nominal domain produced by this binner.
    pub fn domain(&self) -> Domain {
        let labels = (0..self.n_bins()).map(|i| format!("q{i}")).collect();
        Domain::labelled(self.name.clone(), labels)
    }

    /// Bins a whole numeric vector into a [`Column`].
    pub fn bin_column(&self, values: &[f64]) -> Column {
        let domain = Arc::new(self.domain());
        let codes = values.iter().map(|&v| self.bin(v)).collect();
        Column::new_unchecked(domain, codes)
    }
}

#[cfg(test)]
mod equal_frequency_tests {
    use super::*;

    #[test]
    fn quantile_bins_balance_counts() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = EqualFrequencyBinner::fit("x", &values, 4).unwrap();
        assert_eq!(b.n_bins(), 4);
        let mut counts = [0usize; 4];
        for &v in &values {
            counts[b.bin(v) as usize] += 1;
        }
        for c in counts {
            assert_eq!(c, 25);
        }
    }

    #[test]
    fn skewed_data_still_balances() {
        // Heavy-tailed data defeats equal-width bins but not quantiles.
        let values: Vec<f64> = (1..=100).map(|i| (i as f64).powi(3)).collect();
        let b = EqualFrequencyBinner::fit("x", &values, 5).unwrap();
        let mut counts = vec![0usize; b.n_bins()];
        for &v in &values {
            counts[b.bin(v) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 2, "unbalanced: {counts:?}");
        // Equal width would dump almost everything into bin 0.
        let w = EqualWidthBinner::fit("x", &values, 5).unwrap();
        let first = values.iter().filter(|&&v| w.bin(v) == 0).count();
        assert!(first > 50);
    }

    #[test]
    fn duplicate_heavy_data_merges_edges() {
        let values = vec![1.0; 50];
        let b = EqualFrequencyBinner::fit("x", &values, 4).unwrap();
        assert!(b.n_bins() <= 2);
        assert!(b.bin(1.0) < b.n_bins() as u32);
    }

    #[test]
    fn bin_column_valid() {
        let values: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b = EqualFrequencyBinner::fit("x", &values, 4).unwrap();
        let col = b.bin_column(&values);
        assert_eq!(col.domain().size(), b.n_bins());
        col.codes()
            .iter()
            .for_each(|&c| assert!((c as usize) < b.n_bins()));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(EqualFrequencyBinner::fit("x", &[], 3).is_err());
        assert!(EqualFrequencyBinner::fit("x", &[1.0], 0).is_err());
        assert!(EqualFrequencyBinner::fit("x", &[f64::NAN], 2).is_err());
    }
}
