//! Table and star-schema profiling: the summary statistics an analyst
//! (or the join advisor) reads before touching any data paths.

use crate::catalog::StarSchema;
use crate::column::Column;
use crate::schema::Role;
use crate::table::Table;

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Attribute name.
    pub name: String,
    /// Role in the schema.
    pub role: Role,
    /// Declared domain size `|D_F|`.
    pub domain_size: usize,
    /// Distinct codes actually present.
    pub distinct: usize,
    /// Empirical entropy in bits.
    pub entropy_bits: f64,
    /// Most frequent code and its frequency (mode).
    pub mode: (u32, u64),
}

fn column_profile(name: &str, role: &Role, col: &Column) -> ColumnProfile {
    let hist = col.histogram();
    let n: u64 = hist.iter().sum();
    let mut entropy = 0.0;
    let mut mode = (0u32, 0u64);
    for (code, &count) in hist.iter().enumerate() {
        if count > mode.1 {
            mode = (code as u32, count);
        }
        if count > 0 && n > 0 {
            let p = count as f64 / n as f64;
            entropy -= p * p.log2();
        }
    }
    ColumnProfile {
        name: name.to_string(),
        role: role.clone(),
        domain_size: col.domain().size(),
        distinct: hist.iter().filter(|&&c| c > 0).count(),
        entropy_bits: entropy,
        mode,
    }
}

/// Summary statistics of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableProfile {
    /// Table name.
    pub name: String,
    /// Row count.
    pub n_rows: usize,
    /// Per-column profiles, in schema order.
    pub columns: Vec<ColumnProfile>,
}

/// Profiles a table.
pub fn profile_table(table: &Table) -> TableProfile {
    let columns = table
        .schema()
        .attributes()
        .iter()
        .zip(table.columns())
        .map(|(def, col)| column_profile(&def.name, &def.role, col))
        .collect();
    TableProfile {
        name: table.name().to_string(),
        n_rows: table.n_rows(),
        columns,
    }
}

/// Summary of a whole star schema, with the quantities the decision
/// rules consume highlighted.
#[derive(Debug, Clone, PartialEq)]
pub struct StarProfile {
    /// Entity-table profile.
    pub entity: TableProfile,
    /// Per attribute table: `(profile, tuple ratio n_S/n_Ri, q_Ri*)`.
    pub attributes: Vec<(TableProfile, f64, Option<usize>)>,
}

/// Profiles a star schema.
pub fn profile_star(star: &StarSchema) -> StarProfile {
    let entity = profile_table(star.entity());
    let attributes = star
        .attributes()
        .iter()
        .map(|at| {
            (
                profile_table(&at.table),
                star.n_s() as f64 / at.n_rows() as f64,
                at.min_feature_domain(),
            )
        })
        .collect();
    StarProfile { entity, attributes }
}

impl StarProfile {
    /// Renders the profile as readable text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}: {} rows, {} columns\n",
            self.entity.name,
            self.entity.n_rows,
            self.entity.columns.len()
        );
        for c in &self.entity.columns {
            out.push_str(&format!(
                "  {:<24} |D|={:<7} distinct={:<7} H={:.2} bits\n",
                c.name, c.domain_size, c.distinct, c.entropy_bits
            ));
        }
        for (p, tr, q) in &self.attributes {
            out.push_str(&format!(
                "{}: {} rows (TR = {:.1}, q_R* = {})\n",
                p.name,
                p.n_rows,
                tr,
                q.map_or("-".to_string(), |v| v.to_string())
            ));
            for c in &p.columns {
                out.push_str(&format!(
                    "  {:<24} |D|={:<7} distinct={:<7} H={:.2} bits\n",
                    c.name, c.domain_size, c.distinct, c.entropy_bits
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::AttributeTable;
    use crate::domain::Domain;
    use crate::table::TableBuilder;

    fn star() -> StarSchema {
        let rid = Domain::indexed("fk", 4).shared();
        let r = TableBuilder::new("R")
            .primary_key("fk", rid.clone(), vec![0, 1, 2, 3])
            .feature("a", Domain::indexed("a", 6).shared(), vec![0, 0, 1, 5])
            .feature("b", Domain::boolean("b").shared(), vec![0, 1, 0, 1])
            .build()
            .unwrap();
        let s = TableBuilder::new("S")
            .target(
                "y",
                Domain::boolean("y").shared(),
                vec![0, 1, 0, 1, 0, 1, 0, 1],
            )
            .foreign_key("fk", "R", rid, vec![0, 1, 2, 3, 0, 1, 2, 3])
            .build()
            .unwrap();
        StarSchema::new(
            s,
            vec![AttributeTable {
                fk: "fk".into(),
                table: r,
            }],
        )
        .unwrap()
    }

    #[test]
    fn column_profile_statistics() {
        let st = star();
        let p = profile_table(st.entity());
        assert_eq!(p.n_rows, 8);
        let y = &p.columns[0];
        assert_eq!(y.name, "y");
        assert_eq!(y.distinct, 2);
        assert!((y.entropy_bits - 1.0).abs() < 1e-9);
        let fk = &p.columns[1];
        assert_eq!(fk.distinct, 4);
        assert!((fk.entropy_bits - 2.0).abs() < 1e-9);
        assert_eq!(fk.mode.1, 2);
    }

    #[test]
    fn star_profile_rule_inputs() {
        let st = star();
        let p = profile_star(&st);
        assert_eq!(p.attributes.len(), 1);
        let (r, tr, q) = &p.attributes[0];
        assert_eq!(r.n_rows, 4);
        assert!((tr - 2.0).abs() < 1e-12);
        assert_eq!(*q, Some(2)); // min(|D_a|=6, |D_b|=2)
    }

    #[test]
    fn profile_counts_distinct_below_domain() {
        let st = star();
        let p = profile_star(&st);
        let a = &p.attributes[0].0.columns[1];
        assert_eq!(a.name, "a");
        assert_eq!(a.domain_size, 6);
        assert_eq!(a.distinct, 3); // codes 0, 1, 5
    }

    #[test]
    fn render_contains_key_facts() {
        let st = star();
        let text = profile_star(&st).render();
        assert!(text.contains("S: 8 rows"));
        assert!(text.contains("TR = 2.0"));
        assert!(text.contains("q_R* = 2"));
    }
}
