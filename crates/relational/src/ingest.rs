//! Streaming CSV ingest under a memory budget.
//!
//! [`crate::csv::read_csv_lenient`] historically required the whole file
//! as one `String` and materialized every column densely — fine for the
//! paper-scale fixtures, hopeless when the encoded table is larger than
//! RAM. This module is the out-of-core replacement: a single forward
//! pass over any [`BufRead`], encoding each column **chunk by chunk**
//! (one morsel of rows at a time, `HAMLET_MORSEL_ROWS`) and, when the
//! resident set would exceed the budget (`HAMLET_MEM_BUDGET_MB`),
//! spilling completed chunks to disk through
//! [`hamlet_obs::atomic_write`]. The product is a
//! [`ChunkedTable`] whose chunks are read back morsel-at-a-time by the
//! scans in [`crate::chunk`].
//!
//! Semantics are identical to the dense reader **by construction**: the
//! dense reader is now a thin wrapper that streams from an in-memory
//! cursor with no budget and densifies the result, so every validation
//! rule — field-count checks, numeric parses, duplicate-PK detection,
//! quarantine ordering and budgets, first-appearance nominal dictionaries,
//! equal-width binning over the global min/max — runs through this one
//! code path. `tests/proptests_dataplane.rs` additionally pins that a
//! budget-forced spilled load is bit-for-bit identical to the dense one.

use std::collections::{HashMap, HashSet};
use std::io::BufRead;
use std::path::PathBuf;
use std::sync::Arc;

use crate::binning::EqualWidthBinner;
use crate::chunk::{
    write_codes_chunk, write_values_chunk, Chunk, ChunkedColumn, ChunkedTable, SpillDir,
};
use crate::csv::{split_record, ColumnSpec, DirtyPolicy, QuarantinedRow};
use crate::domain::Domain;
use crate::error::{RelationalError, Result};
use crate::schema::{Role, Schema};

/// Knobs for a streaming load.
#[derive(Debug, Clone, Default)]
pub struct IngestOptions {
    /// Rows per chunk; `None` uses the process-wide
    /// [`hamlet_obs::resolved_morsel_rows`]. Shrunk automatically when a
    /// budget is too small to hold even one full morsel of every column.
    pub morsel_rows: Option<usize>,
    /// Resident-set budget in **bytes** for the encoded columns; `None`
    /// keeps everything in memory (the dense path).
    pub mem_budget: Option<usize>,
    /// Parent directory for spill files; `None` uses the OS temp dir.
    pub spill_dir: Option<PathBuf>,
}

impl IngestOptions {
    /// No budget, default morsel size: the dense path's options.
    pub fn dense() -> Self {
        Self::default()
    }

    /// Resolves options from the environment: morsel size from
    /// `HAMLET_MORSEL_ROWS` (non-strict, cannot change results) and the
    /// budget from `HAMLET_MEM_BUDGET_MB` (strict — an invalid budget is
    /// a typed error, never a silent unbudgeted run).
    pub fn from_env() -> Result<Self> {
        let budget_mb = hamlet_obs::env::var_where(
            "HAMLET_MEM_BUDGET_MB",
            "a positive integer (MiB)",
            |&mb: &usize| mb > 0,
        )
        .map_err(|e| RelationalError::Env {
            reason: e.to_string(),
        })?;
        Ok(Self {
            morsel_rows: None,
            mem_budget: budget_mb.map(|mb| mb.saturating_mul(1024 * 1024)),
            spill_dir: None,
        })
    }

    fn resolved_morsel_rows(&self) -> usize {
        self.morsel_rows
            .unwrap_or_else(hamlet_obs::resolved_morsel_rows)
            .max(1)
    }
}

/// Result of a streaming lenient load: the chunked table plus the same
/// quarantine report the dense reader produces.
/// `quarantined.len() + table.n_rows() == total_rows`.
#[derive(Debug, Clone)]
pub struct ChunkedCsvLoad {
    /// Table built from the rows that passed validation; columns may be
    /// partly on disk when a budget forced spilling.
    pub table: ChunkedTable,
    /// Rows set aside, in input order.
    pub quarantined: Vec<QuarantinedRow>,
    /// Data rows seen in the input (clean + quarantined).
    pub total_rows: usize,
}

/// Encoded bytes one clean row contributes across all non-skip columns
/// (nominal codes are `u32`, numeric values are staged as `f64`).
fn row_bytes(specs: &[&ColumnSpec]) -> usize {
    specs
        .iter()
        .map(|s| match s {
            ColumnSpec::Nominal(_) => 4,
            ColumnSpec::Numeric(..) => 8,
            ColumnSpec::Skip => 0,
        })
        .sum()
}

/// A numeric column's staged chunk: raw `f64` values until the global
/// range is known and they can be binned.
enum ValuesChunk {
    Mem(Vec<f64>),
    Spilled { file: PathBuf, rows: usize },
}

/// Per-column streaming encoder state.
enum Sink {
    Skip,
    Nominal {
        /// First-appearance order, exactly like the dense reader.
        labels: Vec<String>,
        code_of: HashMap<String, u32>,
        current: Vec<u32>,
        done: Vec<Chunk>,
    },
    Numeric {
        bins: usize,
        current: Vec<f64>,
        done: Vec<ValuesChunk>,
        lo: f64,
        hi: f64,
        /// First non-finite value in row order; reported at finalize,
        /// matching [`EqualWidthBinner::fit`] on the dense vector.
        non_finite: Option<f64>,
        n_values: usize,
    },
}

impl Sink {
    fn new(spec: &ColumnSpec) -> Self {
        match spec {
            ColumnSpec::Skip => Sink::Skip,
            ColumnSpec::Nominal(_) => Sink::Nominal {
                labels: Vec::new(),
                code_of: HashMap::new(),
                current: Vec::new(),
                done: Vec::new(),
            },
            ColumnSpec::Numeric(_, bins) => Sink::Numeric {
                bins: *bins,
                current: Vec::new(),
                done: Vec::new(),
                lo: f64::INFINITY,
                hi: f64::NEG_INFINITY,
                non_finite: None,
                n_values: 0,
            },
        }
    }

    /// Bytes held by completed in-memory chunks.
    fn resident_done_bytes(&self) -> usize {
        match self {
            Sink::Skip => 0,
            Sink::Nominal { done, .. } => done
                .iter()
                .map(|c| match c {
                    Chunk::Mem(v) => v.len() * 4,
                    Chunk::Spilled { .. } => 0,
                })
                .sum(),
            Sink::Numeric { done, .. } => done
                .iter()
                .map(|c| match c {
                    ValuesChunk::Mem(v) => v.len() * 8,
                    ValuesChunk::Spilled { .. } => 0,
                })
                .sum(),
        }
    }

    /// Seals the in-flight morsel into a completed chunk.
    fn complete_chunk(&mut self) {
        match self {
            Sink::Skip => {}
            Sink::Nominal { current, done, .. } => {
                if !current.is_empty() {
                    done.push(Chunk::Mem(std::mem::take(current)));
                }
            }
            Sink::Numeric { current, done, .. } => {
                if !current.is_empty() {
                    done.push(ValuesChunk::Mem(std::mem::take(current)));
                }
            }
        }
    }

    /// Writes every resident completed chunk to `dir`, replacing it with
    /// its on-disk form. `col` disambiguates files between columns.
    fn spill_done(&mut self, dir: &SpillDir, col: usize) -> Result<()> {
        match self {
            Sink::Skip => {}
            Sink::Nominal { done, .. } => {
                for (i, c) in done.iter_mut().enumerate() {
                    if let Chunk::Mem(codes) = c {
                        let file = dir.path().join(format!("c{col}-{i}.u32"));
                        write_codes_chunk(&file, codes)?;
                        *c = Chunk::Spilled {
                            file,
                            rows: codes.len(),
                        };
                    }
                }
            }
            Sink::Numeric { done, .. } => {
                for (i, c) in done.iter_mut().enumerate() {
                    if let ValuesChunk::Mem(values) = c {
                        let file = dir.path().join(format!("c{col}-{i}.f64"));
                        write_values_chunk(&file, values)?;
                        *c = ValuesChunk::Spilled {
                            file,
                            rows: values.len(),
                        };
                    }
                }
            }
        }
        Ok(())
    }
}

/// Streams a CSV from any buffered reader into a [`ChunkedTable`],
/// applying `policy` to rows that fail validation — the out-of-core
/// generalization of [`crate::csv::read_csv_lenient`] (identical
/// validation rules, error types, and quarantine semantics; that
/// function is now a wrapper over this one).
///
/// With `opts.mem_budget` set, completed chunks spill to disk once the
/// resident encoded set crosses half the budget, so peak memory stays
/// bounded no matter how many rows stream past. The returned table holds
/// its [`SpillDir`] alive; chunk files are deleted when the last column
/// referencing them drops.
pub fn read_csv_chunked<R: BufRead>(
    name: &str,
    reader: R,
    specs: &[(&str, ColumnSpec)],
    delimiter: char,
    policy: DirtyPolicy,
    opts: &IngestOptions,
) -> Result<ChunkedCsvLoad> {
    let _span = hamlet_obs::span!("relational.ingest_stream");
    let io_err = |e: std::io::Error| RelationalError::Io {
        context: format!("stream table '{name}'"),
        message: e.to_string(),
    };

    // Pull non-blank lines, exactly like the dense reader's
    // `text.lines().filter(|l| !l.trim().is_empty())`.
    let mut lines = reader.lines().filter(|r| match r {
        Ok(l) => !l.trim().is_empty(),
        Err(_) => true,
    });
    let header = match lines.next() {
        Some(r) => r.map_err(io_err)?,
        None => {
            return Err(RelationalError::EmptyTable {
                table: name.to_string(),
            })
        }
    };
    let header_fields = split_record(&header, delimiter);

    // Map CSV column position -> spec (same error order as the dense
    // reader: unknown CSV column first, then spec'd-but-absent).
    let spec_of: HashMap<&str, &ColumnSpec> = specs.iter().map(|(n, s)| (*n, s)).collect();
    let mut col_specs: Vec<&ColumnSpec> = Vec::with_capacity(header_fields.len());
    for h in &header_fields {
        let spec = spec_of
            .get(h.as_str())
            .ok_or_else(|| RelationalError::UnknownAttribute {
                table: name.to_string(),
                attribute: h.clone(),
            })?;
        col_specs.push(spec);
    }
    for (n, _) in specs {
        if !header_fields.iter().any(|h| h == n) {
            return Err(RelationalError::UnknownAttribute {
                table: name.to_string(),
                attribute: n.to_string(),
            });
        }
    }

    // Positions needing per-row validation beyond the field count.
    let numeric_cols: Vec<(usize, &str)> = col_specs
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            ColumnSpec::Numeric(def, _) => Some((i, def.name.as_str())),
            _ => None,
        })
        .collect();
    let pk_col: Option<(usize, &str)> = col_specs.iter().enumerate().find_map(|(i, s)| match s {
        ColumnSpec::Nominal(def) if matches!(def.role, Role::PrimaryKey) => {
            Some((i, def.name.as_str()))
        }
        _ => None,
    });

    // Morsel geometry: under a budget, shrink the morsel so one full
    // in-flight morsel of every column fits in a quarter of it (the
    // result is chunk-size-invariant, so this cannot change anything but
    // peak memory).
    let per_row = row_bytes(&col_specs).max(1);
    let mut morsel_rows = opts.resolved_morsel_rows();
    if let Some(budget) = opts.mem_budget {
        let fit = (budget / 4 / per_row).max(16);
        morsel_rows = morsel_rows.min(fit);
    }
    hamlet_obs::gauge_set!("hamlet_morsel_bytes", morsel_rows * per_row);
    // Spill once resident completed chunks cross half the budget.
    let spill_at = opts.mem_budget.map(|b| b / 2);

    let mut sinks: Vec<Sink> = col_specs.iter().map(|s| Sink::new(s)).collect();
    let mut spill: Option<Arc<SpillDir>> = None;
    let mut spilling = false;

    let mut quarantined: Vec<QuarantinedRow> = Vec::new();
    let mut seen_pks: HashSet<String> = HashSet::new();
    let mut total_rows = 0usize;
    let mut clean_rows = 0usize;

    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(io_err)?;
        total_rows += 1;
        let fields = split_record(&line, delimiter);
        let fault: Option<(String, RelationalError)> = if fields.len() != header_fields.len() {
            Some((
                format!(
                    "expected {} fields, found {}",
                    header_fields.len(),
                    fields.len()
                ),
                RelationalError::ColumnLengthMismatch {
                    table: name.to_string(),
                    column: format!("<record {}>", lineno + 2),
                    expected: header_fields.len(),
                    actual: fields.len(),
                },
            ))
        } else if let Some((i, col)) = numeric_cols
            .iter()
            .find(|(i, _)| fields[*i].trim().parse::<f64>().is_err())
        {
            Some((
                format!(
                    "column '{}': unparseable numeric value '{}'",
                    col, fields[*i]
                ),
                RelationalError::InvalidBinning {
                    reason: format!("column '{col}' has non-numeric data"),
                },
            ))
        } else if let Some((i, col)) = pk_col.filter(|(i, _)| seen_pks.contains(&fields[*i])) {
            Some((
                format!("duplicate primary key '{}' in column '{}'", fields[i], col),
                RelationalError::PrimaryKeyNotUnique {
                    table: name.to_string(),
                    attribute: col.to_string(),
                },
            ))
        } else {
            None
        };
        match fault {
            None => {
                if let Some((i, _)) = pk_col {
                    seen_pks.insert(fields[i].clone());
                }
                for (sink, f) in sinks.iter_mut().zip(fields) {
                    match sink {
                        Sink::Skip => {}
                        Sink::Nominal {
                            labels,
                            code_of,
                            current,
                            ..
                        } => {
                            let code = match code_of.get(&f) {
                                Some(&c) => c,
                                None => {
                                    let c = labels.len() as u32;
                                    labels.push(f.clone());
                                    code_of.insert(f, c);
                                    c
                                }
                            };
                            current.push(code);
                        }
                        Sink::Numeric {
                            current,
                            lo,
                            hi,
                            non_finite,
                            n_values,
                            ..
                        } => {
                            // Validated parseable above; a parse failure
                            // here cannot happen, but stay abort-free.
                            let v = f.trim().parse::<f64>().unwrap_or(f64::NAN);
                            if !v.is_finite() && non_finite.is_none() {
                                *non_finite = Some(v);
                            }
                            *lo = lo.min(v);
                            *hi = hi.max(v);
                            *n_values += 1;
                            current.push(v);
                        }
                    }
                }
                clean_rows += 1;
                if clean_rows.is_multiple_of(morsel_rows) {
                    for s in sinks.iter_mut() {
                        s.complete_chunk();
                    }
                    if let Some(at) = spill_at {
                        let resident: usize = sinks.iter().map(Sink::resident_done_bytes).sum();
                        if spilling || resident > at {
                            spilling = true;
                            let dir = match &spill {
                                Some(d) => Arc::clone(d),
                                None => {
                                    let d = SpillDir::create(opts.spill_dir.as_deref())?;
                                    spill = Some(Arc::clone(&d));
                                    d
                                }
                            };
                            for (col, s) in sinks.iter_mut().enumerate() {
                                s.spill_done(&dir, col)?;
                            }
                        }
                    }
                }
            }
            Some((reason, err)) => match policy {
                DirtyPolicy::Abort => return Err(err),
                DirtyPolicy::Quarantine { max_bad_rows } => {
                    if quarantined.len() >= max_bad_rows {
                        return Err(RelationalError::DirtyBudgetExceeded {
                            table: name.to_string(),
                            quarantined: quarantined.len() + 1,
                            budget: max_bad_rows,
                            last_row: lineno,
                            last_reason: reason,
                        });
                    }
                    quarantined.push(QuarantinedRow {
                        row: lineno,
                        reason,
                        raw: line,
                    });
                }
            },
        }
    }
    if !quarantined.is_empty() {
        hamlet_obs::counter_add!("hamlet_dirty_rows_quarantined_total", quarantined.len());
    }

    // Seal the final partial morsel.
    for s in sinks.iter_mut() {
        s.complete_chunk();
    }

    // Finalize columns in header order — the same order (and therefore
    // the same first-error) as the dense reader's build loop.
    let mut defs = Vec::new();
    let mut columns = Vec::new();
    for (i, (spec, sink)) in col_specs.iter().zip(sinks).enumerate() {
        match (*spec, sink) {
            (ColumnSpec::Skip, _) => {}
            (ColumnSpec::Nominal(def), Sink::Nominal { labels, done, .. }) => {
                if labels.is_empty() {
                    return Err(RelationalError::EmptyTable {
                        table: name.to_string(),
                    });
                }
                let domain = Domain::labelled(&def.name, labels).shared();
                defs.push(def.clone());
                columns.push(ChunkedColumn::from_parts(
                    domain,
                    morsel_rows,
                    done,
                    spill.clone(),
                )?);
            }
            (
                ColumnSpec::Numeric(def, _),
                Sink::Numeric {
                    bins,
                    done,
                    lo,
                    hi,
                    non_finite,
                    n_values,
                    ..
                },
            ) => {
                // Replicates `EqualWidthBinner::fit` on the dense vector:
                // empty check, first non-finite in row order, then the
                // lo==hi widening.
                if n_values == 0 {
                    return Err(RelationalError::InvalidBinning {
                        reason: "cannot fit binner on empty data".into(),
                    });
                }
                if let Some(v) = non_finite {
                    return Err(RelationalError::InvalidBinning {
                        reason: format!("non-finite value {v}"),
                    });
                }
                let (lo, hi) = if lo == hi {
                    (lo - 0.5, hi + 0.5)
                } else {
                    (lo, hi)
                };
                let binner = EqualWidthBinner::new(&def.name, lo, hi, bins)?;
                let domain = Arc::new(binner.domain());
                // Bin each staged chunk; spilled value chunks are read
                // back one at a time and re-spilled as code chunks.
                let mut chunks = Vec::with_capacity(done.len());
                for c in done {
                    match c {
                        ValuesChunk::Mem(values) => {
                            chunks
                                .push(Chunk::Mem(values.iter().map(|&v| binner.bin(v)).collect()));
                        }
                        ValuesChunk::Spilled { file, rows } => {
                            let values = crate::chunk::read_values_chunk(&file, rows)?;
                            let codes: Vec<u32> = values.iter().map(|&v| binner.bin(v)).collect();
                            let out = file.with_extension("u32b");
                            write_codes_chunk(&out, &codes)?;
                            let _ = std::fs::remove_file(&file);
                            chunks.push(Chunk::Spilled { file: out, rows });
                        }
                    }
                }
                defs.push(def.clone());
                columns.push(ChunkedColumn::from_parts(
                    domain,
                    morsel_rows,
                    chunks,
                    spill.clone(),
                )?);
            }
            // Sinks are created from the very specs we match on, so the
            // arms above are exhaustive in practice.
            (_, _) => {
                return Err(RelationalError::Io {
                    context: format!("stream table '{name}'"),
                    message: format!("column {i}: sink/spec mismatch"),
                })
            }
        }
    }

    let schema = Schema::new(name, defs)?;
    let table = ChunkedTable::new(name, schema, columns)?;
    hamlet_obs::counter_add!("hamlet_ingest_rows_total", clean_rows);
    Ok(ChunkedCsvLoad {
        table,
        quarantined,
        total_rows,
    })
}

/// Streams a CSV **file** into a [`ChunkedTable`] through a buffered
/// reader — never holds the file text in memory (satellite 1: the
/// whole-file-into-`String` read is gone from every file-backed path).
pub fn read_csv_file_chunked(
    name: &str,
    path: &std::path::Path,
    specs: &[(&str, ColumnSpec)],
    delimiter: char,
    policy: DirtyPolicy,
    opts: &IngestOptions,
) -> Result<ChunkedCsvLoad> {
    let file = std::fs::File::open(path).map_err(|e| RelationalError::Io {
        context: format!("open {}", path.display()),
        message: e.to_string(),
    })?;
    read_csv_chunked(
        name,
        std::io::BufReader::new(file),
        specs,
        delimiter,
        policy,
        opts,
    )
}

/// Streams a CSV file and densifies the result: a drop-in replacement
/// for `read_to_string` + [`crate::csv::read_csv_lenient`] that reads
/// the file incrementally and honors `HAMLET_MEM_BUDGET_MB` /
/// `HAMLET_MORSEL_ROWS` during the ingest (the returned table is dense
/// either way; the budget bounds the *transient* ingest state).
pub fn read_csv_file_lenient(
    name: &str,
    path: &std::path::Path,
    specs: &[(&str, ColumnSpec)],
    delimiter: char,
    policy: DirtyPolicy,
) -> Result<crate::csv::CsvLoad> {
    let opts = IngestOptions::from_env()?;
    let load = read_csv_file_chunked(name, path, specs, delimiter, policy, &opts)?;
    Ok(crate::csv::CsvLoad {
        table: load.table.to_table()?,
        quarantined: load.quarantined,
        total_rows: load.total_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_csv_lenient;

    const CSV: &str = "\
CustomerID,Churn,Gender,Age,EmployerID
c1,yes,F,34.5,e1
c2,no,M,51.0,e2
c3,no,F,28.2,e1
c4,yes,M,61.9,e3
";

    fn specs() -> Vec<(&'static str, ColumnSpec)> {
        vec![
            ("CustomerID", ColumnSpec::primary_key("CustomerID")),
            ("Churn", ColumnSpec::target("Churn")),
            ("Gender", ColumnSpec::feature("Gender")),
            ("Age", ColumnSpec::numeric_feature("Age", 4)),
            (
                "EmployerID",
                ColumnSpec::foreign_key("EmployerID", "Employers"),
            ),
        ]
    }

    fn chunked(text: &str, opts: &IngestOptions) -> Result<ChunkedCsvLoad> {
        read_csv_chunked(
            "Customers",
            std::io::Cursor::new(text.as_bytes()),
            &specs(),
            ',',
            DirtyPolicy::Abort,
            opts,
        )
    }

    #[test]
    fn streamed_load_matches_dense_reader() {
        let dense = read_csv_lenient("Customers", CSV, &specs(), ',', DirtyPolicy::Abort).unwrap();
        for morsel in [1, 2, 3, 100] {
            let opts = IngestOptions {
                morsel_rows: Some(morsel),
                ..IngestOptions::dense()
            };
            let load = chunked(CSV, &opts).unwrap();
            let table = load.table.to_table().unwrap();
            assert_eq!(table.n_rows(), dense.table.n_rows());
            for (a, b) in table.columns().iter().zip(dense.table.columns()) {
                assert_eq!(a.codes(), b.codes());
                assert_eq!(a.domain().size(), b.domain().size());
            }
        }
    }

    #[test]
    fn tiny_budget_spills_and_still_matches() {
        // ~200 rows x 28 bytes/row; an 128-byte budget forces morsel
        // shrink + spill on nearly every chunk.
        let mut text = String::from("CustomerID,Churn,Gender,Age,EmployerID\n");
        for i in 0..200 {
            text.push_str(&format!(
                "c{i},{},{},{}.5,e{}\n",
                if i % 3 == 0 { "yes" } else { "no" },
                if i % 2 == 0 { "F" } else { "M" },
                i % 17,
                i % 7
            ));
        }
        let dense =
            read_csv_lenient("Customers", &text, &specs(), ',', DirtyPolicy::Abort).unwrap();
        let opts = IngestOptions {
            morsel_rows: None,
            mem_budget: Some(128),
            spill_dir: None,
        };
        let load = chunked(&text, &opts).unwrap();
        assert!(load.table.is_spilled(), "128-byte budget must spill");
        let table = load.table.to_table().unwrap();
        for (a, b) in table.columns().iter().zip(dense.table.columns()) {
            assert_eq!(a.codes(), b.codes());
        }
    }

    #[test]
    fn budget_env_is_strict() {
        std::env::set_var("HAMLET_MEM_BUDGET_MB", "lots");
        let err = IngestOptions::from_env().unwrap_err();
        assert!(matches!(err, RelationalError::Env { .. }));
        assert!(err.to_string().contains("HAMLET_MEM_BUDGET_MB"), "{err}");
        std::env::set_var("HAMLET_MEM_BUDGET_MB", "64");
        let opts = IngestOptions::from_env().unwrap();
        assert_eq!(opts.mem_budget, Some(64 * 1024 * 1024));
        std::env::remove_var("HAMLET_MEM_BUDGET_MB");
    }

    #[test]
    fn file_reader_streams_without_whole_file_read() {
        let dir = SpillDir::create(None).unwrap();
        let path = dir.path().join("t.csv");
        hamlet_obs::atomic_write(&path, CSV.as_bytes()).unwrap();
        let load =
            read_csv_file_lenient("Customers", &path, &specs(), ',', DirtyPolicy::Abort).unwrap();
        assert_eq!(load.table.n_rows(), 4);
        assert!(read_csv_file_lenient(
            "Customers",
            &dir.path().join("missing.csv"),
            &specs(),
            ',',
            DirtyPolicy::Abort
        )
        .is_err());
    }

    #[test]
    fn non_finite_numeric_errors_like_dense_fit() {
        let text = "x\n1.0\ninf\n2.0\n";
        let s = vec![("x", ColumnSpec::numeric_feature("x", 2))];
        let err = read_csv_chunked(
            "T",
            std::io::Cursor::new(text.as_bytes()),
            &s,
            ',',
            DirtyPolicy::Abort,
            &IngestOptions::dense(),
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::InvalidBinning { .. }));
        assert!(err.to_string().contains("non-finite"), "{err}");
    }
}
