//! Logical schemas: attribute roles and per-table layouts.
//!
//! The paper's schema setting (Sec 2.1): an *entity table*
//! `S(SID, Y, X_S, FK_1..FK_k)` and *attribute tables* `R_i(RID_i, X_Ri)`.
//! Roles make those positions explicit so joins and the decision rules can
//! be driven from metadata alone.

use crate::error::{RelationalError, Result};

/// The role an attribute plays in a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// A primary key (`SID` or `RID_i`). Unique within its table.
    PrimaryKey,
    /// A foreign key referencing the primary key of `table`.
    ///
    /// `closed_domain` records the paper's "closed with respect to the
    /// prediction task" assumption (Sec 2.1). Only closed-domain foreign
    /// keys are candidates for acting as representatives of foreign
    /// features; an open-domain FK (e.g. Expedia's `SearchID`) is excluded
    /// from join-avoidance decisions.
    ForeignKey {
        /// Name of the referenced attribute table.
        table: String,
        /// Whether the FK's domain is closed w.r.t. the prediction task.
        closed_domain: bool,
    },
    /// An ordinary feature (a member of `X_S` or `X_Ri`).
    Feature,
    /// The learning target `Y`. At most one per schema, in the entity table.
    Target,
}

impl Role {
    /// Whether this role is `ForeignKey`.
    pub fn is_foreign_key(&self) -> bool {
        matches!(self, Role::ForeignKey { .. })
    }

    /// Whether this attribute may be used as an ML input feature.
    ///
    /// Keys are excluded except foreign keys, which the paper treats as
    /// features in their own right ("it is reasonable to use EmployerID as
    /// a feature").
    pub fn is_ml_input(&self) -> bool {
        matches!(self, Role::Feature | Role::ForeignKey { .. })
    }
}

/// A named attribute with a role. The physical domain lives with the
/// column; the schema is purely logical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDef {
    /// Attribute (column) name, unique within its table.
    pub name: String,
    /// Role of the attribute.
    pub role: Role,
}

impl AttributeDef {
    /// A feature attribute.
    pub fn feature(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: Role::Feature,
        }
    }

    /// A primary key attribute.
    pub fn primary_key(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: Role::PrimaryKey,
        }
    }

    /// A closed-domain foreign key referencing `table`.
    pub fn foreign_key(name: impl Into<String>, table: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: Role::ForeignKey {
                table: table.into(),
                closed_domain: true,
            },
        }
    }

    /// An open-domain foreign key referencing `table` (not a candidate for
    /// join avoidance).
    pub fn open_foreign_key(name: impl Into<String>, table: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: Role::ForeignKey {
                table: table.into(),
                closed_domain: false,
            },
        }
    }

    /// The target attribute.
    pub fn target(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: Role::Target,
        }
    }
}

/// An ordered list of attribute definitions for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<AttributeDef>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate names and duplicate
    /// primary-key / target roles.
    pub fn new(table: &str, attributes: Vec<AttributeDef>) -> Result<Self> {
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationalError::DuplicateAttribute {
                    table: table.to_string(),
                    attribute: a.name.clone(),
                });
            }
        }
        let pk_count = attributes
            .iter()
            .filter(|a| a.role == Role::PrimaryKey)
            .count();
        if pk_count > 1 {
            return Err(RelationalError::DuplicateRole {
                table: table.to_string(),
                role: "primary key",
            });
        }
        let y_count = attributes.iter().filter(|a| a.role == Role::Target).count();
        if y_count > 1 {
            return Err(RelationalError::DuplicateRole {
                table: table.to_string(),
                role: "target",
            });
        }
        Ok(Self { attributes })
    }

    /// All attribute definitions, in column order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// The attribute named `name`.
    pub fn get(&self, name: &str) -> Option<&AttributeDef> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Index of the primary key, if any.
    pub fn primary_key(&self) -> Option<usize> {
        self.attributes
            .iter()
            .position(|a| a.role == Role::PrimaryKey)
    }

    /// Index of the target, if any.
    pub fn target(&self) -> Option<usize> {
        self.attributes.iter().position(|a| a.role == Role::Target)
    }

    /// Indices of all foreign keys, in column order.
    pub fn foreign_keys(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role.is_foreign_key())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of plain features (excluding keys and target).
    pub fn features(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == Role::Feature)
            .map(|(i, _)| i)
            .collect()
    }

    /// Names of all attributes usable as ML inputs (features + FKs).
    pub fn ml_input_names(&self) -> Vec<String> {
        self.attributes
            .iter()
            .filter(|a| a.role.is_ml_input())
            .map(|a| a.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn customers() -> Schema {
        Schema::new(
            "Customers",
            vec![
                AttributeDef::primary_key("CustomerID"),
                AttributeDef::target("Churn"),
                AttributeDef::feature("Gender"),
                AttributeDef::feature("Age"),
                AttributeDef::foreign_key("EmployerID", "Employers"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roles_are_located() {
        let s = customers();
        assert_eq!(s.primary_key(), Some(0));
        assert_eq!(s.target(), Some(1));
        assert_eq!(s.features(), vec![2, 3]);
        assert_eq!(s.foreign_keys(), vec![4]);
        assert_eq!(
            s.ml_input_names(),
            vec!["Gender".to_string(), "Age".into(), "EmployerID".into()]
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(
            "T",
            vec![AttributeDef::feature("a"), AttributeDef::feature("a")],
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateAttribute { .. }));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let err = Schema::new(
            "T",
            vec![
                AttributeDef::primary_key("a"),
                AttributeDef::primary_key("b"),
            ],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RelationalError::DuplicateRole {
                role: "primary key",
                ..
            }
        ));
    }

    #[test]
    fn duplicate_target_rejected() {
        let err = Schema::new(
            "T",
            vec![AttributeDef::target("a"), AttributeDef::target("b")],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RelationalError::DuplicateRole { role: "target", .. }
        ));
    }

    #[test]
    fn open_fk_is_flagged() {
        let s = Schema::new(
            "Listings",
            vec![AttributeDef::open_foreign_key("SearchID", "Searches")],
        )
        .unwrap();
        match &s.get("SearchID").unwrap().role {
            Role::ForeignKey { closed_domain, .. } => assert!(!closed_domain),
            _ => panic!("expected FK"),
        }
    }

    #[test]
    fn fk_is_ml_input_but_pk_is_not() {
        assert!(Role::ForeignKey {
            table: "R".into(),
            closed_domain: true
        }
        .is_ml_input());
        assert!(!Role::PrimaryKey.is_ml_input());
        assert!(!Role::Target.is_ml_input());
    }
}
