//! Columnar storage of nominal attributes as dense `u32` codes.

use std::sync::Arc;

use crate::domain::Domain;
use crate::error::{RelationalError, Result};

/// One column of nominal values, stored as codes into a shared [`Domain`].
///
/// This is the only physical storage type in the substrate: the paper's
/// setting is all-nominal (numeric features are discretized by binning,
/// Sec 2.1 footnote 1), so a code vector plus a domain is a complete
/// representation.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    domain: Arc<Domain>,
    codes: Vec<u32>,
}

impl Column {
    /// Builds a column, validating every code against the domain.
    pub fn new(domain: Arc<Domain>, codes: Vec<u32>) -> Result<Self> {
        if let Some(&bad) = codes.iter().find(|&&c| !domain.contains(c)) {
            return Err(RelationalError::CodeOutOfDomain {
                table: String::new(),
                column: domain.name().to_string(),
                code: bad,
                domain_size: domain.size(),
            });
        }
        Ok(Self { domain, codes })
    }

    /// Builds a column without validating codes.
    ///
    /// Intended for generators that produce codes from the domain by
    /// construction; invalid codes would be caught later by
    /// [`crate::table::Table::validate`].
    pub fn new_unchecked(domain: Arc<Domain>, codes: Vec<u32>) -> Self {
        Self { domain, codes }
    }

    /// The column's domain.
    pub fn domain(&self) -> &Arc<Domain> {
        &self.domain
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The raw code vector.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Consumes the column, yielding its code vector (used by the
    /// chunked plane to re-chunk a dense column without copying).
    pub fn into_codes(self) -> Vec<u32> {
        self.codes
    }

    /// Value at `row`.
    pub fn get(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// Gathers `self[indices[i]]` into a new column (the core primitive of
    /// the hash join: foreign features are gathered through the FK).
    pub fn gather(&self, indices: &[u32]) -> Column {
        let codes = indices.iter().map(|&i| self.codes[i as usize]).collect();
        Column {
            domain: Arc::clone(&self.domain),
            codes,
        }
    }

    /// Selects the rows whose positions are listed in `rows` (used for
    /// train/validation/test splits at the relational level).
    pub fn select(&self, rows: &[usize]) -> Column {
        let codes = rows.iter().map(|&i| self.codes[i]).collect();
        Column {
            domain: Arc::clone(&self.domain),
            codes,
        }
    }

    /// Counts occurrences of each code; the histogram has `domain.size()`
    /// entries.
    pub fn histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.domain.size()];
        for &c in &self.codes {
            h[c as usize] += 1;
        }
        h
    }

    /// Number of distinct codes actually present.
    pub fn distinct_count(&self) -> usize {
        self.histogram().iter().filter(|&&n| n > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(n: usize) -> Arc<Domain> {
        Domain::indexed("D", n).shared()
    }

    #[test]
    fn new_validates_codes() {
        assert!(Column::new(dom(3), vec![0, 1, 2]).is_ok());
        let err = Column::new(dom(3), vec![0, 3]).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::CodeOutOfDomain { code: 3, .. }
        ));
    }

    #[test]
    fn gather_pulls_through_indices() {
        let c = Column::new(dom(5), vec![4, 3, 2, 1, 0]).unwrap();
        let g = c.gather(&[0, 0, 4, 2]);
        assert_eq!(g.codes(), &[4, 4, 0, 2]);
        assert_eq!(g.domain().size(), 5);
    }

    #[test]
    fn select_subsets_rows() {
        let c = Column::new(dom(4), vec![0, 1, 2, 3]).unwrap();
        let s = c.select(&[3, 1]);
        assert_eq!(s.codes(), &[3, 1]);
    }

    #[test]
    fn histogram_counts() {
        let c = Column::new(dom(3), vec![0, 2, 2, 2, 1]).unwrap();
        assert_eq!(c.histogram(), vec![1, 1, 3]);
        assert_eq!(c.distinct_count(), 3);
        let c2 = Column::new(dom(3), vec![1, 1]).unwrap();
        assert_eq!(c2.distinct_count(), 1);
    }

    #[test]
    fn empty_column() {
        let c = Column::new(dom(2), vec![]).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.histogram(), vec![0, 0]);
    }
}
