//! Tables: a schema plus parallel columns.

use std::sync::Arc;

use crate::column::Column;
use crate::domain::Domain;
use crate::error::{RelationalError, Result};
use crate::schema::{AttributeDef, Schema};

/// A named relational table with columnar storage.
///
/// Invariants (enforced by [`Table::new`] / [`Table::validate`]):
/// * every column has the same length (`n_rows`);
/// * every code is within its column's domain;
/// * the primary key column, if any, is unique.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// Builds and validates a table. `columns` are parallel to
    /// `schema.attributes()`.
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Column>) -> Result<Self> {
        let name = name.into();
        assert_eq!(
            schema.len(),
            columns.len(),
            "schema/column arity mismatch in table '{name}'"
        );
        let n_rows = columns.first().map_or(0, Column::len);
        let t = Self {
            name,
            schema,
            columns,
            n_rows,
        };
        t.validate()?;
        Ok(t)
    }

    /// Re-checks all invariants.
    pub fn validate(&self) -> Result<()> {
        for (def, col) in self.schema.attributes().iter().zip(&self.columns) {
            if col.len() != self.n_rows {
                return Err(RelationalError::ColumnLengthMismatch {
                    table: self.name.clone(),
                    column: def.name.clone(),
                    expected: self.n_rows,
                    actual: col.len(),
                });
            }
            if let Some(&bad) = col.codes().iter().find(|&&c| !col.domain().contains(c)) {
                return Err(RelationalError::CodeOutOfDomain {
                    table: self.name.clone(),
                    column: def.name.clone(),
                    code: bad,
                    domain_size: col.domain().size(),
                });
            }
        }
        if let Some(pk) = self.schema.primary_key() {
            let col = &self.columns[pk];
            let mut seen = vec![false; col.domain().size()];
            for &c in col.codes() {
                if seen[c as usize] {
                    return Err(RelationalError::PrimaryKeyNotUnique {
                        table: self.name.clone(),
                        attribute: self.schema.attributes()[pk].name.clone(),
                    });
                }
                seen[c as usize] = true;
            }
        }
        Ok(())
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// All columns, parallel to the schema.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by attribute name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                table: self.name.clone(),
                attribute: name.to_string(),
            })?;
        Ok(&self.columns[idx])
    }

    /// Projects onto the named attributes (in the given order), keeping
    /// roles.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let mut defs = Vec::with_capacity(names.len());
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let idx = self
                .schema
                .index_of(n)
                .ok_or_else(|| RelationalError::UnknownAttribute {
                    table: self.name.clone(),
                    attribute: n.to_string(),
                })?;
            defs.push(self.schema.attributes()[idx].clone());
            cols.push(self.columns[idx].clone());
        }
        Table::new(self.name.clone(), Schema::new(&self.name, defs)?, cols)
    }

    /// Drops the named attributes, keeping everything else in order.
    pub fn drop_attributes(&self, names: &[&str]) -> Result<Table> {
        for &n in names {
            if self.schema.index_of(n).is_none() {
                return Err(RelationalError::UnknownAttribute {
                    table: self.name.clone(),
                    attribute: n.to_string(),
                });
            }
        }
        let keep: Vec<&str> = self
            .schema
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .filter(|n| !names.contains(n))
            .collect();
        self.project(&keep)
    }

    /// Selects the given row positions into a new table (splits/sampling).
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.select(rows)).collect();
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            n_rows: rows.len(),
        }
    }

    /// The target column, if the schema declares one.
    pub fn target_column(&self) -> Option<&Column> {
        self.schema.target().map(|i| &self.columns[i])
    }

    /// Returns one row as a code vector (for tests and debugging).
    pub fn row(&self, idx: usize) -> Vec<u32> {
        self.columns.iter().map(|c| c.get(idx)).collect()
    }
}

/// Fluent builder for constructing tables in generators and tests.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    defs: Vec<AttributeDef>,
    cols: Vec<Column>,
}

impl TableBuilder {
    /// Starts a builder for a table named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            defs: Vec::new(),
            cols: Vec::new(),
        }
    }

    /// Adds a column with an explicit role.
    pub fn column(mut self, def: AttributeDef, domain: Arc<Domain>, codes: Vec<u32>) -> Self {
        self.defs.push(def);
        self.cols.push(Column::new_unchecked(domain, codes));
        self
    }

    /// Adds a feature column.
    pub fn feature(self, name: &str, domain: Arc<Domain>, codes: Vec<u32>) -> Self {
        self.column(AttributeDef::feature(name), domain, codes)
    }

    /// Adds a primary-key column.
    pub fn primary_key(self, name: &str, domain: Arc<Domain>, codes: Vec<u32>) -> Self {
        self.column(AttributeDef::primary_key(name), domain, codes)
    }

    /// Adds a closed-domain foreign-key column referencing `table`.
    pub fn foreign_key(
        self,
        name: &str,
        table: &str,
        domain: Arc<Domain>,
        codes: Vec<u32>,
    ) -> Self {
        self.column(AttributeDef::foreign_key(name, table), domain, codes)
    }

    /// Adds an open-domain foreign-key column referencing `table`.
    pub fn open_foreign_key(
        self,
        name: &str,
        table: &str,
        domain: Arc<Domain>,
        codes: Vec<u32>,
    ) -> Self {
        self.column(AttributeDef::open_foreign_key(name, table), domain, codes)
    }

    /// Adds the target column.
    pub fn target(self, name: &str, domain: Arc<Domain>, codes: Vec<u32>) -> Self {
        self.column(AttributeDef::target(name), domain, codes)
    }

    /// Validates and builds the table.
    pub fn build(self) -> Result<Table> {
        let schema = Schema::new(&self.name, self.defs)?;
        Table::new(self.name, schema, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(n: usize) -> Arc<Domain> {
        Domain::indexed("D", n).shared()
    }

    fn sample() -> Table {
        TableBuilder::new("S")
            .primary_key("sid", dom(4), vec![0, 1, 2, 3])
            .target("y", dom(2), vec![0, 1, 1, 0])
            .feature("x", dom(3), vec![2, 1, 0, 2])
            .foreign_key("fk", "R", dom(2), vec![0, 1, 0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_validates() {
        let t = sample();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.row(2), vec![2, 1, 0, 0]);
        assert_eq!(t.column_by_name("x").unwrap().codes(), &[2, 1, 0, 2]);
    }

    #[test]
    fn length_mismatch_detected() {
        let err = TableBuilder::new("T")
            .feature("a", dom(2), vec![0, 1])
            .feature("b", dom(2), vec![0])
            .build()
            .unwrap_err();
        assert!(matches!(err, RelationalError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn out_of_domain_detected() {
        let err = TableBuilder::new("T")
            .feature("a", dom(2), vec![0, 5])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            RelationalError::CodeOutOfDomain { code: 5, .. }
        ));
    }

    #[test]
    fn duplicate_pk_value_detected() {
        let err = TableBuilder::new("T")
            .primary_key("id", dom(3), vec![0, 0])
            .build()
            .unwrap_err();
        assert!(matches!(err, RelationalError::PrimaryKeyNotUnique { .. }));
    }

    #[test]
    fn project_keeps_roles_and_order() {
        let t = sample();
        let p = t.project(&["fk", "y"]).unwrap();
        assert_eq!(p.schema().len(), 2);
        assert!(p.schema().attributes()[0].role.is_foreign_key());
        assert_eq!(p.schema().target(), Some(1));
    }

    #[test]
    fn project_unknown_fails() {
        let t = sample();
        assert!(matches!(
            t.project(&["nope"]).unwrap_err(),
            RelationalError::UnknownAttribute { .. }
        ));
    }

    #[test]
    fn drop_attributes_removes() {
        let t = sample();
        let d = t.drop_attributes(&["x"]).unwrap();
        assert_eq!(d.schema().len(), 3);
        assert!(d.schema().index_of("x").is_none());
        assert!(d.drop_attributes(&["ghost"]).is_err());
    }

    #[test]
    fn select_rows_subsets() {
        let t = sample();
        let s = t.select_rows(&[3, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), t.row(3));
        assert_eq!(s.row(1), t.row(0));
    }

    #[test]
    fn target_column_found() {
        let t = sample();
        assert_eq!(t.target_column().unwrap().codes(), &[0, 1, 1, 0]);
    }
}
