//! Star decomposition from functional dependencies (appendix C).
//!
//! Corollary C.1 argues via the standard BCNF construction: "features
//! that occur on the right-hand side of an FD will occur in a separate
//! table whose key will be the features on the left-hand side of that
//! FD", with a KFK dependency from the main table to each new table.
//! This module implements that construction for the star-shaped case the
//! paper studies: every determinant is a single attribute that is not
//! itself dependent on anything (acyclic, one level).
//!
//! Decomposing a denormalized table with the FDs `FK_i -> X_Ri` recovers
//! exactly the normalized schema the join produced — the round-trip the
//! tests check — and turns an analyst's single wide CSV back into the
//! shape the decision rules reason over.

use std::collections::HashMap;

use crate::catalog::{AttributeTable, StarSchema};
use crate::column::Column;
use crate::error::{RelationalError, Result};
use crate::fd::{is_acyclic, FunctionalDependency};
use crate::schema::{AttributeDef, Role, Schema};
use crate::table::Table;

/// Decomposes a single (denormalized) table into a [`StarSchema`] using
/// the given FDs, one attribute table per FD.
///
/// Requirements, checked up front:
/// * the FD set is acyclic (Def C.1) and every FD holds in the instance;
/// * every determinant is a **single** attribute of `table` that appears
///   in no dependent set (star shape, not snowflake);
/// * dependent sets are pairwise disjoint and never include the target
///   or a determinant.
///
/// The determinant attribute stays in the main table, re-roled as a
/// closed-domain foreign key; each dependent attribute moves to the new
/// attribute table keyed by the determinant.
pub fn decompose_star(table: &Table, fds: &[FunctionalDependency]) -> Result<StarSchema> {
    if !is_acyclic(fds) {
        return Err(RelationalError::Decomposition {
            reason: "FD set must be acyclic (Def C.1)".into(),
        });
    }

    // Validate shape.
    let mut dependents_seen: Vec<&str> = Vec::new();
    let mut determinants: Vec<&str> = Vec::new();
    for fd in fds {
        if fd.determinant.len() != 1 {
            return Err(RelationalError::Decomposition {
                reason: format!(
                    "star decomposition needs single-attribute determinants, got {:?}",
                    fd.determinant
                ),
            });
        }
        determinants.push(&fd.determinant[0]);
        for d in &fd.dependents {
            if dependents_seen.contains(&d.as_str()) {
                return Err(RelationalError::DuplicateAttribute {
                    table: table.name().to_string(),
                    attribute: d.clone(),
                });
            }
            dependents_seen.push(d);
        }
    }
    for det in &determinants {
        if dependents_seen.contains(det) {
            return Err(RelationalError::Decomposition {
                reason: format!("attribute '{det}' is both determinant and dependent (snowflake)"),
            });
        }
    }
    if let Some(target) = table.schema().target() {
        let tname = &table.schema().attributes()[target].name;
        if dependents_seen.contains(&tname.as_str()) {
            return Err(RelationalError::Decomposition {
                reason: "the target cannot be moved to an attribute table".into(),
            });
        }
    }
    for fd in fds {
        if !fd.holds_in(table)? {
            return Err(RelationalError::Decomposition {
                reason: format!(
                    "FD {:?} -> {:?} does not hold in '{}'",
                    fd.determinant,
                    fd.dependents,
                    table.name()
                ),
            });
        }
    }

    // Build one attribute table per FD.
    let mut attr_tables = Vec::with_capacity(fds.len());
    for fd in fds {
        let det = &fd.determinant[0];
        let det_col = table.column_by_name(det)?;
        let dep_cols: Vec<&Column> = fd
            .dependents
            .iter()
            .map(|d| table.column_by_name(d))
            .collect::<Result<_>>()?;

        // Distinct determinant codes, first-appearance order.
        let mut row_of: HashMap<u32, u32> = HashMap::new();
        let mut pk_codes: Vec<u32> = Vec::new();
        let mut dep_codes: Vec<Vec<u32>> = vec![Vec::new(); dep_cols.len()];
        for row in 0..table.n_rows() {
            let code = det_col.get(row);
            if let std::collections::hash_map::Entry::Vacant(e) = row_of.entry(code) {
                e.insert(pk_codes.len() as u32);
                pk_codes.push(code);
                for (out, col) in dep_codes.iter_mut().zip(&dep_cols) {
                    out.push(col.get(row));
                }
            }
        }

        let attr_name = format!("{det}_dim");
        let mut defs = vec![AttributeDef::primary_key(det)];
        let mut cols = vec![Column::new_unchecked(det_col.domain().clone(), pk_codes)];
        for (d, codes) in fd.dependents.iter().zip(dep_codes) {
            let src = table.column_by_name(d)?;
            defs.push(AttributeDef::feature(d));
            cols.push(Column::new_unchecked(src.domain().clone(), codes));
        }
        let schema = Schema::new(&attr_name, defs)?;
        attr_tables.push(AttributeTable {
            fk: det.clone(),
            table: Table::new(attr_name, schema, cols)?,
        });
    }

    // Main table: drop dependents, re-role determinants as FKs.
    let mut defs = Vec::new();
    let mut cols = Vec::new();
    for (def, col) in table.schema().attributes().iter().zip(table.columns()) {
        if dependents_seen.contains(&def.name.as_str()) {
            continue;
        }
        let def = if determinants.contains(&def.name.as_str()) {
            AttributeDef::foreign_key(&def.name, format!("{}_dim", def.name))
        } else {
            def.clone()
        };
        defs.push(def);
        cols.push(col.clone());
    }
    let main = Table::new(
        table.name().to_string(),
        Schema::new(table.name(), defs)?,
        cols,
    )?;

    StarSchema::new(main, attr_tables)
}

/// Infers single-determinant FDs `candidate -> dependents` from an
/// instance: for each candidate attribute (feature or FK role), finds
/// every other feature it functionally determines. This is the
/// instance-level discovery step an analyst would run on a wide CSV
/// before calling [`decompose_star`]; the paper's schema-first setting
/// makes the FDs known, but imported data often doesn't declare them.
///
/// Only attributes with at least `min_distinct` distinct values are
/// considered determinants (a near-constant column trivially "determines"
/// nothing useful), and the target/primary key are never dependents.
///
/// The result is canonical regardless of attribute order: dependents are
/// sorted and deduplicated within each FD, and the FDs themselves are
/// ordered by determinant name, so downstream decomposition is stable
/// under column permutations of the input table.
pub fn infer_single_fds(table: &Table, min_distinct: usize) -> Vec<FunctionalDependency> {
    let schema = table.schema();
    let candidates: Vec<usize> = schema
        .attributes()
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a.role, Role::Feature | Role::ForeignKey { .. }))
        .map(|(i, _)| i)
        .collect();
    let mut fds = Vec::new();
    for &det in &candidates {
        let det_col = table.column(det);
        if det_col.distinct_count() < min_distinct {
            continue;
        }
        let mut dependents = Vec::new();
        for &dep in &candidates {
            if dep == det {
                continue;
            }
            // dep must not have more distinct values than det (necessary
            // condition) — cheap pre-check before the full scan.
            if table.column(dep).distinct_count() > det_col.distinct_count() {
                continue;
            }
            let fd = FunctionalDependency::new(
                &[&schema.attributes()[det].name],
                &[&schema.attributes()[dep].name],
            );
            if fd.holds_in(table).unwrap_or(false) {
                dependents.push(schema.attributes()[dep].name.clone());
            }
        }
        if !dependents.is_empty() {
            dependents.sort();
            dependents.dedup();
            fds.push(FunctionalDependency {
                determinant: vec![schema.attributes()[det].name.clone()],
                dependents,
            });
        }
    }
    fds.sort_by(|a, b| a.determinant.cmp(&b.determinant));
    fds
}

/// Greedily selects a maximal star-compatible subset of the given FDs:
/// single-attribute determinants, pairwise-disjoint dependents, no
/// attribute both determinant and dependent. FDs with more dependents
/// win conflicts (they normalize more columns away); ties break on
/// determinant name for determinism.
///
/// Inferred FD sets (e.g. from [`infer_single_fds`]) routinely overlap —
/// two keys can each determine a shared column — and [`decompose_star`]
/// rejects such sets; this picks the subset to keep. Duplicate
/// determinants are collapsed (the largest claim wins) and the selection
/// is returned ordered by determinant name, so the output is canonical
/// regardless of the order candidates were supplied in.
pub fn select_compatible_fds(fds: &[FunctionalDependency]) -> Vec<FunctionalDependency> {
    let mut candidates: Vec<&FunctionalDependency> =
        fds.iter().filter(|fd| fd.determinant.len() == 1).collect();
    candidates.sort_by(|a, b| {
        b.dependents
            .len()
            .cmp(&a.dependents.len())
            .then_with(|| a.determinant[0].cmp(&b.determinant[0]))
    });
    let mut taken_dependents: Vec<String> = Vec::new();
    let mut taken_determinants: Vec<String> = Vec::new();
    let mut out = Vec::new();
    for fd in candidates {
        let det = &fd.determinant[0];
        if taken_dependents.contains(det) {
            continue; // would become a snowflake level
        }
        if taken_determinants.contains(det) {
            continue; // duplicate determinant: an earlier, larger claim won
        }
        let mut clean_deps: Vec<String> = fd
            .dependents
            .iter()
            .filter(|d| {
                !taken_dependents.contains(d) && !taken_determinants.contains(d) && *d != det
            })
            .cloned()
            .collect();
        if clean_deps.is_empty() {
            continue;
        }
        clean_deps.sort();
        taken_determinants.push(det.clone());
        taken_dependents.extend(clean_deps.iter().cloned());
        out.push(FunctionalDependency {
            determinant: fd.determinant.clone(),
            dependents: clean_deps,
        });
    }
    out.sort_by(|a, b| a.determinant.cmp(&b.determinant));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::join::kfk_join;
    use crate::table::TableBuilder;

    /// A denormalized table where `emp -> (country, revenue)`.
    fn wide() -> Table {
        let emp = Domain::indexed("emp", 3).shared();
        TableBuilder::new("T")
            .target("y", Domain::boolean("y").shared(), vec![0, 1, 0, 1, 1, 0])
            .feature(
                "age",
                Domain::indexed("age", 4).shared(),
                vec![0, 1, 2, 3, 0, 1],
            )
            .feature("emp", emp, vec![0, 1, 2, 0, 1, 2])
            .feature(
                "country",
                Domain::indexed("country", 2).shared(),
                vec![0, 1, 1, 0, 1, 1],
            )
            .feature(
                "revenue",
                Domain::indexed("revenue", 5).shared(),
                vec![4, 2, 0, 4, 2, 0],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn decomposes_and_rejoins_losslessly() {
        let t = wide();
        let fds = vec![FunctionalDependency::new(&["emp"], &["country", "revenue"])];
        let star = decompose_star(&t, &fds).unwrap();
        assert_eq!(star.k(), 1);
        assert_eq!(star.attributes()[0].n_rows(), 3);
        assert_eq!(star.d_s(), 1); // age stays; emp became a FK
                                   // Re-joining recovers the original columns.
        let rejoined = kfk_join(star.entity(), "emp", &star.attributes()[0].table).unwrap();
        for name in ["y", "age", "emp", "country", "revenue"] {
            assert_eq!(
                rejoined.column_by_name(name).unwrap().codes(),
                t.column_by_name(name).unwrap().codes(),
                "column {name} not preserved"
            );
        }
    }

    #[test]
    fn violated_fd_rejected() {
        let t = wide();
        let fds = vec![FunctionalDependency::new(&["emp"], &["age"])];
        assert!(decompose_star(&t, &fds).is_err());
    }

    #[test]
    fn cyclic_fds_rejected() {
        let t = wide();
        let fds = vec![
            FunctionalDependency::new(&["emp"], &["country"]),
            FunctionalDependency::new(&["country"], &["emp"]),
        ];
        assert!(decompose_star(&t, &fds).is_err());
    }

    #[test]
    fn snowflake_shape_rejected() {
        let t = wide();
        // country is dependent of emp AND determinant of revenue.
        let fds = vec![
            FunctionalDependency::new(&["emp"], &["country"]),
            FunctionalDependency::new(&["country"], &["revenue"]),
        ];
        assert!(decompose_star(&t, &fds).is_err());
    }

    #[test]
    fn overlapping_dependents_rejected() {
        let t = wide();
        let fds = vec![
            FunctionalDependency::new(&["emp"], &["country"]),
            FunctionalDependency::new(&["age"], &["country"]),
        ];
        assert!(decompose_star(&t, &fds).is_err());
    }

    #[test]
    fn target_cannot_move() {
        let emp = Domain::indexed("emp", 2).shared();
        let t = TableBuilder::new("T")
            .target("y", Domain::boolean("y").shared(), vec![0, 1, 0, 1])
            .feature("emp", emp, vec![0, 1, 0, 1])
            .build()
            .unwrap();
        let fds = vec![FunctionalDependency::new(&["emp"], &["y"])];
        assert!(decompose_star(&t, &fds).is_err());
    }

    #[test]
    fn infer_discovers_planted_fds() {
        let t = wide();
        let fds = infer_single_fds(&t, 2);
        let emp_fd = fds
            .iter()
            .find(|f| f.determinant == vec!["emp".to_string()])
            .expect("emp FD discovered");
        assert!(emp_fd.dependents.contains(&"country".to_string()));
        assert!(emp_fd.dependents.contains(&"revenue".to_string()));
        assert!(!emp_fd.dependents.contains(&"age".to_string()));
        assert!(!emp_fd.dependents.contains(&"y".to_string()));
    }

    #[test]
    fn inference_is_column_order_invariant() {
        // The same instance with its feature columns permuted must yield
        // byte-identical FDs: dependents sorted, FDs ordered by determinant.
        let t = wide();
        let emp = Domain::indexed("emp", 3).shared();
        let permuted = TableBuilder::new("T")
            .feature(
                "revenue",
                Domain::indexed("revenue", 5).shared(),
                vec![4, 2, 0, 4, 2, 0],
            )
            .feature(
                "country",
                Domain::indexed("country", 2).shared(),
                vec![0, 1, 1, 0, 1, 1],
            )
            .target("y", Domain::boolean("y").shared(), vec![0, 1, 0, 1, 1, 0])
            .feature("emp", emp, vec![0, 1, 2, 0, 1, 2])
            .feature(
                "age",
                Domain::indexed("age", 4).shared(),
                vec![0, 1, 2, 3, 0, 1],
            )
            .build()
            .unwrap();
        let a = infer_single_fds(&t, 2);
        let b = infer_single_fds(&permuted, 2);
        assert_eq!(a, b);
        for fd in &a {
            let mut sorted = fd.dependents.clone();
            sorted.sort();
            assert_eq!(fd.dependents, sorted, "dependents not canonically ordered");
        }
        // And the stability propagates through selection + decomposition.
        let star_a = decompose_star(&t, &select_compatible_fds(&a)).unwrap();
        let star_b = decompose_star(&permuted, &select_compatible_fds(&b)).unwrap();
        assert_eq!(star_a.k(), star_b.k());
        for i in 0..star_a.k() {
            assert_eq!(star_a.attributes()[i].fk, star_b.attributes()[i].fk);
            assert_eq!(
                star_a.attributes()[i].feature_names(),
                star_b.attributes()[i].feature_names()
            );
        }
    }

    #[test]
    fn infer_then_decompose_roundtrip() {
        let t = wide();
        // Keep only the emp FD (inference may also find accidental FDs on
        // tiny data; a real pipeline would curate).
        let fds: Vec<_> = infer_single_fds(&t, 3)
            .into_iter()
            .filter(|f| f.determinant == vec!["emp".to_string()])
            .collect();
        assert_eq!(fds.len(), 1);
        let star = decompose_star(&t, &fds).unwrap();
        assert!(star.fk_closed(0));
        assert_eq!(
            star.attributes()[0].feature_names(),
            vec!["country", "revenue"]
        );
    }
}

#[cfg(test)]
mod select_tests {
    use super::*;

    fn fd(det: &str, deps: &[&str]) -> FunctionalDependency {
        FunctionalDependency::new(&[det], deps)
    }

    #[test]
    fn disjoint_fds_all_kept() {
        let fds = vec![fd("u", &["age", "country"]), fd("b", &["year"])];
        let sel = select_compatible_fds(&fds);
        assert_eq!(sel.len(), 2);
        // Canonical order: by determinant name, not by claim size.
        assert_eq!(sel[0].determinant, vec!["b".to_string()]);
        assert_eq!(sel[1].determinant, vec!["u".to_string()]);
    }

    #[test]
    fn selection_is_input_order_invariant() {
        let a = vec![
            fd("u", &["age", "country", "shared"]),
            fd("b", &["shared", "x"]),
        ];
        let b = vec![
            fd("b", &["shared", "x"]),
            fd("u", &["age", "country", "shared"]),
        ];
        assert_eq!(select_compatible_fds(&a), select_compatible_fds(&b));
    }

    #[test]
    fn duplicate_determinants_collapse_to_largest_claim() {
        let fds = vec![fd("u", &["age"]), fd("u", &["country", "revenue"])];
        let sel = select_compatible_fds(&fds);
        assert_eq!(sel.len(), 1);
        assert_eq!(
            sel[0].dependents,
            vec!["country".to_string(), "revenue".to_string()]
        );
    }

    #[test]
    fn overlapping_dependents_resolved_by_size() {
        // Both determine "shared"; u has more dependents so it wins it.
        let fds = vec![
            fd("u", &["age", "country", "shared"]),
            fd("b", &["shared", "x"]),
        ];
        let sel = select_compatible_fds(&fds);
        assert_eq!(sel.len(), 2);
        let u = sel.iter().find(|f| f.determinant[0] == "u").unwrap();
        let b = sel.iter().find(|f| f.determinant[0] == "b").unwrap();
        assert!(u.dependents.contains(&"shared".to_string()));
        assert_eq!(b.dependents, vec!["x".to_string()]);
    }

    #[test]
    fn equal_size_conflicts_break_on_name() {
        // Tie on dependent count: "b" sorts before "u" and claims the
        // shared column deterministically.
        let fds = vec![fd("u", &["age", "shared"]), fd("b", &["shared", "x"])];
        let sel = select_compatible_fds(&fds);
        let b = sel.iter().find(|f| f.determinant[0] == "b").unwrap();
        let u = sel.iter().find(|f| f.determinant[0] == "u").unwrap();
        assert!(b.dependents.contains(&"shared".to_string()));
        assert_eq!(u.dependents, vec!["age".to_string()]);
    }

    #[test]
    fn snowflake_chains_broken() {
        // a -> b and b -> c: keeping both would make b a level-2 key.
        let fds = vec![fd("a", &["b", "z"]), fd("b", &["c"])];
        let sel = select_compatible_fds(&fds);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].determinant, vec!["a".to_string()]);
    }

    #[test]
    fn determinant_never_own_dependent() {
        let fds = vec![fd("a", &["a", "b"])];
        let sel = select_compatible_fds(&fds);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].dependents, vec!["b".to_string()]);
    }

    #[test]
    fn composite_determinants_skipped() {
        let fds = vec![FunctionalDependency::new(&["a", "b"], &["c"])];
        assert!(select_compatible_fds(&fds).is_empty());
    }

    #[test]
    fn selected_set_decomposes() {
        // End-to-end: overlapping inferred FDs -> selection -> decompose.
        let emp = Domain::indexed("emp", 3).shared();
        let t = TableBuilder::new("T")
            .target("y", Domain::boolean("y").shared(), vec![0, 1, 0, 1, 1, 0])
            .feature("emp", emp, vec![0, 1, 2, 0, 1, 2])
            .feature(
                "country",
                Domain::indexed("country", 2).shared(),
                vec![0, 1, 1, 0, 1, 1],
            )
            .feature(
                "revenue",
                Domain::indexed("revenue", 5).shared(),
                vec![4, 2, 0, 4, 2, 0],
            )
            .build()
            .unwrap();
        let inferred = infer_single_fds(&t, 2);
        let compatible = select_compatible_fds(&inferred);
        assert!(!compatible.is_empty());
        let star = decompose_star(&t, &compatible).expect("selection is star-compatible");
        assert!(star.k() >= 1);
    }

    use crate::domain::Domain;
    use crate::table::TableBuilder;
}
