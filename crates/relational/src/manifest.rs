//! Schema manifests: loading a normalized multi-table dataset from CSV
//! files plus a small declarative description.
//!
//! The paper's input is a star schema whose roles (target, foreign keys,
//! closed domains) live in the analyst's head; a manifest writes them
//! down. The format is line-based:
//!
//! ```text
//! # churn.manifest — comments and blank lines are ignored
//! entity customers.csv
//! target   Churn
//! feature  Gender
//! numeric  Age 8
//! fk       EmployerID employers.csv closed
//!
//! table employers.csv
//! key      EmployerID
//! feature  Country
//! numeric  Revenue 8
//! ```
//!
//! * `entity <file>` starts the entity-table section; `table <file>`
//!   starts an attribute-table section (one per attribute table);
//! * within a section: `target <col>`, `key <col>`, `feature <col>`,
//!   `numeric <col> <bins>`, `skip <col>`;
//! * `fk <col> <file> closed|open` declares a foreign key of the entity
//!   referencing the attribute table loaded from `<file>`.
//!
//! Foreign keys and the referenced primary keys are matched **by label**:
//! the FK column's string values must be a subset of the key column's,
//! and both are recoded onto the key's domain.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::catalog::{AttributeTable, StarSchema};
use crate::column::Column;
use crate::csv::{read_csv, ColumnSpec};
use crate::error::{RelationalError, Result};
use crate::schema::{AttributeDef, Schema};
use crate::table::Table;

/// One column directive inside a manifest section.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    Target(String),
    Key(String),
    Feature(String),
    Numeric(String, usize),
    Skip(String),
    Fk {
        column: String,
        file: String,
        closed: bool,
    },
}

/// A parsed manifest section.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Section {
    file: String,
    is_entity: bool,
    directives: Vec<Directive>,
}

/// A parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    sections: Vec<Section>,
}

fn parse_error(line_no: usize, msg: impl Into<String>) -> RelationalError {
    RelationalError::Manifest {
        reason: format!("line {line_no}: {}", msg.into()),
    }
}

impl Manifest {
    /// Parses manifest text.
    pub fn parse(text: &str) -> Result<Manifest> {
        let mut sections: Vec<Section> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().expect("non-empty line");
            let args: Vec<&str> = parts.collect();
            match keyword {
                "entity" | "table" => {
                    let file = args
                        .first()
                        .ok_or_else(|| parse_error(line_no, "missing file name"))?;
                    sections.push(Section {
                        file: file.to_string(),
                        is_entity: keyword == "entity",
                        directives: Vec::new(),
                    });
                }
                _ => {
                    let section = sections
                        .last_mut()
                        .ok_or_else(|| parse_error(line_no, "directive before any section"))?;
                    let need = |n: usize| -> Result<()> {
                        if args.len() < n {
                            Err(parse_error(
                                line_no,
                                format!("'{keyword}' needs {n} argument(s)"),
                            ))
                        } else {
                            Ok(())
                        }
                    };
                    let d = match keyword {
                        "target" => {
                            need(1)?;
                            Directive::Target(args[0].to_string())
                        }
                        "key" => {
                            need(1)?;
                            Directive::Key(args[0].to_string())
                        }
                        "feature" => {
                            need(1)?;
                            Directive::Feature(args[0].to_string())
                        }
                        "skip" => {
                            need(1)?;
                            Directive::Skip(args[0].to_string())
                        }
                        "numeric" => {
                            need(2)?;
                            let bins: usize = args[1].parse().map_err(|_| {
                                parse_error(line_no, format!("bad bin count '{}'", args[1]))
                            })?;
                            Directive::Numeric(args[0].to_string(), bins)
                        }
                        "fk" => {
                            need(3)?;
                            let closed = match args[2] {
                                "closed" => true,
                                "open" => false,
                                other => {
                                    return Err(parse_error(
                                        line_no,
                                        format!("fk needs 'closed' or 'open', got '{other}'"),
                                    ))
                                }
                            };
                            Directive::Fk {
                                column: args[0].to_string(),
                                file: args[1].to_string(),
                                closed,
                            }
                        }
                        other => {
                            return Err(parse_error(line_no, format!("unknown keyword '{other}'")))
                        }
                    };
                    section.directives.push(d);
                }
            }
        }
        let entities = sections.iter().filter(|s| s.is_entity).count();
        if entities != 1 {
            return Err(RelationalError::Manifest {
                reason: format!("must declare exactly one entity section, found {entities}"),
            });
        }
        Ok(Manifest { sections })
    }

    /// Loads the star schema, resolving file names relative to `base`
    /// through `read_file` (injected so tests can run without a
    /// filesystem).
    pub fn load_with<F>(&self, base: &Path, mut read_file: F) -> Result<StarSchema>
    where
        F: FnMut(&Path) -> std::io::Result<String>,
    {
        let mut read = |file: &str| -> Result<String> {
            let path: PathBuf = base.join(file);
            read_file(&path).map_err(|e| RelationalError::Manifest {
                reason: format!("cannot read {}: {e}", path.display()),
            })
        };

        // Load attribute tables first (keyed by file name) as raw nominal
        // tables; keys stay labelled domains for FK matching.
        let mut attr_tables: HashMap<String, (Table, String)> = HashMap::new(); // file -> (table, key col)
        for section in self.sections.iter().filter(|s| !s.is_entity) {
            let text = read(&section.file)?;
            let specs = section_specs(section, None)?;
            let name = section
                .file
                .rsplit('/')
                .next()
                .unwrap_or(&section.file)
                .trim_end_matches(".csv")
                .to_string();
            let table = read_csv(&name, &text, &to_spec_refs(&specs), ',')?;
            let key = section
                .directives
                .iter()
                .find_map(|d| match d {
                    Directive::Key(k) => Some(k.clone()),
                    _ => None,
                })
                .ok_or_else(|| RelationalError::Manifest {
                    reason: format!("table section '{}' has no key directive", section.file),
                })?;
            attr_tables.insert(section.file.clone(), (table, key));
        }

        // Load the entity; FK columns come in as plain nominal features
        // first, then get recoded onto the referenced key domains.
        let entity_section = self
            .sections
            .iter()
            .find(|s| s.is_entity)
            .expect("validated in parse");
        let text = read(&entity_section.file)?;
        let specs = section_specs(entity_section, Some(&attr_tables))?;
        let entity_name = entity_section
            .file
            .rsplit('/')
            .next()
            .unwrap_or(&entity_section.file)
            .trim_end_matches(".csv")
            .to_string();
        let raw_entity = read_csv(&entity_name, &text, &to_spec_refs(&specs), ',')?;

        // Recode FK columns by label onto the referenced key domains.
        let mut defs: Vec<AttributeDef> = Vec::new();
        let mut cols: Vec<Column> = Vec::new();
        let mut attributes: Vec<AttributeTable> = Vec::new();
        for (def, col) in raw_entity
            .schema()
            .attributes()
            .iter()
            .zip(raw_entity.columns())
        {
            let fk_directive = entity_section.directives.iter().find_map(|d| match d {
                Directive::Fk {
                    column,
                    file,
                    closed,
                } if column == &def.name => Some((file.clone(), *closed)),
                _ => None,
            });
            match fk_directive {
                None => {
                    defs.push(def.clone());
                    cols.push(col.clone());
                }
                Some((file, closed)) => {
                    let (attr_table, key_col) = attr_tables
                        .get(&file)
                        .ok_or_else(|| RelationalError::UnknownTable { name: file.clone() })?;
                    let key = attr_table.column_by_name(key_col)?;
                    // Map entity FK labels -> key codes via a one-shot
                    // index (code_of is a linear scan; per-row use would
                    // make the load O(n_S * n_R)).
                    let key_code_of: HashMap<String, u32> = key
                        .codes()
                        .iter()
                        .map(|&c| (key.domain().label(c).into_owned(), c))
                        .collect();
                    let mut recoded = Vec::with_capacity(col.len());
                    for row in 0..col.len() {
                        let lbl = col.domain().label(col.get(row)).into_owned();
                        let code = key_code_of.get(&lbl).copied().ok_or_else(|| {
                            RelationalError::Manifest {
                                reason: format!(
                                    "entity '{}' row {}: foreign key '{}' value '{}' has no row in '{}'",
                                    entity_name,
                                    row + 2, // 1-based, after the header line
                                    def.name,
                                    lbl,
                                    attr_table.name()
                                ),
                            }
                        })?;
                        recoded.push(code);
                    }
                    let attr_def = if closed {
                        AttributeDef::foreign_key(&def.name, attr_table.name())
                    } else {
                        AttributeDef::open_foreign_key(&def.name, attr_table.name())
                    };
                    defs.push(attr_def);
                    cols.push(Column::new_unchecked(key.domain().clone(), recoded));
                    attributes.push(AttributeTable {
                        fk: def.name.clone(),
                        table: promote_key(attr_table, key_col)?,
                    });
                }
            }
        }
        let entity = Table::new(entity_name.clone(), Schema::new(&entity_name, defs)?, cols)?;
        StarSchema::new(entity, attributes)
    }

    /// Loads from the real filesystem, resolving relative to `base`.
    pub fn load(&self, base: &Path) -> Result<StarSchema> {
        self.load_with(base, |p: &Path| std::fs::read_to_string(p))
    }
}

/// Re-roles the named column as the table's primary key (CSV import
/// reads all columns by spec; the attribute-table key arrives as a
/// `Nominal(primary_key)` only if the spec said so — it did, so this
/// simply validates and returns a clone).
fn promote_key(table: &Table, key_col: &str) -> Result<Table> {
    if table.schema().primary_key() != table.schema().index_of(key_col) {
        return Err(RelationalError::UnknownAttribute {
            table: table.name().to_string(),
            attribute: key_col.to_string(),
        });
    }
    Ok(table.clone())
}

fn section_specs(
    section: &Section,
    _attr: Option<&HashMap<String, (Table, String)>>,
) -> Result<Vec<(String, ColumnSpec)>> {
    let mut specs = Vec::new();
    for d in &section.directives {
        let (name, spec) = match d {
            Directive::Target(c) => (c.clone(), ColumnSpec::target(c)),
            Directive::Key(c) => (c.clone(), ColumnSpec::primary_key(c)),
            Directive::Feature(c) => (c.clone(), ColumnSpec::feature(c)),
            Directive::Numeric(c, bins) => (c.clone(), ColumnSpec::numeric_feature(c, *bins)),
            Directive::Skip(c) => (c.clone(), ColumnSpec::Skip),
            // FKs are loaded as plain nominal features, then recoded.
            Directive::Fk { column, .. } => (column.clone(), ColumnSpec::feature(column)),
        };
        specs.push((name, spec));
    }
    Ok(specs)
}

fn to_spec_refs(specs: &[(String, ColumnSpec)]) -> Vec<(&str, ColumnSpec)> {
    specs.iter().map(|(n, s)| (n.as_str(), s.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = "\
# churn example
entity customers.csv
target   Churn
feature  Gender
numeric  Age 4
fk       EmployerID employers.csv closed

table employers.csv
key      EmployerID
feature  Country
numeric  Revenue 2
";

    fn files() -> HashMap<PathBuf, String> {
        let mut m = HashMap::new();
        m.insert(
            PathBuf::from("/data/customers.csv"),
            "Churn,Gender,Age,EmployerID\nyes,F,30,e2\nno,M,40,e1\nno,F,50,e2\nyes,M,25,e1\n"
                .to_string(),
        );
        m.insert(
            PathBuf::from("/data/employers.csv"),
            "EmployerID,Country,Revenue\ne1,NZ,10\ne2,IN,90\n".to_string(),
        );
        m
    }

    fn load() -> StarSchema {
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let files = files();
        manifest
            .load_with(Path::new("/data"), |p| {
                files
                    .get(p)
                    .cloned()
                    .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
            })
            .unwrap()
    }

    #[test]
    fn loads_star_schema() {
        let star = load();
        assert_eq!(star.n_s(), 4);
        assert_eq!(star.k(), 1);
        assert!(star.fk_closed(0));
        assert_eq!(star.d_s(), 2); // Gender + binned Age
        assert_eq!(star.attributes()[0].n_rows(), 2);
        assert_eq!(star.n_classes(), Some(2));
    }

    #[test]
    fn fk_recoded_onto_key_domain() {
        let star = load();
        let fk = star.entity().column_by_name("EmployerID").unwrap();
        let key = star.attributes()[0]
            .table
            .column_by_name("EmployerID")
            .unwrap();
        assert_eq!(fk.domain().size(), key.domain().size());
        // Row 0 references e2 -> same label through the key domain.
        assert_eq!(fk.domain().label(fk.get(0)), "e2");
        // Join works end to end.
        let t = star.materialize_all().unwrap();
        let country = t.column_by_name("Country").unwrap();
        assert_eq!(country.domain().label(country.get(0)), "IN");
        assert_eq!(country.domain().label(country.get(1)), "NZ");
    }

    #[test]
    fn dangling_fk_label_is_error() {
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let mut files = files();
        files.insert(
            PathBuf::from("/data/customers.csv"),
            "Churn,Gender,Age,EmployerID\nyes,F,30,e99\n".to_string(),
        );
        let err = manifest
            .load_with(Path::new("/data"), |p| {
                files
                    .get(p)
                    .cloned()
                    .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
            })
            .unwrap_err();
        assert!(
            matches!(&err, RelationalError::Manifest { reason } if reason.contains("'e99'")),
            "{err}"
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "feature x\n"; // directive before section
        let err = Manifest::parse(bad).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let bad2 = "entity a.csv\nnumeric x notanumber\n";
        assert!(Manifest::parse(bad2)
            .unwrap_err()
            .to_string()
            .contains("line 2"));
        let bad3 = "entity a.csv\nfk c b.csv sideways\n";
        assert!(Manifest::parse(bad3)
            .unwrap_err()
            .to_string()
            .contains("closed"));
        let bad4 = "entity a.csv\nwhatever x\n";
        assert!(Manifest::parse(bad4)
            .unwrap_err()
            .to_string()
            .contains("unknown keyword"));
    }

    #[test]
    fn exactly_one_entity_required() {
        assert!(Manifest::parse("table a.csv\nkey k\n").is_err());
        assert!(Manifest::parse("entity a.csv\nentity b.csv\n").is_err());
    }

    #[test]
    fn missing_file_reported() {
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let err = manifest
            .load_with(Path::new("/nope"), |_| {
                Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))
            })
            .unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn filesystem_load_roundtrip() {
        let dir = std::env::temp_dir().join("hamlet_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (p, content) in files() {
            std::fs::write(dir.join(p.file_name().unwrap()), content).unwrap();
        }
        let star = Manifest::parse(MANIFEST).unwrap().load(&dir).unwrap();
        assert_eq!(star.n_s(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
