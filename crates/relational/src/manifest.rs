//! Schema manifests: loading a normalized multi-table dataset from CSV
//! files plus a small declarative description.
//!
//! The paper's input is a star schema whose roles (target, foreign keys,
//! closed domains) live in the analyst's head; a manifest writes them
//! down. The format is line-based:
//!
//! ```text
//! # churn.manifest — comments and blank lines are ignored
//! entity customers.csv
//! target   Churn
//! feature  Gender
//! numeric  Age 8
//! fk       EmployerID employers.csv closed
//!
//! table employers.csv
//! key      EmployerID
//! feature  Country
//! numeric  Revenue 8
//! ```
//!
//! * `entity <file>` starts the entity-table section; `table <file>`
//!   starts an attribute-table section (one per attribute table);
//! * within a section: `target <col>`, `key <col>`, `feature <col>`,
//!   `numeric <col> <bins>`, `skip <col>`;
//! * `fk <col> <file> closed|open` declares a foreign key of the entity
//!   referencing the attribute table loaded from `<file>`.
//!
//! Foreign keys and the referenced primary keys are matched **by label**:
//! the FK column's string values must be a subset of the key column's,
//! and both are recoded onto the key's domain.

use std::collections::{BTreeSet, HashMap};
use std::io::BufRead;
use std::path::{Path, PathBuf};

use crate::availability::{TablePolicy, TableSubstitution, TABLE_OPEN_FAILPOINT};
use crate::catalog::{AttributeTable, StarSchema};
use crate::coldstart::with_others_record;
use crate::column::Column;
use crate::csv::{ColumnSpec, DirtyPolicy, QuarantinedRow};
use crate::error::{RelationalError, Result};
use crate::ingest::{read_csv_chunked, IngestOptions};
use crate::join::FkPolicy;
use crate::schema::{AttributeDef, Schema};
use crate::table::Table;

/// Degradation policy for a manifest load: what to do with dirty CSV rows
/// and with entity rows whose foreign keys reference no attribute row.
///
/// The default (`Abort`/`Abort`) reproduces the strict behaviour of
/// [`Manifest::load`] exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadPolicy {
    /// Row-level CSV faults (ragged rows, bad numerics, duplicate keys).
    pub on_dirty: DirtyPolicy,
    /// Entity rows whose FK label has no row in the referenced table.
    pub on_dangling_fk: FkPolicy,
    /// Declared attribute tables that cannot be opened or read.
    pub on_missing_table: TablePolicy,
}

/// Quarantine report for one table loaded leniently.
#[derive(Debug, Clone)]
pub struct TableQuarantine {
    /// Table name (file stem).
    pub table: String,
    /// Rows set aside, in input order.
    pub rows: Vec<QuarantinedRow>,
    /// Data rows seen in the file (clean + quarantined).
    pub total_rows: usize,
}

/// Result of a policy-driven manifest load: the star schema plus a full
/// account of every degradation that was applied.
#[derive(Debug, Clone)]
pub struct StarLoad {
    /// The loaded star schema.
    pub star: StarSchema,
    /// Per-table quarantine reports (empty under [`DirtyPolicy::Abort`]).
    pub quarantine: Vec<TableQuarantine>,
    /// Entity rows (0-based, post-quarantine) dropped for dangling FKs.
    pub dropped_rows: Vec<usize>,
    /// Entity rows (0-based, post-quarantine) remapped to `Others`.
    pub others_rows: Vec<usize>,
    /// Attribute tables replaced by FK-only surrogates (empty under
    /// [`TablePolicy::Require`]).
    pub substitutions: Vec<TableSubstitution>,
}

impl StarLoad {
    /// Whether any degradation (quarantine, drop, remap, substitution)
    /// was applied.
    pub fn degraded(&self) -> bool {
        !self.dropped_rows.is_empty()
            || !self.others_rows.is_empty()
            || !self.substitutions.is_empty()
            || self.quarantine.iter().any(|q| !q.rows.is_empty())
    }
}

/// One column directive inside a manifest section.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    Target(String),
    Key(String),
    Feature(String),
    Numeric(String, usize),
    Skip(String),
    Fk {
        column: String,
        file: String,
        closed: bool,
    },
}

/// A parsed manifest section.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Section {
    file: String,
    is_entity: bool,
    directives: Vec<Directive>,
}

/// A parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    sections: Vec<Section>,
}

fn parse_error(line_no: usize, msg: impl Into<String>) -> RelationalError {
    RelationalError::Manifest {
        reason: format!("line {line_no}: {}", msg.into()),
    }
}

impl Manifest {
    /// Parses manifest text.
    pub fn parse(text: &str) -> Result<Manifest> {
        let mut sections: Vec<Section> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().expect("non-empty line");
            let args: Vec<&str> = parts.collect();
            match keyword {
                "entity" | "table" => {
                    let file = args
                        .first()
                        .ok_or_else(|| parse_error(line_no, "missing file name"))?;
                    sections.push(Section {
                        file: file.to_string(),
                        is_entity: keyword == "entity",
                        directives: Vec::new(),
                    });
                }
                _ => {
                    let section = sections
                        .last_mut()
                        .ok_or_else(|| parse_error(line_no, "directive before any section"))?;
                    let need = |n: usize| -> Result<()> {
                        if args.len() < n {
                            Err(parse_error(
                                line_no,
                                format!("'{keyword}' needs {n} argument(s)"),
                            ))
                        } else {
                            Ok(())
                        }
                    };
                    let d = match keyword {
                        "target" => {
                            need(1)?;
                            Directive::Target(args[0].to_string())
                        }
                        "key" => {
                            need(1)?;
                            Directive::Key(args[0].to_string())
                        }
                        "feature" => {
                            need(1)?;
                            Directive::Feature(args[0].to_string())
                        }
                        "skip" => {
                            need(1)?;
                            Directive::Skip(args[0].to_string())
                        }
                        "numeric" => {
                            need(2)?;
                            let bins: usize = args[1].parse().map_err(|_| {
                                parse_error(line_no, format!("bad bin count '{}'", args[1]))
                            })?;
                            Directive::Numeric(args[0].to_string(), bins)
                        }
                        "fk" => {
                            need(3)?;
                            let closed = match args[2] {
                                "closed" => true,
                                "open" => false,
                                other => {
                                    return Err(parse_error(
                                        line_no,
                                        format!("fk needs 'closed' or 'open', got '{other}'"),
                                    ))
                                }
                            };
                            Directive::Fk {
                                column: args[0].to_string(),
                                file: args[1].to_string(),
                                closed,
                            }
                        }
                        other => {
                            return Err(parse_error(line_no, format!("unknown keyword '{other}'")))
                        }
                    };
                    section.directives.push(d);
                }
            }
        }
        let entities = sections.iter().filter(|s| s.is_entity).count();
        if entities != 1 {
            return Err(RelationalError::Manifest {
                reason: format!("must declare exactly one entity section, found {entities}"),
            });
        }
        Ok(Manifest { sections })
    }

    /// Loads the star schema, resolving file names relative to `base`
    /// through `read_file` (injected so tests can run without a
    /// filesystem). Strict: any dirty row or dangling FK is an error.
    pub fn load_with<F>(&self, base: &Path, read_file: F) -> Result<StarSchema>
    where
        F: FnMut(&Path) -> std::io::Result<String>,
    {
        self.load_with_policy(base, read_file, &LoadPolicy::default())
            .map(|load| load.star)
    }

    /// Loads under a policy from any in-memory string source — the
    /// legacy injection point, now a wrapper that feeds each string
    /// through the streaming chunked ingester.
    pub fn load_with_policy<F>(
        &self,
        base: &Path,
        mut read_file: F,
        policy: &LoadPolicy,
    ) -> Result<StarLoad>
    where
        F: FnMut(&Path) -> std::io::Result<String>,
    {
        self.load_from_source(
            base,
            &mut |path: &Path| {
                read_file(path)
                    .map(|s| Box::new(std::io::Cursor::new(s.into_bytes())) as Box<dyn BufRead>)
            },
            policy,
        )
    }

    /// Loads the star schema under a degradation policy, returning the
    /// schema together with a report of everything that was set aside,
    /// dropped, or remapped.
    ///
    /// With [`FkPolicy::DropRow`], entity rows whose FK label (in *any*
    /// FK column) has no referenced row are removed. With
    /// [`FkPolicy::MapToOthers`], the referenced attribute table is
    /// widened with an `Others` placeholder record (feature defaults =
    /// code 0, see [`with_others_record`]) and dangling rows map onto it.
    /// Row indices in the report are 0-based data rows *after* dirty-row
    /// quarantine.
    ///
    /// Each table streams through the chunked ingester
    /// ([`crate::ingest::read_csv_chunked`]); with `HAMLET_MEM_BUDGET_MB`
    /// set, the encode phase of every load spills chunks instead of
    /// growing past the budget.
    fn load_from_source(
        &self,
        base: &Path,
        open_file: &mut dyn FnMut(&Path) -> std::io::Result<Box<dyn BufRead>>,
        policy: &LoadPolicy,
    ) -> Result<StarLoad> {
        let ingest_opts = IngestOptions::from_env()?;
        let mut read = |file: &str| -> Result<Box<dyn BufRead>> {
            let path: PathBuf = base.join(file);
            hamlet_chaos::fail_at!("manifest.read")
                .and_then(|()| open_file(&path))
                .map_err(|e| RelationalError::Manifest {
                    reason: format!("cannot read {}: {e}", path.display()),
                })
        };
        let mut quarantine: Vec<TableQuarantine> = Vec::new();

        // A declared attribute table whose file could not be read under
        // `TablePolicy::AllowDegraded`: the manifest directives survive
        // (key + declared feature names) even though the data is gone.
        struct WithheldTable {
            key: String,
            features: Vec<String>,
            reason: String,
        }

        // Load attribute tables first (keyed by file name) as raw nominal
        // tables; keys stay labelled domains for FK matching.
        let mut attr_tables: HashMap<String, (Table, String)> = HashMap::new(); // file -> (table, key col)
        let mut withheld: HashMap<String, WithheldTable> = HashMap::new(); // file -> evidence
        for section in self.sections.iter().filter(|s| !s.is_entity) {
            let name = file_stem(&section.file);
            let key = section
                .directives
                .iter()
                .find_map(|d| match d {
                    Directive::Key(k) => Some(k.clone()),
                    _ => None,
                })
                .ok_or_else(|| RelationalError::Manifest {
                    reason: format!("table section '{}' has no key directive", section.file),
                })?;
            let reader = match hamlet_chaos::fail_at!(TABLE_OPEN_FAILPOINT)
                .map_err(|e| RelationalError::Manifest {
                    reason: format!("cannot read {}: {e}", base.join(&section.file).display()),
                })
                .and_then(|()| read(&section.file))
            {
                Ok(reader) => reader,
                Err(e) if policy.on_missing_table == TablePolicy::AllowDegraded => {
                    let features: Vec<String> = section
                        .directives
                        .iter()
                        .filter_map(|d| match d {
                            Directive::Feature(c) | Directive::Numeric(c, _) => Some(c.clone()),
                            _ => None,
                        })
                        .collect();
                    hamlet_obs::counter_add!("hamlet_degraded_tables_total", 1);
                    hamlet_obs::record_warning(format!(
                        "table '{name}': unreadable, loading degraded with FK-only surrogate \
                         ({} declared feature(s) absent): {e}",
                        features.len()
                    ));
                    withheld.insert(
                        section.file.clone(),
                        WithheldTable {
                            key,
                            features,
                            reason: e.to_string(),
                        },
                    );
                    continue;
                }
                Err(e) => return Err(e),
            };
            let specs = section_specs(section, None)?;
            let load = read_csv_chunked(
                &name,
                reader,
                &to_spec_refs(&specs),
                ',',
                policy.on_dirty,
                &ingest_opts,
            )?;
            if !load.quarantined.is_empty() {
                hamlet_obs::record_warning(format!(
                    "table '{name}': quarantined {} of {} rows during lenient load",
                    load.quarantined.len(),
                    load.total_rows
                ));
            }
            quarantine.push(TableQuarantine {
                table: name,
                rows: load.quarantined,
                total_rows: load.total_rows,
            });
            attr_tables.insert(section.file.clone(), (load.table.to_table()?, key));
        }

        // Load the entity; FK columns come in as plain nominal features
        // first, then get recoded onto the referenced key domains.
        let entity_section = self.sections.iter().find(|s| s.is_entity).ok_or_else(|| {
            RelationalError::Manifest {
                reason: "manifest has no entity section".to_string(),
            }
        })?;
        let reader = read(&entity_section.file)?;
        let specs = section_specs(entity_section, Some(&attr_tables))?;
        let entity_name = file_stem(&entity_section.file);
        let entity_load = read_csv_chunked(
            &entity_name,
            reader,
            &to_spec_refs(&specs),
            ',',
            policy.on_dirty,
            &ingest_opts,
        )?;
        if !entity_load.quarantined.is_empty() {
            hamlet_obs::record_warning(format!(
                "entity '{entity_name}': quarantined {} of {} rows during lenient load",
                entity_load.quarantined.len(),
                entity_load.total_rows
            ));
        }
        quarantine.push(TableQuarantine {
            table: entity_name.clone(),
            rows: entity_load.quarantined,
            total_rows: entity_load.total_rows,
        });
        let raw_entity = entity_load.table.to_table()?;

        // Recode FK columns by label onto the referenced key domains,
        // applying the dangling-FK policy per column.
        let mut defs: Vec<AttributeDef> = Vec::new();
        let mut cols: Vec<Column> = Vec::new();
        let mut attributes: Vec<AttributeTable> = Vec::new();
        let mut drop_set: BTreeSet<usize> = BTreeSet::new();
        let mut others_rows: Vec<usize> = Vec::new();
        let mut substitutions: Vec<TableSubstitution> = Vec::new();
        for (def, col) in raw_entity
            .schema()
            .attributes()
            .iter()
            .zip(raw_entity.columns())
        {
            let fk_directive = entity_section.directives.iter().find_map(|d| match d {
                Directive::Fk {
                    column,
                    file,
                    closed,
                } if column == &def.name => Some((file.clone(), *closed)),
                _ => None,
            });
            match fk_directive {
                None => {
                    defs.push(def.clone());
                    cols.push(col.clone());
                }
                Some((file, closed)) => {
                    if let Some(gone) = withheld.get(&file) {
                        // FK-only surrogate: a key-only table whose PK
                        // spans exactly the FK column's observed domain,
                        // so the FK codes pass through unrecoded and
                        // referential integrity holds by construction.
                        // Zero features means the advisor's q_R* falls
                        // back to 1 — the worst-case ROR bound for the
                        // substitution.
                        let name = file_stem(&file);
                        let dom = col.domain().clone();
                        let codes: Vec<u32> = (0..dom.size() as u32).collect();
                        let surrogate = Table::new(
                            name.clone(),
                            Schema::new(&name, vec![AttributeDef::primary_key(&gone.key)])?,
                            vec![Column::new_unchecked(dom, codes)],
                        )?;
                        let attr_def = if closed {
                            AttributeDef::foreign_key(&def.name, &name)
                        } else {
                            AttributeDef::open_foreign_key(&def.name, &name)
                        };
                        let sub = TableSubstitution {
                            table: name,
                            fk: def.name.clone(),
                            file: file.clone(),
                            n_entities: surrogate.n_rows(),
                            declared_features: gone.features.clone(),
                            reason: gone.reason.clone(),
                        };
                        hamlet_obs::record_warning(sub.evidence());
                        substitutions.push(sub);
                        defs.push(attr_def);
                        cols.push(col.clone());
                        attributes.push(AttributeTable {
                            fk: def.name.clone(),
                            table: surrogate,
                        });
                        continue;
                    }
                    let (attr_table, key_col) = attr_tables
                        .get(&file)
                        .ok_or_else(|| RelationalError::UnknownTable { name: file.clone() })?;
                    let key = attr_table.column_by_name(key_col)?;
                    // Map entity FK labels -> key codes via a one-shot
                    // index (code_of is a linear scan; per-row use would
                    // make the load O(n_S * n_R)).
                    let key_code_of: HashMap<String, u32> = key
                        .codes()
                        .iter()
                        .map(|&c| (key.domain().label(c).into_owned(), c))
                        .collect();
                    let mut recoded = Vec::with_capacity(col.len());
                    let mut dangling: Vec<(usize, String)> = Vec::new();
                    for row in 0..col.len() {
                        let lbl = col.domain().label(col.get(row)).into_owned();
                        match key_code_of.get(&lbl).copied() {
                            Some(code) => recoded.push(code),
                            None => {
                                // Placeholder; resolved below per policy.
                                recoded.push(0);
                                dangling.push((row, lbl));
                            }
                        }
                    }
                    let attr_def = if closed {
                        AttributeDef::foreign_key(&def.name, attr_table.name())
                    } else {
                        AttributeDef::open_foreign_key(&def.name, attr_table.name())
                    };
                    let promoted = promote_key(attr_table, key_col)?;
                    match (&dangling[..], &policy.on_dangling_fk) {
                        ([], _) | (_, FkPolicy::DropRow) => {
                            if let [(row, _), ..] = dangling[..] {
                                hamlet_obs::counter_add!(
                                    "hamlet_fk_rows_dropped_total",
                                    dangling.len()
                                );
                                hamlet_obs::record_warning(format!(
                                    "entity '{entity_name}': dropping {} row(s) with dangling \
                                     '{}' references (first at row {row})",
                                    dangling.len(),
                                    def.name
                                ));
                                drop_set.extend(dangling.iter().map(|(r, _)| *r));
                            }
                            defs.push(attr_def);
                            cols.push(Column::new_unchecked(key.domain().clone(), recoded));
                            attributes.push(AttributeTable {
                                fk: def.name.clone(),
                                table: promoted,
                            });
                        }
                        ([(row, lbl), ..], FkPolicy::Abort) => {
                            return Err(RelationalError::Manifest {
                                reason: format!(
                                    "entity '{}' row {}: foreign key '{}' value '{}' has no row in '{}'",
                                    entity_name,
                                    row + 2, // 1-based, after the header line
                                    def.name,
                                    lbl,
                                    attr_table.name()
                                ),
                            });
                        }
                        (_, FkPolicy::MapToOthers) => {
                            let n_features = promoted.schema().features().len();
                            let (widened, others_code) =
                                with_others_record(&promoted, &vec![0; n_features])?;
                            for &(row, _) in &dangling {
                                recoded[row] = others_code;
                            }
                            hamlet_obs::counter_add!(
                                "hamlet_fk_rows_to_others_total",
                                dangling.len()
                            );
                            hamlet_obs::record_warning(format!(
                                "entity '{entity_name}': remapped {} dangling '{}' reference(s) \
                                 to the Others record",
                                dangling.len(),
                                def.name
                            ));
                            others_rows.extend(dangling.iter().map(|(r, _)| *r));
                            let pk_idx = widened.schema().primary_key().ok_or_else(|| {
                                RelationalError::MissingRole {
                                    table: widened.name().to_string(),
                                    role: "primary key",
                                }
                            })?;
                            defs.push(attr_def);
                            cols.push(Column::new_unchecked(
                                widened.column(pk_idx).domain().clone(),
                                recoded,
                            ));
                            attributes.push(AttributeTable {
                                fk: def.name.clone(),
                                table: widened,
                            });
                        }
                    }
                }
            }
        }
        let mut entity = Table::new(entity_name.clone(), Schema::new(&entity_name, defs)?, cols)?;
        let dropped_rows: Vec<usize> = drop_set.into_iter().collect();
        if !dropped_rows.is_empty() {
            let keep: Vec<usize> = (0..entity.n_rows())
                .filter(|r| !dropped_rows.contains(r))
                .collect();
            if keep.is_empty() {
                return Err(RelationalError::EmptyTable {
                    table: entity_name.clone(),
                });
            }
            entity = entity.select_rows(&keep);
        }
        let star = StarSchema::new(entity, attributes)?;
        Ok(StarLoad {
            star,
            quarantine,
            dropped_rows,
            others_rows,
            substitutions,
        })
    }

    /// Loads from the real filesystem, resolving relative to `base`.
    /// Files stream through buffered readers — the whole-file
    /// `read_to_string` is gone from every file-backed load path.
    pub fn load(&self, base: &Path) -> Result<StarSchema> {
        self.load_policy(base, &LoadPolicy::default())
            .map(|l| l.star)
    }

    /// Loads from the real filesystem under a degradation policy,
    /// streaming each CSV instead of reading it into one `String`.
    pub fn load_policy(&self, base: &Path, policy: &LoadPolicy) -> Result<StarLoad> {
        self.load_from_source(
            base,
            &mut |p: &Path| {
                std::fs::File::open(p)
                    .map(|f| Box::new(std::io::BufReader::new(f)) as Box<dyn BufRead>)
            },
            policy,
        )
    }
}

/// File stem of a manifest file reference (`dir/x.csv` -> `x`).
fn file_stem(file: &str) -> String {
    file.rsplit('/')
        .next()
        .unwrap_or(file)
        .trim_end_matches(".csv")
        .to_string()
}

/// Re-roles the named column as the table's primary key (CSV import
/// reads all columns by spec; the attribute-table key arrives as a
/// `Nominal(primary_key)` only if the spec said so — it did, so this
/// simply validates and returns a clone).
fn promote_key(table: &Table, key_col: &str) -> Result<Table> {
    if table.schema().primary_key() != table.schema().index_of(key_col) {
        return Err(RelationalError::UnknownAttribute {
            table: table.name().to_string(),
            attribute: key_col.to_string(),
        });
    }
    Ok(table.clone())
}

fn section_specs(
    section: &Section,
    _attr: Option<&HashMap<String, (Table, String)>>,
) -> Result<Vec<(String, ColumnSpec)>> {
    let mut specs = Vec::new();
    for d in &section.directives {
        let (name, spec) = match d {
            Directive::Target(c) => (c.clone(), ColumnSpec::target(c)),
            Directive::Key(c) => (c.clone(), ColumnSpec::primary_key(c)),
            Directive::Feature(c) => (c.clone(), ColumnSpec::feature(c)),
            Directive::Numeric(c, bins) => (c.clone(), ColumnSpec::numeric_feature(c, *bins)),
            Directive::Skip(c) => (c.clone(), ColumnSpec::Skip),
            // FKs are loaded as plain nominal features, then recoded.
            Directive::Fk { column, .. } => (column.clone(), ColumnSpec::feature(column)),
        };
        specs.push((name, spec));
    }
    Ok(specs)
}

fn to_spec_refs(specs: &[(String, ColumnSpec)]) -> Vec<(&str, ColumnSpec)> {
    specs.iter().map(|(n, s)| (n.as_str(), s.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = "\
# churn example
entity customers.csv
target   Churn
feature  Gender
numeric  Age 4
fk       EmployerID employers.csv closed

table employers.csv
key      EmployerID
feature  Country
numeric  Revenue 2
";

    fn files() -> HashMap<PathBuf, String> {
        let mut m = HashMap::new();
        m.insert(
            PathBuf::from("/data/customers.csv"),
            "Churn,Gender,Age,EmployerID\nyes,F,30,e2\nno,M,40,e1\nno,F,50,e2\nyes,M,25,e1\n"
                .to_string(),
        );
        m.insert(
            PathBuf::from("/data/employers.csv"),
            "EmployerID,Country,Revenue\ne1,NZ,10\ne2,IN,90\n".to_string(),
        );
        m
    }

    fn load() -> StarSchema {
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let files = files();
        manifest
            .load_with(Path::new("/data"), |p| {
                files
                    .get(p)
                    .cloned()
                    .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
            })
            .unwrap()
    }

    #[test]
    fn loads_star_schema() {
        let star = load();
        assert_eq!(star.n_s(), 4);
        assert_eq!(star.k(), 1);
        assert!(star.fk_closed(0));
        assert_eq!(star.d_s(), 2); // Gender + binned Age
        assert_eq!(star.attributes()[0].n_rows(), 2);
        assert_eq!(star.n_classes(), Some(2));
    }

    #[test]
    fn fk_recoded_onto_key_domain() {
        let star = load();
        let fk = star.entity().column_by_name("EmployerID").unwrap();
        let key = star.attributes()[0]
            .table
            .column_by_name("EmployerID")
            .unwrap();
        assert_eq!(fk.domain().size(), key.domain().size());
        // Row 0 references e2 -> same label through the key domain.
        assert_eq!(fk.domain().label(fk.get(0)), "e2");
        // Join works end to end.
        let t = star.materialize_all().unwrap();
        let country = t.column_by_name("Country").unwrap();
        assert_eq!(country.domain().label(country.get(0)), "IN");
        assert_eq!(country.domain().label(country.get(1)), "NZ");
    }

    #[test]
    fn dangling_fk_label_is_error() {
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let mut files = files();
        files.insert(
            PathBuf::from("/data/customers.csv"),
            "Churn,Gender,Age,EmployerID\nyes,F,30,e99\n".to_string(),
        );
        let err = manifest
            .load_with(Path::new("/data"), |p| {
                files
                    .get(p)
                    .cloned()
                    .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
            })
            .unwrap_err();
        assert!(
            matches!(&err, RelationalError::Manifest { reason } if reason.contains("'e99'")),
            "{err}"
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "feature x\n"; // directive before section
        let err = Manifest::parse(bad).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let bad2 = "entity a.csv\nnumeric x notanumber\n";
        assert!(Manifest::parse(bad2)
            .unwrap_err()
            .to_string()
            .contains("line 2"));
        let bad3 = "entity a.csv\nfk c b.csv sideways\n";
        assert!(Manifest::parse(bad3)
            .unwrap_err()
            .to_string()
            .contains("closed"));
        let bad4 = "entity a.csv\nwhatever x\n";
        assert!(Manifest::parse(bad4)
            .unwrap_err()
            .to_string()
            .contains("unknown keyword"));
    }

    #[test]
    fn exactly_one_entity_required() {
        assert!(Manifest::parse("table a.csv\nkey k\n").is_err());
        assert!(Manifest::parse("entity a.csv\nentity b.csv\n").is_err());
    }

    #[test]
    fn missing_file_reported() {
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let err = manifest
            .load_with(Path::new("/nope"), |_| {
                Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))
            })
            .unwrap_err();
        assert!(err.to_string().contains("cannot read"));
    }

    fn dirty_files() -> HashMap<PathBuf, String> {
        let mut m = files();
        // Row 1 references an employer that does not exist; row 2 is
        // ragged; the rest are clean.
        m.insert(
            PathBuf::from("/data/customers.csv"),
            "Churn,Gender,Age,EmployerID\nyes,F,30,e2\nno,M,40,e99\nno,F\nyes,M,25,e1\n"
                .to_string(),
        );
        m
    }

    fn load_dirty(policy: &LoadPolicy) -> Result<StarLoad> {
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let files = dirty_files();
        manifest.load_with_policy(
            Path::new("/data"),
            |p| {
                files
                    .get(p)
                    .cloned()
                    .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
            },
            policy,
        )
    }

    #[test]
    fn policy_drop_row_removes_dangling_entities() {
        let load = load_dirty(&LoadPolicy {
            on_dirty: DirtyPolicy::Quarantine { max_bad_rows: 10 },
            on_dangling_fk: FkPolicy::DropRow,
            ..LoadPolicy::default()
        })
        .unwrap();
        assert!(load.degraded());
        // The ragged row was quarantined, then the e99 row dropped.
        assert_eq!(load.star.n_s(), 2);
        assert_eq!(load.dropped_rows, vec![1]);
        let entity_q = load
            .quarantine
            .iter()
            .find(|q| q.table == "customers")
            .unwrap();
        assert_eq!(entity_q.rows.len(), 1);
        assert_eq!(entity_q.total_rows, 4);
        // Survivors still join cleanly.
        load.star.materialize_all().unwrap();
    }

    #[test]
    fn policy_map_to_others_widens_attribute_table() {
        let load = load_dirty(&LoadPolicy {
            on_dirty: DirtyPolicy::Quarantine { max_bad_rows: 10 },
            on_dangling_fk: FkPolicy::MapToOthers,
            ..LoadPolicy::default()
        })
        .unwrap();
        // No entity rows lost: the e99 row maps onto the Others record.
        assert_eq!(load.star.n_s(), 3);
        assert_eq!(load.others_rows, vec![1]);
        assert!(load.dropped_rows.is_empty());
        let attr = &load.star.attributes()[0].table;
        assert_eq!(attr.n_rows(), 3); // e1, e2, Others
        let key = attr.column_by_name("EmployerID").unwrap();
        assert_eq!(key.domain().label(2), "Others");
        // The remapped row joins to the Others record's default features.
        let t = load.star.materialize_all().unwrap();
        let country = t.column_by_name("Country").unwrap();
        assert_eq!(country.domain().label(country.get(1)), "NZ"); // default code 0
    }

    #[test]
    fn policy_abort_is_default_strict_behaviour() {
        let err = load_dirty(&LoadPolicy::default()).unwrap_err();
        // First fault hit under Abort is the ragged customers row.
        assert!(matches!(err, RelationalError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn quarantining_attr_key_row_cascades_to_fk_policy() {
        // Corrupt the employers table so e2's row is ragged: it gets
        // quarantined, and every customer referencing e2 now dangles.
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let mut files = files();
        files.insert(
            PathBuf::from("/data/employers.csv"),
            "EmployerID,Country,Revenue\ne1,NZ,10\ne2,IN\n".to_string(),
        );
        let read = |p: &Path| {
            files
                .get(p)
                .cloned()
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
        };
        let load = manifest
            .load_with_policy(
                Path::new("/data"),
                read,
                &LoadPolicy {
                    on_dirty: DirtyPolicy::Quarantine { max_bad_rows: 10 },
                    on_dangling_fk: FkPolicy::DropRow,
                    ..LoadPolicy::default()
                },
            )
            .unwrap();
        // Two customers referenced e2; both were dropped.
        assert_eq!(load.star.n_s(), 2);
        assert_eq!(load.dropped_rows, vec![0, 2]);
    }

    fn load_without_employers(policy: &LoadPolicy) -> Result<StarLoad> {
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let mut files = files();
        files.remove(&PathBuf::from("/data/employers.csv"));
        manifest.load_with_policy(
            Path::new("/data"),
            |p| {
                files
                    .get(p)
                    .cloned()
                    .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
            },
            policy,
        )
    }

    #[test]
    fn missing_table_still_errors_by_default() {
        let err = load_without_employers(&LoadPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("cannot read"), "{err}");
    }

    #[test]
    fn missing_table_degrades_to_fk_only_surrogate() {
        let load = load_without_employers(&LoadPolicy {
            on_missing_table: TablePolicy::AllowDegraded,
            ..LoadPolicy::default()
        })
        .unwrap();
        assert!(load.degraded());
        assert_eq!(load.substitutions.len(), 1);
        let sub = &load.substitutions[0];
        assert_eq!(sub.table, "employers");
        assert_eq!(sub.fk, "EmployerID");
        assert_eq!(
            sub.declared_features,
            vec!["Country".to_string(), "Revenue".to_string()]
        );
        // The surrogate is key-only over the FK's observed domain.
        let attr = &load.star.attributes()[0];
        assert_eq!(attr.table.schema().features().len(), 0);
        assert_eq!(sub.n_entities, attr.n_rows());
        assert_eq!(load.star.n_s(), 4);
        // Zero-feature tables have no min feature domain: downstream the
        // advisor falls back to the worst-case q_R* = 1.
        assert_eq!(attr.min_feature_domain(), None);
        // The star still materializes (the join adds no columns).
        let t = load.star.materialize_all().unwrap();
        assert_eq!(t.n_rows(), 4);
        assert!(t.column_by_name("Country").is_err());
    }

    #[test]
    fn table_open_failpoint_degrades_or_errors_by_policy() {
        use hamlet_chaos::failpoint;
        let _guard = failpoint::serial();
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let files = files();
        let read = |p: &Path| {
            files
                .get(p)
                .cloned()
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
        };
        // Strict: the injected open failure fails the whole load.
        failpoint::set_failpoints("relational.table_open=io").unwrap();
        let err = manifest
            .load_with_policy(Path::new("/data"), read, &LoadPolicy::default())
            .unwrap_err();
        assert!(err.to_string().contains("injected IO failure"), "{err}");
        // Degraded: the same fault yields a surrogate substitution.
        failpoint::set_failpoints("relational.table_open=io@1").unwrap();
        let load = manifest
            .load_with_policy(
                Path::new("/data"),
                read,
                &LoadPolicy {
                    on_missing_table: TablePolicy::AllowDegraded,
                    ..LoadPolicy::default()
                },
            )
            .unwrap();
        failpoint::clear_failpoints();
        assert_eq!(load.substitutions.len(), 1);
        assert!(load.substitutions[0].reason.contains("injected IO failure"));
        assert_eq!(load.star.n_s(), 4);
    }

    #[test]
    fn failpoint_fails_manifest_reads() {
        use hamlet_chaos::failpoint;
        let _guard = failpoint::serial();
        failpoint::set_failpoints("manifest.read=io").unwrap();
        let manifest = Manifest::parse(MANIFEST).unwrap();
        let files = files();
        let err = manifest
            .load_with(Path::new("/data"), |p| {
                files
                    .get(p)
                    .cloned()
                    .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
            })
            .unwrap_err();
        failpoint::clear_failpoints();
        assert!(
            err.to_string().contains("injected IO failure"),
            "expected injected failure, got: {err}"
        );
    }

    #[test]
    fn filesystem_load_roundtrip() {
        let dir = std::env::temp_dir().join("hamlet_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (p, content) in files() {
            std::fs::write(dir.join(p.file_name().unwrap()), content).unwrap();
        }
        let star = Manifest::parse(MANIFEST).unwrap().load(&dir).unwrap();
        assert_eq!(star.n_s(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
