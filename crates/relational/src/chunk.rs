//! Chunked columnar storage: the out-of-core data plane.
//!
//! A dense [`Column`] is a single `Vec<u32>` of codes; everything the
//! substrate computes over it (histograms, joins, count tables) is a
//! scan. This module re-expresses a column as a sequence of fixed-size
//! **chunks** (morsels, ~64K codes each, `HAMLET_MORSEL_ROWS`) behind
//! the [`ColumnChunks`] abstraction:
//!
//! * the dense path implements it trivially ([`DenseChunks`] borrows
//!   subslices of the in-memory code vector, zero copies);
//! * [`ChunkedColumn`] owns its chunks, each either resident in memory
//!   or **spilled** to a chunk file on disk (written through
//!   [`hamlet_obs::atomic_write`], deleted when the owning [`SpillDir`]
//!   drops) — the streaming CSV ingester produces these when a load
//!   runs under a memory budget (`HAMLET_MEM_BUDGET_MB`).
//!
//! Scans over chunks are morsel-driven: work fans out per chunk via
//! [`hamlet_obs::parallel::run_indexed`] and per-chunk partial results
//! merge **in chunk order**. Since every aggregate in the data plane is
//! an integer count table, the merged result is bit-for-bit identical
//! at any thread count and any chunk size — the PR-5 determinism
//! discipline, now over the chunked plane.

use std::borrow::Cow;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::column::Column;
use crate::domain::Domain;
use crate::error::{RelationalError, Result};
use crate::schema::Schema;
use crate::table::Table;

/// Rows per chunk used by default across the data plane (resolved once
/// per process from `HAMLET_MORSEL_ROWS`).
pub fn default_chunk_rows() -> usize {
    hamlet_obs::resolved_morsel_rows()
}

/// A column viewed as a sequence of fixed-size chunks of `u32` codes.
///
/// Every chunk except the last holds exactly [`chunk_rows`] codes; the
/// last holds the remainder. Reading a chunk may touch the disk (for
/// spilled columns), so it returns a `Result` and a [`Cow`] — borrowed
/// for resident chunks, owned for chunks read back from a spill file.
///
/// [`chunk_rows`]: ColumnChunks::chunk_rows
pub trait ColumnChunks {
    /// The shared domain the codes index into.
    fn domain(&self) -> &Arc<Domain>;

    /// Total rows across all chunks.
    fn n_rows(&self) -> usize;

    /// Rows per full chunk (the morsel size).
    fn chunk_rows(&self) -> usize;

    /// Number of chunks (`ceil(n_rows / chunk_rows)`; 0 when empty).
    fn n_chunks(&self) -> usize {
        self.n_rows().div_ceil(self.chunk_rows().max(1))
    }

    /// The codes of chunk `i`.
    fn chunk(&self, i: usize) -> Result<Cow<'_, [u32]>>;
}

/// The dense path's trivial [`ColumnChunks`]: borrowed subslices of an
/// in-memory [`Column`], produced by [`Column::chunks`].
#[derive(Debug, Clone, Copy)]
pub struct DenseChunks<'a> {
    column: &'a Column,
    chunk_rows: usize,
}

impl<'a> DenseChunks<'a> {
    /// Views `column` as chunks of `chunk_rows` codes.
    pub fn new(column: &'a Column, chunk_rows: usize) -> Self {
        Self {
            column,
            chunk_rows: chunk_rows.max(1),
        }
    }
}

impl ColumnChunks for DenseChunks<'_> {
    fn domain(&self) -> &Arc<Domain> {
        self.column.domain()
    }

    fn n_rows(&self) -> usize {
        self.column.len()
    }

    fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    fn chunk(&self, i: usize) -> Result<Cow<'_, [u32]>> {
        let codes = self.column.codes();
        let lo = i.saturating_mul(self.chunk_rows);
        let hi = lo.saturating_add(self.chunk_rows).min(codes.len());
        match codes.get(lo..hi) {
            Some(slice) => Ok(Cow::Borrowed(slice)),
            None => Err(RelationalError::Io {
                context: format!("dense chunk {i} of column '{}'", self.domain().name()),
                message: format!("chunk out of range (rows {lo}..{hi} of {})", codes.len()),
            }),
        }
    }
}

impl Column {
    /// Views this column as a sequence of `chunk_rows`-sized chunks —
    /// the dense path's [`ColumnChunks`] implementation.
    pub fn chunks(&self, chunk_rows: usize) -> DenseChunks<'_> {
        DenseChunks::new(self, chunk_rows)
    }
}

/// Monotone id so concurrent loads in one process never share a spill
/// directory.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A scratch directory holding spilled chunk files, removed (files and
/// all) when the last reference drops. Held as an `Arc` by every
/// [`ChunkedColumn`] that spilled into it, so the files outlive exactly
/// the columns that need them.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Creates a fresh spill directory under `parent` (the OS temp dir
    /// when `None`). The name embeds the process id and a process-wide
    /// sequence number, so concurrent loads never collide.
    pub fn create(parent: Option<&Path>) -> Result<Arc<Self>> {
        let parent = match parent {
            Some(p) => p.to_path_buf(),
            None => std::env::temp_dir(),
        };
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = parent.join(format!("hamlet-spill-{}-{}", std::process::id(), seq));
        std::fs::create_dir_all(&path).map_err(|e| RelationalError::Io {
            context: format!("create spill dir {}", path.display()),
            message: e.to_string(),
        })?;
        Ok(Arc::new(Self { path }))
    }

    /// The directory's path (chunk files live directly inside it).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Cleanup is best-effort: a failure leaves a scratch dir behind,
        // which is annoying but never incorrect.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Writes a `u32` chunk as little-endian bytes through the atomic
/// tmp+rename path, so a crash can never leave a half-written chunk
/// behind a valid name.
pub fn write_codes_chunk(path: &Path, codes: &[u32]) -> Result<()> {
    let mut bytes = Vec::with_capacity(codes.len() * 4);
    for &c in codes {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    hamlet_obs::counter_add!("hamlet_spill_chunks_total", 1);
    hamlet_obs::counter_add!("hamlet_spill_bytes_total", bytes.len());
    hamlet_obs::atomic_write(path, &bytes).map_err(|e| RelationalError::Io {
        context: format!("spill chunk {}", path.display()),
        message: e.to_string(),
    })
}

/// Reads a `u32` chunk back, validating the byte count against the
/// expected row count.
pub fn read_codes_chunk(path: &Path, rows: usize) -> Result<Vec<u32>> {
    let bytes = std::fs::read(path).map_err(|e| RelationalError::Io {
        context: format!("read spill chunk {}", path.display()),
        message: e.to_string(),
    })?;
    if bytes.len() != rows * 4 {
        return Err(RelationalError::SpillCorrupt {
            file: path.display().to_string(),
            reason: format!(
                "{} bytes, expected {} ({} rows x 4)",
                bytes.len(),
                rows * 4,
                rows
            ),
        });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect())
}

/// Writes an `f64` chunk (little-endian IEEE bits) atomically — the
/// streaming ingester spills raw numeric values in these until the
/// global range is known and they can be binned into codes.
pub fn write_values_chunk(path: &Path, values: &[f64]) -> Result<()> {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for &v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    hamlet_obs::counter_add!("hamlet_spill_chunks_total", 1);
    hamlet_obs::counter_add!("hamlet_spill_bytes_total", bytes.len());
    hamlet_obs::atomic_write(path, &bytes).map_err(|e| RelationalError::Io {
        context: format!("spill chunk {}", path.display()),
        message: e.to_string(),
    })
}

/// Reads an `f64` chunk back, validating the byte count.
pub fn read_values_chunk(path: &Path, rows: usize) -> Result<Vec<f64>> {
    let bytes = std::fs::read(path).map_err(|e| RelationalError::Io {
        context: format!("read spill chunk {}", path.display()),
        message: e.to_string(),
    })?;
    if bytes.len() != rows * 8 {
        return Err(RelationalError::SpillCorrupt {
            file: path.display().to_string(),
            reason: format!(
                "{} bytes, expected {} ({} rows x 8)",
                bytes.len(),
                rows * 8,
                rows
            ),
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|b| f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
        .collect())
}

/// One chunk of an owned [`ChunkedColumn`]: resident or spilled.
#[derive(Debug, Clone)]
pub enum Chunk {
    /// Codes resident in memory.
    Mem(Vec<u32>),
    /// Codes spilled to a file inside the column's [`SpillDir`].
    Spilled {
        /// The chunk file (little-endian `u32`s).
        file: PathBuf,
        /// Rows in this chunk (validates the read-back).
        rows: usize,
    },
}

impl Chunk {
    fn rows(&self) -> usize {
        match self {
            Chunk::Mem(codes) => codes.len(),
            Chunk::Spilled { rows, .. } => *rows,
        }
    }
}

/// An owned column stored as a sequence of chunks, any of which may
/// live on disk. Produced by the streaming CSV ingester; the spill
/// directory (if any) is dropped — and its files deleted — when the
/// last column referencing it goes away.
#[derive(Debug, Clone)]
pub struct ChunkedColumn {
    domain: Arc<Domain>,
    chunk_rows: usize,
    n_rows: usize,
    chunks: Vec<Chunk>,
    /// Keeps the spill files alive as long as any chunk needs them.
    spill: Option<Arc<SpillDir>>,
}

impl ChunkedColumn {
    /// Builds a chunked column from parts, validating that chunk sizes
    /// line up with the declared geometry (every chunk but the last has
    /// exactly `chunk_rows` rows).
    pub fn from_parts(
        domain: Arc<Domain>,
        chunk_rows: usize,
        chunks: Vec<Chunk>,
        spill: Option<Arc<SpillDir>>,
    ) -> Result<Self> {
        let chunk_rows = chunk_rows.max(1);
        let n_rows: usize = chunks.iter().map(Chunk::rows).sum();
        for (i, c) in chunks.iter().enumerate() {
            let expect = if i + 1 == chunks.len() {
                n_rows - i * chunk_rows
            } else {
                chunk_rows
            };
            if c.rows() != expect {
                return Err(RelationalError::ColumnLengthMismatch {
                    table: String::new(),
                    column: format!("{} (chunk {i})", domain.name()),
                    expected: expect,
                    actual: c.rows(),
                });
            }
        }
        Ok(Self {
            domain,
            chunk_rows,
            n_rows,
            chunks,
            spill,
        })
    }

    /// Wraps a dense column as a single-geometry chunked column (all
    /// chunks resident). Used to mix dense and spilled columns in one
    /// [`ChunkedTable`].
    pub fn from_column(column: Column, chunk_rows: usize) -> Self {
        let chunk_rows = chunk_rows.max(1);
        let domain = Arc::clone(column.domain());
        let n_rows = column.len();
        let codes = column.into_codes();
        let chunks = if codes.is_empty() {
            Vec::new()
        } else {
            codes
                .chunks(chunk_rows)
                .map(|c| Chunk::Mem(c.to_vec()))
                .collect()
        };
        Self {
            domain,
            chunk_rows,
            n_rows,
            chunks,
            spill: None,
        }
    }

    /// Whether any chunk lives on disk.
    pub fn is_spilled(&self) -> bool {
        self.chunks
            .iter()
            .any(|c| matches!(c, Chunk::Spilled { .. }))
    }

    /// The spill directory keeping this column's on-disk chunks alive,
    /// if any (shared across the columns of one load).
    pub fn spill_dir(&self) -> Option<&Arc<SpillDir>> {
        self.spill.as_ref()
    }

    /// Concatenates all chunks back into a dense [`Column`] (reads any
    /// spilled chunks from disk). The inverse of chunking; proptests
    /// pin `to_column(chunk(x)) == x`.
    pub fn to_column(&self) -> Result<Column> {
        let mut codes = Vec::with_capacity(self.n_rows);
        for i in 0..self.chunks.len() {
            codes.extend_from_slice(&self.chunk(i)?);
        }
        Ok(Column::new_unchecked(Arc::clone(&self.domain), codes))
    }

    /// Counts occurrences of each code without materializing the dense
    /// column: a morsel-driven scan, one partial histogram per chunk,
    /// merged in chunk order (integer adds — identical at any thread
    /// count).
    pub fn histogram(&self, threads: usize) -> Result<Vec<u64>> {
        let per_chunk = hamlet_obs::parallel::run_indexed(self.chunks.len(), threads, &|i| {
            let mut h = vec![0u64; self.domain.size()];
            let chunk = self.chunk(i)?;
            for &c in chunk.iter() {
                match h.get_mut(c as usize) {
                    Some(slot) => *slot += 1,
                    None => {
                        return Err(RelationalError::CodeOutOfDomain {
                            table: String::new(),
                            column: self.domain.name().to_string(),
                            code: c,
                            domain_size: self.domain.size(),
                        })
                    }
                }
            }
            Ok(h)
        });
        let mut total = vec![0u64; self.domain.size()];
        for partial in per_chunk {
            for (t, p) in total.iter_mut().zip(partial?) {
                *t += p;
            }
        }
        Ok(total)
    }
}

impl ColumnChunks for ChunkedColumn {
    fn domain(&self) -> &Arc<Domain> {
        &self.domain
    }

    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    fn chunk(&self, i: usize) -> Result<Cow<'_, [u32]>> {
        match self.chunks.get(i) {
            Some(Chunk::Mem(codes)) => Ok(Cow::Borrowed(codes.as_slice())),
            Some(Chunk::Spilled { file, rows }) => Ok(Cow::Owned(read_codes_chunk(file, *rows)?)),
            None => Err(RelationalError::Io {
                context: format!("chunk {i} of column '{}'", self.domain.name()),
                message: format!("column has {} chunks", self.chunks.len()),
            }),
        }
    }
}

/// Gathers `attribute[fk[i]]` chunk by chunk — the morsel-driven form
/// of the KFK join's core primitive ([`Column::gather`]): the foreign
/// column is produced one chunk at a time, so only one morsel of FK
/// codes is ever resident even when `fk` is spilled. Out-of-range FK
/// codes are a typed error (the dense path would have rejected them at
/// validation).
pub fn gather_chunks<C: ColumnChunks + Sync>(fk: &C, attribute: &Column) -> Result<Column> {
    let attr_codes = attribute.codes();
    let mut out = Vec::with_capacity(fk.n_rows());
    for i in 0..fk.n_chunks() {
        let chunk = fk.chunk(i)?;
        for &code in chunk.iter() {
            match attr_codes.get(code as usize) {
                Some(&v) => out.push(v),
                None => {
                    return Err(RelationalError::CodeOutOfDomain {
                        table: String::new(),
                        column: fk.domain().name().to_string(),
                        code,
                        domain_size: attr_codes.len(),
                    })
                }
            }
        }
    }
    Ok(Column::new_unchecked(Arc::clone(attribute.domain()), out))
}

/// A table whose columns are chunked (possibly spilled): the product of
/// a budgeted streaming CSV load. Schema and row count carry the same
/// invariants as [`Table`]; [`to_table`](Self::to_table) materializes
/// the dense form (and validates it) when a downstream path needs it.
#[derive(Debug, Clone)]
pub struct ChunkedTable {
    name: String,
    schema: Schema,
    columns: Vec<ChunkedColumn>,
    n_rows: usize,
}

impl ChunkedTable {
    /// Builds a chunked table, validating column lengths against each
    /// other (content validation happens chunk-at-a-time in the scans,
    /// or wholesale in [`to_table`](Self::to_table)).
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ChunkedColumn>,
    ) -> Result<Self> {
        let name = name.into();
        let n_rows = columns.first().map_or(0, |c| c.n_rows);
        for (i, col) in columns.iter().enumerate() {
            if col.n_rows != n_rows {
                return Err(RelationalError::ColumnLengthMismatch {
                    table: name,
                    column: schema
                        .attributes()
                        .get(i)
                        .map(|a| a.name.clone())
                        .unwrap_or_else(|| format!("<column {i}>")),
                    expected: n_rows,
                    actual: col.n_rows,
                });
            }
        }
        Ok(Self {
            name,
            schema,
            columns,
            n_rows,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The logical schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The chunked columns, in schema order.
    pub fn columns(&self) -> &[ChunkedColumn] {
        &self.columns
    }

    /// Column by attribute name.
    pub fn column_by_name(&self, name: &str) -> Result<&ChunkedColumn> {
        match self.schema.index_of(name) {
            Some(i) => self
                .columns
                .get(i)
                .ok_or_else(|| RelationalError::UnknownAttribute {
                    table: self.name.clone(),
                    attribute: name.to_string(),
                }),
            None => Err(RelationalError::UnknownAttribute {
                table: self.name.clone(),
                attribute: name.to_string(),
            }),
        }
    }

    /// Whether any column spilled chunks to disk.
    pub fn is_spilled(&self) -> bool {
        self.columns.iter().any(ChunkedColumn::is_spilled)
    }

    /// Materializes the dense [`Table`] (reading spilled chunks back)
    /// and runs full validation — the bridge to every downstream path
    /// that wants the in-memory representation.
    pub fn to_table(&self) -> Result<Table> {
        let mut cols = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            cols.push(c.to_column()?);
        }
        Table::new(self.name.clone(), self.schema.clone(), cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(n: usize) -> Arc<Domain> {
        Domain::indexed("D", n).shared()
    }

    #[test]
    fn dense_chunks_are_borrowed_slices() {
        let col = Column::new(dom(10), (0..10).collect()).unwrap();
        let chunks = col.chunks(4);
        assert_eq!(chunks.n_chunks(), 3);
        assert_eq!(chunks.chunk(0).unwrap().as_ref(), &[0, 1, 2, 3]);
        assert_eq!(chunks.chunk(2).unwrap().as_ref(), &[8, 9]);
        assert!(matches!(chunks.chunk(0).unwrap(), Cow::Borrowed(_)));
        assert!(chunks.chunk(3).is_err());
    }

    #[test]
    fn from_column_round_trips_at_any_chunk_size() {
        let codes: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let col = Column::new(dom(7), codes.clone()).unwrap();
        for chunk_rows in [1, 3, 64, 100, 1000] {
            let chunked = ChunkedColumn::from_column(col.clone(), chunk_rows);
            assert_eq!(chunked.n_rows(), 100);
            assert_eq!(chunked.to_column().unwrap().codes(), codes.as_slice());
            assert_eq!(chunked.histogram(2).unwrap(), col.histogram());
        }
    }

    #[test]
    fn spilled_chunks_read_back_and_clean_up() {
        let dir = SpillDir::create(None).unwrap();
        let path = dir.path().to_path_buf();
        let f0 = path.join("c0.bin");
        write_codes_chunk(&f0, &[1, 2, 3]).unwrap();
        let col = ChunkedColumn::from_parts(
            dom(5),
            3,
            vec![
                Chunk::Spilled {
                    file: f0.clone(),
                    rows: 3,
                },
                Chunk::Mem(vec![4, 0]),
            ],
            Some(Arc::clone(&dir)),
        )
        .unwrap();
        assert!(col.is_spilled());
        assert_eq!(col.to_column().unwrap().codes(), &[1, 2, 3, 4, 0]);
        assert_eq!(col.histogram(1).unwrap(), vec![1, 1, 1, 1, 1]);
        drop(dir);
        assert!(path.exists(), "column still holds the spill dir alive");
        drop(col);
        assert!(!path.exists(), "spill dir removed when the last ref drops");
    }

    #[test]
    fn truncated_spill_file_is_a_typed_error() {
        let dir = SpillDir::create(None).unwrap();
        let f = dir.path().join("bad.bin");
        hamlet_obs::atomic_write(&f, &[1, 2, 3]).unwrap(); // not a multiple of 4
        assert!(matches!(
            read_codes_chunk(&f, 1),
            Err(RelationalError::SpillCorrupt { .. })
        ));
        let g = dir.path().join("vals.bin");
        write_values_chunk(&g, &[1.5, -2.25]).unwrap();
        assert_eq!(read_values_chunk(&g, 2).unwrap(), vec![1.5, -2.25]);
        assert!(read_values_chunk(&g, 3).is_err());
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        // A middle chunk shorter than chunk_rows breaks the fixed-size
        // invariant every morsel scan relies on.
        let err = ChunkedColumn::from_parts(
            dom(5),
            3,
            vec![Chunk::Mem(vec![1, 2]), Chunk::Mem(vec![3, 4, 0])],
            None,
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn gather_through_chunked_fk_matches_dense_gather() {
        let attr = Column::new(dom(4), vec![3, 1, 0, 2]).unwrap();
        let fk_codes: Vec<u32> = vec![0, 3, 2, 2, 1, 0, 3];
        let fk_dense = Column::new(dom(4), fk_codes.clone()).unwrap();
        for chunk_rows in [1, 2, 7, 100] {
            let fk = ChunkedColumn::from_column(fk_dense.clone(), chunk_rows);
            let gathered = gather_chunks(&fk, &attr).unwrap();
            assert_eq!(gathered.codes(), attr.gather(&fk_codes).codes());
        }
        // Out-of-range FK code is a typed error, not a panic.
        let bad = ChunkedColumn::from_column(Column::new_unchecked(dom(9), vec![8]), 2);
        assert!(matches!(
            gather_chunks(&bad, &attr),
            Err(RelationalError::CodeOutOfDomain { .. })
        ));
    }

    #[test]
    fn histogram_is_thread_count_invariant() {
        let codes: Vec<u32> = (0..10_000).map(|i| (i * 31) % 11).collect();
        let col = Column::new(dom(11), codes).unwrap();
        let chunked = ChunkedColumn::from_column(col.clone(), 256);
        let h1 = chunked.histogram(1).unwrap();
        let h8 = chunked.histogram(8).unwrap();
        assert_eq!(h1, h8);
        assert_eq!(h1, col.histogram());
    }
}
