//! Star-schema catalog: one entity table plus its attribute tables.
//!
//! This is the paper's input shape (Sec 2.1): `S(SID, Y, X_S, FK_1..FK_k)`
//! with `R_i(RID_i, X_Ri)`. The catalog validates referential integrity up
//! front and exposes *plans*: which attribute tables to join before
//! learning. The decision rules in `hamlet-core` consume catalog metadata
//! (row counts, domain sizes) without touching the data.

use crate::error::{RelationalError, Result};
use crate::join::kfk_join;
use crate::schema::Role;
use crate::table::Table;

/// One attribute table hooked to the entity table through a foreign key.
#[derive(Debug, Clone)]
pub struct AttributeTable {
    /// Name of the FK column in the entity table.
    pub fk: String,
    /// The attribute table `R_i` itself.
    pub table: Table,
}

impl AttributeTable {
    /// Number of rows `n_Ri` (equals `|D_FKi|` under the closed-domain
    /// assumption).
    pub fn n_rows(&self) -> usize {
        self.table.n_rows()
    }

    /// Names of the foreign features `X_Ri`.
    pub fn feature_names(&self) -> Vec<&str> {
        self.table
            .schema()
            .attributes()
            .iter()
            .filter(|a| a.role == Role::Feature)
            .map(|a| a.name.as_str())
            .collect()
    }

    /// Number of foreign features `d_Ri`.
    pub fn n_features(&self) -> usize {
        self.feature_names().len()
    }

    /// Domain sizes of the foreign features, in column order.
    pub fn feature_domain_sizes(&self) -> Vec<usize> {
        self.table
            .schema()
            .attributes()
            .iter()
            .zip(self.table.columns())
            .filter(|(a, _)| a.role == Role::Feature)
            .map(|(_, c)| c.domain().size())
            .collect()
    }

    /// `q_R* = min_{F in X_R} |D_F|` — the smallest foreign-feature domain,
    /// used by the worst-case ROR (Sec 4.2).
    pub fn min_feature_domain(&self) -> Option<usize> {
        self.feature_domain_sizes().into_iter().min()
    }
}

/// A validated star schema.
#[derive(Debug, Clone)]
pub struct StarSchema {
    entity: Table,
    attributes: Vec<AttributeTable>,
}

impl StarSchema {
    /// Builds a star schema, checking that:
    /// * every `(fk, table)` pair matches a FK declared in the entity
    ///   schema referencing that table name;
    /// * FK and RID domains agree in size;
    /// * referential integrity holds (no dangling FK values);
    /// * each attribute table has a primary key and at least one feature.
    pub fn new(entity: Table, attributes: Vec<AttributeTable>) -> Result<Self> {
        if entity.n_rows() == 0 {
            return Err(RelationalError::EmptyTable {
                table: entity.name().to_string(),
            });
        }
        for at in &attributes {
            let fk_pos = entity.schema().index_of(&at.fk).ok_or_else(|| {
                RelationalError::UnknownAttribute {
                    table: entity.name().to_string(),
                    attribute: at.fk.clone(),
                }
            })?;
            match &entity.schema().attributes()[fk_pos].role {
                Role::ForeignKey { table, .. } => {
                    if table != at.table.name() {
                        return Err(RelationalError::UnknownTable {
                            name: at.table.name().to_string(),
                        });
                    }
                }
                _ => {
                    return Err(RelationalError::NotAForeignKey {
                        table: entity.name().to_string(),
                        attribute: at.fk.clone(),
                    })
                }
            }
            let pk = at.table.schema().primary_key().ok_or_else(|| {
                RelationalError::UnknownAttribute {
                    table: at.table.name().to_string(),
                    attribute: "<primary key>".to_string(),
                }
            })?;
            let fk_col = entity.column(fk_pos);
            let pk_col = at.table.column(pk);
            if fk_col.domain().size() != pk_col.domain().size() {
                return Err(RelationalError::ForeignKeyDomainMismatch {
                    entity: entity.name().to_string(),
                    fk: at.fk.clone(),
                    referenced: at.table.schema().attributes()[pk].name.clone(),
                });
            }
            // Referential integrity: every FK code must exist as a RID.
            let mut present = vec![false; pk_col.domain().size()];
            for &c in pk_col.codes() {
                present[c as usize] = true;
            }
            if let Some((row, &bad)) = fk_col
                .codes()
                .iter()
                .enumerate()
                .find(|(_, &c)| !present[c as usize])
            {
                return Err(RelationalError::DanglingForeignKey {
                    entity: entity.name().to_string(),
                    fk: at.fk.clone(),
                    code: bad,
                    label: fk_col.domain().label(bad).into_owned(),
                    row,
                });
            }
        }
        Ok(Self { entity, attributes })
    }

    /// The entity table `S`.
    pub fn entity(&self) -> &Table {
        &self.entity
    }

    /// The attribute tables `R_1..R_k`.
    pub fn attributes(&self) -> &[AttributeTable] {
        &self.attributes
    }

    /// `k` — number of attribute tables.
    pub fn k(&self) -> usize {
        self.attributes.len()
    }

    /// `n_S` — number of entity rows (labeled examples).
    pub fn n_s(&self) -> usize {
        self.entity.n_rows()
    }

    /// `d_S` — number of entity-table features (excluding keys and target).
    pub fn d_s(&self) -> usize {
        self.entity.schema().features().len()
    }

    /// Number of target classes `#Y`, or `None` if the schema has no
    /// target.
    pub fn n_classes(&self) -> Option<usize> {
        self.entity.target_column().map(|c| c.domain().size())
    }

    /// Whether the `i`-th foreign key has a closed domain.
    pub fn fk_closed(&self, i: usize) -> bool {
        let fk_pos = self
            .entity
            .schema()
            .index_of(&self.attributes[i].fk)
            .expect("validated at construction");
        match &self.entity.schema().attributes()[fk_pos].role {
            Role::ForeignKey { closed_domain, .. } => *closed_domain,
            _ => unreachable!("validated at construction"),
        }
    }

    /// `k'` — number of foreign keys with closed domains (Fig 6).
    pub fn k_closed(&self) -> usize {
        (0..self.k()).filter(|&i| self.fk_closed(i)).count()
    }

    /// Materializes the denormalized table, joining exactly the attribute
    /// tables whose positions are listed in `join_set` (in catalog order).
    ///
    /// `join_set` entries out of range are reported as unknown tables.
    /// All foreign keys stay in the output; use
    /// [`Table::drop_attributes`] afterwards to model `JoinAllNoFK`.
    pub fn materialize(&self, join_set: &[usize]) -> Result<Table> {
        let _span = hamlet_obs::span!(
            "relational.materialize",
            entity = self.entity.name(),
            joins = join_set.len()
        );
        let mut out = self.entity.clone();
        for &i in join_set {
            let at = self
                .attributes
                .get(i)
                .ok_or_else(|| RelationalError::UnknownTable {
                    name: format!("attribute table #{i}"),
                })?;
            out = kfk_join(&out, &at.fk, &at.table)?;
        }
        Ok(out)
    }

    /// Materializes the full join `T` of all attribute tables ("JoinAll").
    pub fn materialize_all(&self) -> Result<Table> {
        self.materialize(&(0..self.k()).collect::<Vec<_>>())
    }

    /// The entity table as-is ("NoJoins": FKs act as representatives).
    pub fn materialize_none(&self) -> Table {
        self.entity.clone()
    }

    /// Splits the entity rows into three disjoint row-index sets with the
    /// given proportions (used for the paper's 50%:25%:25% holdout).
    /// Deterministic given `perm`, a permutation of `0..n_s()`.
    pub fn split_rows(&self, perm: &[usize], train: f64, validation: f64) -> SplitIndices {
        assert_eq!(perm.len(), self.n_s(), "perm must cover all entity rows");
        let n = perm.len();
        let n_train = ((n as f64) * train).round() as usize;
        let n_val = ((n as f64) * validation).round() as usize;
        let n_train = n_train.min(n);
        let n_val = n_val.min(n - n_train);
        SplitIndices {
            train: perm[..n_train].to_vec(),
            validation: perm[n_train..n_train + n_val].to_vec(),
            test: perm[n_train + n_val..].to_vec(),
        }
    }
}

/// Row-index sets for a holdout split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitIndices {
    /// Training rows (50% in the paper's protocol).
    pub train: Vec<usize>,
    /// Validation rows used by wrappers/filters (25%).
    pub validation: Vec<usize>,
    /// Final holdout test rows (25%).
    pub test: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::table::TableBuilder;

    fn star() -> StarSchema {
        let rid = Domain::indexed("EmployerID", 2).shared();
        let r = TableBuilder::new("Employers")
            .primary_key("EmployerID", rid.clone(), vec![0, 1])
            .feature(
                "Country",
                Domain::from_labels("Country", &["NZ", "IN", "US"]).shared(),
                vec![0, 2],
            )
            .feature(
                "Revenue",
                Domain::indexed("Revenue", 8).shared(),
                vec![7, 1],
            )
            .build()
            .unwrap();
        let s = TableBuilder::new("Customers")
            .primary_key(
                "CustomerID",
                Domain::indexed("CustomerID", 6).shared(),
                vec![0, 1, 2, 3, 4, 5],
            )
            .target(
                "Churn",
                Domain::boolean("Churn").shared(),
                vec![0, 1, 0, 1, 0, 1],
            )
            .feature(
                "Age",
                Domain::indexed("Age", 4).shared(),
                vec![0, 1, 2, 3, 0, 1],
            )
            .foreign_key("EmployerID", "Employers", rid, vec![0, 1, 0, 1, 0, 1])
            .build()
            .unwrap();
        StarSchema::new(
            s,
            vec![AttributeTable {
                fk: "EmployerID".into(),
                table: r,
            }],
        )
        .unwrap()
    }

    #[test]
    fn stats_match_figure6_conventions() {
        let st = star();
        assert_eq!(st.n_s(), 6);
        assert_eq!(st.d_s(), 1);
        assert_eq!(st.k(), 1);
        assert_eq!(st.k_closed(), 1);
        assert_eq!(st.n_classes(), Some(2));
        assert_eq!(st.attributes()[0].n_rows(), 2);
        assert_eq!(st.attributes()[0].n_features(), 2);
        assert_eq!(st.attributes()[0].min_feature_domain(), Some(3));
    }

    #[test]
    fn materialize_all_adds_foreign_features() {
        let st = star();
        let t = st.materialize_all().unwrap();
        assert_eq!(t.n_rows(), 6);
        assert!(t.schema().index_of("Country").is_some());
        assert!(t.schema().index_of("Revenue").is_some());
        assert!(t.schema().index_of("EmployerID").is_some());
    }

    #[test]
    fn materialize_none_is_entity() {
        let st = star();
        let t = st.materialize_none();
        assert!(t.schema().index_of("Country").is_none());
        assert_eq!(t.n_rows(), 6);
    }

    #[test]
    fn materialize_subset() {
        let st = star();
        assert!(st
            .materialize(&[])
            .unwrap()
            .schema()
            .index_of("Country")
            .is_none());
        assert!(st.materialize(&[0]).is_ok());
        assert!(st.materialize(&[1]).is_err());
    }

    #[test]
    fn dangling_fk_rejected_at_construction() {
        let rid = Domain::indexed("RID", 3).shared();
        let r = TableBuilder::new("R")
            .primary_key("RID", rid.clone(), vec![0, 1]) // RID=2 missing
            .feature("a", Domain::boolean("a").shared(), vec![0, 1])
            .build()
            .unwrap();
        let s = TableBuilder::new("S")
            .target("y", Domain::boolean("y").shared(), vec![0])
            .foreign_key("fk", "R", rid, vec![2])
            .build()
            .unwrap();
        let err = StarSchema::new(
            s,
            vec![AttributeTable {
                fk: "fk".into(),
                table: r,
            }],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RelationalError::DanglingForeignKey { code: 2, .. }
        ));
    }

    #[test]
    fn wrong_reference_target_rejected() {
        let rid = Domain::indexed("RID", 1).shared();
        let r = TableBuilder::new("NotEmployers")
            .primary_key("RID", rid.clone(), vec![0])
            .feature("a", Domain::boolean("a").shared(), vec![0])
            .build()
            .unwrap();
        let s = TableBuilder::new("S")
            .target("y", Domain::boolean("y").shared(), vec![0])
            .foreign_key("fk", "Employers", rid, vec![0])
            .build()
            .unwrap();
        assert!(StarSchema::new(
            s,
            vec![AttributeTable {
                fk: "fk".into(),
                table: r,
            }],
        )
        .is_err());
    }

    #[test]
    fn split_rows_partitions() {
        let st = star();
        let perm: Vec<usize> = (0..6).collect();
        let sp = st.split_rows(&perm, 0.5, 0.25);
        assert_eq!(sp.train.len(), 3);
        assert_eq!(sp.validation.len(), 2); // round(6*0.25) = 2
        assert_eq!(sp.test.len(), 1);
        let mut all: Vec<usize> = sp
            .train
            .iter()
            .chain(&sp.validation)
            .chain(&sp.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, perm);
    }
}
