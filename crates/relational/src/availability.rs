//! Table availability: degraded loads when an attribute table is gone.
//!
//! The paper's core observation is that an attribute table R_i often
//! adds nothing a model needs (TR/ROR, Sec 3) — so a *missing* R_i
//! should degrade accuracy predictably, not crash the pipeline. "Model
//! Joins" (arXiv 2206.10434) answers join queries over an absent base
//! table with a per-table surrogate; we mirror the cheapest safe
//! instance of that idea: when a declared attribute table cannot be
//! read, substitute the **FK-only representation** — a key-only
//! surrogate table whose primary key spans exactly the entity's FK
//! domain and which carries zero features.
//!
//! That surrogate is not a hack; it is the paper's "avoid the join"
//! arm made literal. Downstream, the advisor sees a table with no
//! features, `min_feature_domain()` falls back to `q_R* = 1`, and the
//! worst-case ROR bound for the substitution comes out of the standard
//! machinery — maximally conservative, journaled as evidence wherever
//! the advisor report is journaled. Training over the surrogate is
//! bit-for-bit the cold-start `Others` path with every foreign feature
//! absent.
//!
//! The layer is opt-in: [`TablePolicy::Require`] (the default)
//! preserves the strict pre-existing behaviour, byte for byte.
//! Chaos runs arm the [`TABLE_OPEN_FAILPOINT`] to withhold tables
//! mid-load and prove both arms.

/// Failpoint armed on every attribute-table open during a manifest
/// load (`HAMLET_FAILPOINTS=relational.table_open=io@N`).
pub const TABLE_OPEN_FAILPOINT: &str = "relational.table_open";

/// What a manifest load does when a declared attribute table cannot be
/// opened or read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TablePolicy {
    /// Fail the load (strict pre-existing behaviour).
    #[default]
    Require,
    /// Substitute the FK-only surrogate and record a
    /// [`TableSubstitution`] — the load degrades instead of failing.
    AllowDegraded,
}

/// Evidence record for one attribute table replaced by its FK-only
/// surrogate during a degraded load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSubstitution {
    /// Table name (file stem), matching the surrogate's name in the
    /// star schema.
    pub table: String,
    /// Entity FK column referencing the table.
    pub fk: String,
    /// File reference as written in the manifest.
    pub file: String,
    /// Surrogate primary-key domain size (= the entity FK's own
    /// observed domain).
    pub n_entities: usize,
    /// Feature columns the manifest declared for the table — absent in
    /// the surrogate, listed so serving can refuse rows that supply
    /// them and explain why.
    pub declared_features: Vec<String>,
    /// The read error that triggered the substitution.
    pub reason: String,
}

impl TableSubstitution {
    /// One-line evidence string for journals and warnings.
    pub fn evidence(&self) -> String {
        format!(
            "table '{}' (fk '{}', {} key(s), {} declared feature(s)) replaced by FK-only \
             surrogate: {}",
            self.table,
            self.fk,
            self.n_entities,
            self.declared_features.len(),
            self.reason
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_defaults_to_strict() {
        assert_eq!(TablePolicy::default(), TablePolicy::Require);
    }

    #[test]
    fn evidence_names_the_substitution() {
        let sub = TableSubstitution {
            table: "employers".to_string(),
            fk: "EmployerID".to_string(),
            file: "employers.csv".to_string(),
            n_entities: 2,
            declared_features: vec!["Country".to_string(), "Revenue".to_string()],
            reason: "cannot read /data/employers.csv: gone".to_string(),
        };
        let e = sub.evidence();
        assert!(e.contains("employers"), "{e}");
        assert!(e.contains("FK-only"), "{e}");
        assert!(e.contains("2 declared feature(s)"), "{e}");
    }
}
