//! Cold-start handling for closed-domain foreign keys (Sec 2.1).
//!
//! The paper's closed-domain assumption "does not mean new MovieID values
//! can never occur! ... analysts build models using only the movies seen
//! so far but revise their feature domains and update ML models
//! periodically to absorb movies added recently. ... In practice, a
//! common way to handle it is to have a special 'Others' record in
//! Employers as a placeholder for new employers seen in between
//! revisions."
//!
//! This module implements exactly that revision mechanism:
//!
//! * [`with_others_record`] extends an attribute table with one `Others`
//!   row (default feature values), widening the key domain by one;
//! * [`DomainRevision`] maps incoming entity rows whose FK values are
//!   outside the closed domain onto the `Others` code, so a model trained
//!   before the revision keeps scoring new data.

use std::sync::Arc;

use crate::catalog::AttributeTable;
use crate::column::Column;
use crate::domain::Domain;
use crate::error::{RelationalError, Result};
use crate::schema::Role;
use crate::table::Table;

/// Extends an attribute table with an `Others` placeholder row.
///
/// The new row gets the given default code per feature (in schema order);
/// the primary-key domain grows by one, and the `Others` row takes the
/// new maximal code. Returns the extended table and the `Others` code.
pub fn with_others_record(attr: &Table, feature_defaults: &[u32]) -> Result<(Table, u32)> {
    let pk_idx = attr
        .schema()
        .primary_key()
        .ok_or_else(|| RelationalError::UnknownAttribute {
            table: attr.name().to_string(),
            attribute: "<primary key>".to_string(),
        })?;
    let n_features = attr.schema().features().len();
    if feature_defaults.len() != n_features {
        return Err(RelationalError::ColumnLengthMismatch {
            table: attr.name().to_string(),
            column: "<feature defaults>".to_string(),
            expected: n_features,
            actual: feature_defaults.len(),
        });
    }

    let old_pk = attr.column(pk_idx);
    let others_code = old_pk.domain().size() as u32;
    // Labelled key domains keep their labels, gaining an explicit
    // `Others` category; indexed domains just widen. If a table already
    // has a literal `Others` key (so the label would collide), fall
    // back to an indexed widen rather than minting a duplicate label.
    let labelled = old_pk.domain().is_labelled() && old_pk.domain().code_of("Others").is_none();
    let new_key_domain = if labelled {
        let mut labels: Vec<String> = (0..others_code)
            .map(|c| old_pk.domain().label(c).into_owned())
            .collect();
        labels.push("Others".to_string());
        Arc::new(Domain::labelled(old_pk.domain().name().to_string(), labels))
    } else {
        Arc::new(Domain::indexed(
            old_pk.domain().name().to_string(),
            old_pk.domain().size() + 1,
        ))
    };

    let mut cols = Vec::with_capacity(attr.columns().len());
    let mut default_iter = feature_defaults.iter();
    for (def, col) in attr.schema().attributes().iter().zip(attr.columns()) {
        let mut codes = col.codes().to_vec();
        match def.role {
            Role::PrimaryKey => {
                codes.push(others_code);
                cols.push(Column::new_unchecked(new_key_domain.clone(), codes));
            }
            Role::Feature => {
                let d = *default_iter.next().expect("length checked above");
                if !col.domain().contains(d) {
                    return Err(RelationalError::CodeOutOfDomain {
                        table: attr.name().to_string(),
                        column: def.name.clone(),
                        code: d,
                        domain_size: col.domain().size(),
                    });
                }
                codes.push(d);
                cols.push(Column::new_unchecked(col.domain().clone(), codes));
            }
            ref role => {
                // Attribute tables hold only a key and features; inventing
                // an Others value for anything else would fabricate data.
                return Err(RelationalError::NotAForeignKey {
                    table: attr.name().to_string(),
                    attribute: format!("{} (unexpected role {role:?})", def.name),
                });
            }
        }
    }

    let table = Table::new(attr.name().to_string(), attr.schema().clone(), cols)?;
    Ok((table, others_code))
}

/// A domain revision for one foreign key: the widened attribute table
/// plus the remapping for out-of-domain FK values.
#[derive(Debug, Clone)]
pub struct DomainRevision {
    /// The attribute table including the `Others` row.
    pub attribute: AttributeTable,
    /// The code out-of-domain FK values map to.
    pub others_code: u32,
    /// Size of the *original* (pre-revision) key domain.
    pub original_domain: usize,
}

impl DomainRevision {
    /// Builds a revision from an attribute table and per-feature default
    /// codes for the `Others` row.
    pub fn new(attr: &AttributeTable, feature_defaults: &[u32]) -> Result<Self> {
        let original_domain = attr
            .table
            .column(attr.table.schema().primary_key().expect("validated"))
            .domain()
            .size();
        let (table, others_code) = with_others_record(&attr.table, feature_defaults)?;
        Ok(Self {
            attribute: AttributeTable {
                fk: attr.fk.clone(),
                table,
            },
            others_code,
            original_domain,
        })
    }

    /// Remaps raw FK values (which may reference entities unseen at
    /// revision time) into the widened domain: in-domain values pass
    /// through, everything else becomes `Others`.
    pub fn remap_fk(&self, raw: &[u32]) -> Column {
        let domain = Arc::new(Domain::indexed(
            self.attribute.fk.clone(),
            self.original_domain + 1,
        ));
        let codes = raw
            .iter()
            .map(|&v| {
                if (v as usize) < self.original_domain {
                    v
                } else {
                    self.others_code
                }
            })
            .collect();
        Column::new_unchecked(domain, codes)
    }

    /// Fraction of values in `raw` that fell outside the closed domain —
    /// a drift signal telling the analyst it is time for the periodic
    /// model revision the paper describes.
    pub fn cold_start_rate(&self, raw: &[u32]) -> f64 {
        if raw.is_empty() {
            return 0.0;
        }
        let cold = raw
            .iter()
            .filter(|&&v| (v as usize) >= self.original_domain)
            .count();
        cold as f64 / raw.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn employers() -> AttributeTable {
        let rid = Domain::indexed("EmployerID", 3).shared();
        AttributeTable {
            fk: "EmployerID".into(),
            table: TableBuilder::new("Employers")
                .primary_key("EmployerID", rid, vec![0, 1, 2])
                .feature(
                    "Country",
                    Domain::indexed("Country", 4).shared(),
                    vec![0, 1, 2],
                )
                .feature(
                    "Revenue",
                    Domain::indexed("Revenue", 8).shared(),
                    vec![7, 3, 1],
                )
                .build()
                .unwrap(),
        }
    }

    #[test]
    fn others_record_widens_domain() {
        let at = employers();
        let (t, code) = with_others_record(&at.table, &[0, 0]).unwrap();
        assert_eq!(code, 3);
        assert_eq!(t.n_rows(), 4);
        let pk = t.column(t.schema().primary_key().unwrap());
        assert_eq!(pk.domain().size(), 4);
        assert_eq!(pk.get(3), 3);
        assert_eq!(t.column_by_name("Country").unwrap().get(3), 0);
        t.validate().unwrap();
    }

    #[test]
    fn wrong_default_count_rejected() {
        let at = employers();
        assert!(matches!(
            with_others_record(&at.table, &[0]),
            Err(RelationalError::ColumnLengthMismatch { .. })
        ));
    }

    #[test]
    fn default_outside_feature_domain_rejected() {
        let at = employers();
        assert!(matches!(
            with_others_record(&at.table, &[99, 0]),
            Err(RelationalError::CodeOutOfDomain { .. })
        ));
    }

    #[test]
    fn revision_remaps_cold_values() {
        let rev = DomainRevision::new(&employers(), &[0, 0]).unwrap();
        // Values 0..3 are in the original domain; 5 and 17 are new employers.
        let remapped = rev.remap_fk(&[0, 2, 5, 1, 17]);
        assert_eq!(remapped.codes(), &[0, 2, 3, 1, 3]);
        assert_eq!(remapped.domain().size(), 4);
        assert!((rev.cold_start_rate(&[0, 2, 5, 1, 17]) - 0.4).abs() < 1e-12);
        assert_eq!(rev.cold_start_rate(&[]), 0.0);
    }

    #[test]
    fn revised_table_joins_with_remapped_fks() {
        use crate::join::kfk_join;
        let rev = DomainRevision::new(&employers(), &[1, 2]).unwrap();
        let fk_col = rev.remap_fk(&[0, 9, 2]);
        let s = TableBuilder::new("Customers")
            .target("Churn", Domain::boolean("Churn").shared(), vec![0, 1, 0])
            .column(
                crate::schema::AttributeDef::foreign_key("EmployerID", "Employers"),
                fk_col.domain().clone(),
                fk_col.codes().to_vec(),
            )
            .build()
            .unwrap();
        let t = kfk_join(&s, "EmployerID", &rev.attribute.table).unwrap();
        // The cold row (raw 9 -> Others) picked up the default features.
        assert_eq!(t.column_by_name("Country").unwrap().get(1), 1);
        assert_eq!(t.column_by_name("Revenue").unwrap().get(1), 2);
    }
}
