//! Finite discrete domains for nominal attributes.
//!
//! The paper assumes every feature (including the target `Y` and all foreign
//! keys) is a discrete random variable with a *known finite domain* that is
//! closed with respect to the prediction task (Sec 2.1). A [`Domain`] makes
//! that assumption explicit: it is the set of categories an attribute may
//! take, and columns store dense `u32` codes into it.

use std::borrow::Cow;
use std::sync::Arc;

/// A finite, ordered set of categories for one nominal attribute.
///
/// Two representations are supported:
/// * **labelled** — an explicit list of category names (e.g. countries);
/// * **indexed** — an anonymous domain of a given size whose labels are
///   synthesized on demand (e.g. a surrogate-key domain with 50 000 values,
///   where materializing 50 000 strings would be wasteful).
///
/// Codes are `0..size`. Equality of domains is structural; for indexed
/// domains only name and size matter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    name: String,
    kind: DomainKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum DomainKind {
    Labelled(Vec<String>),
    Indexed(usize),
}

impl Domain {
    /// Builds a labelled domain from category names.
    ///
    /// # Panics
    /// Panics if `labels` is empty: the paper's setting has no empty domains
    /// (every feature takes at least one value).
    pub fn labelled(name: impl Into<String>, labels: Vec<String>) -> Self {
        assert!(
            !labels.is_empty(),
            "a domain must have at least one category"
        );
        Self {
            name: name.into(),
            kind: DomainKind::Labelled(labels),
        }
    }

    /// Builds a labelled domain from string slices.
    pub fn from_labels(name: impl Into<String>, labels: &[&str]) -> Self {
        Self::labelled(name, labels.iter().map(|s| s.to_string()).collect())
    }

    /// Builds an anonymous indexed domain of `size` categories.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn indexed(name: impl Into<String>, size: usize) -> Self {
        assert!(size > 0, "a domain must have at least one category");
        Self {
            name: name.into(),
            kind: DomainKind::Indexed(size),
        }
    }

    /// A boolean domain `{false, true}` — the domain used throughout the
    /// paper's simulation study.
    pub fn boolean(name: impl Into<String>) -> Self {
        Self::from_labels(name, &["false", "true"])
    }

    /// The attribute-type name of this domain (e.g. `"Country"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of categories, written `|D_F|` in the paper.
    pub fn size(&self) -> usize {
        match &self.kind {
            DomainKind::Labelled(l) => l.len(),
            DomainKind::Indexed(n) => *n,
        }
    }

    /// Whether `code` is a valid category code.
    pub fn contains(&self, code: u32) -> bool {
        (code as usize) < self.size()
    }

    /// Whether this domain carries explicit labels (as opposed to an
    /// anonymous indexed domain that synthesizes them).
    pub fn is_labelled(&self) -> bool {
        matches!(self.kind, DomainKind::Labelled(_))
    }

    /// Human-readable label for `code`.
    ///
    /// Indexed domains synthesize `"<name>#<code>"`.
    pub fn label(&self, code: u32) -> Cow<'_, str> {
        match &self.kind {
            DomainKind::Labelled(l) => Cow::Borrowed(&l[code as usize]),
            DomainKind::Indexed(_) => Cow::Owned(format!("{}#{}", self.name, code)),
        }
    }

    /// Looks up a label's code in a labelled domain (linear scan; intended
    /// for tests and small domains).
    pub fn code_of(&self, label: &str) -> Option<u32> {
        match &self.kind {
            DomainKind::Labelled(l) => l.iter().position(|x| x == label).map(|i| i as u32),
            DomainKind::Indexed(n) => {
                let prefix = format!("{}#", self.name);
                let idx: usize = label.strip_prefix(&prefix)?.parse().ok()?;
                (idx < *n).then_some(idx as u32)
            }
        }
    }

    /// Shares this domain behind an [`Arc`] for cheap column cloning.
    pub fn shared(self) -> Arc<Domain> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labelled_roundtrip() {
        let d = Domain::from_labels("Country", &["NZ", "IN", "US"]);
        assert_eq!(d.size(), 3);
        assert_eq!(d.label(1), "IN");
        assert_eq!(d.code_of("US"), Some(2));
        assert_eq!(d.code_of("FR"), None);
        assert!(d.contains(2));
        assert!(!d.contains(3));
    }

    #[test]
    fn indexed_synthesizes_labels() {
        let d = Domain::indexed("EmployerID", 1000);
        assert_eq!(d.size(), 1000);
        assert_eq!(d.label(7), "EmployerID#7");
        assert_eq!(d.code_of("EmployerID#999"), Some(999));
        assert_eq!(d.code_of("EmployerID#1000"), None);
        assert_eq!(d.code_of("Other#3"), None);
    }

    #[test]
    fn boolean_has_two_values() {
        let d = Domain::boolean("Churn");
        assert_eq!(d.size(), 2);
        assert_eq!(d.code_of("true"), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn empty_domain_rejected() {
        let _ = Domain::labelled("X", vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn zero_indexed_domain_rejected() {
        let _ = Domain::indexed("X", 0);
    }

    #[test]
    fn structural_equality() {
        assert_eq!(Domain::indexed("A", 4), Domain::indexed("A", 4));
        assert_ne!(Domain::indexed("A", 4), Domain::indexed("A", 5));
        assert_ne!(
            Domain::from_labels("A", &["x"]),
            Domain::from_labels("B", &["x"])
        );
    }
}
