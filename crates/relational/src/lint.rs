//! Star-schema lints: data-quality warnings an analyst should see before
//! trusting any join-avoidance decision.
//!
//! The decision rules assume well-formed inputs — closed FK domains with
//! referenced rows actually used, informative features, an unskewed
//! target. Each lint flags a way real data quietly violates those
//! assumptions (and says which downstream conclusion it would distort).

use crate::catalog::StarSchema;
use crate::schema::Role;

/// One warning about a star schema instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Lint {
    /// A feature column holds a single value — it cannot help any model
    /// and inflates `d_R` in reports.
    ConstantColumn {
        /// Owning table.
        table: String,
        /// Column name.
        column: String,
    },
    /// A feature's distinct count equals the table's row count — it is a
    /// de-facto key; treating it as a feature invites memorization (the
    /// variance risk the ROR prices for FKs, but unpriced here).
    NearKeyFeature {
        /// Owning table.
        table: String,
        /// Column name.
        column: String,
    },
    /// Many attribute-table rows are never referenced by any entity row:
    /// the closed-domain assumption is loose, and `|D_FK| = n_R`
    /// overstates the effective FK domain in the ROR.
    UnreferencedRows {
        /// Attribute table name.
        table: String,
        /// Fraction of rows never referenced.
        unreferenced_fraction: f64,
    },
    /// A single FK value covers a large fraction of entity rows —
    /// fan-out skew worth a malign-skew check (appendix D).
    DominantFkValue {
        /// Foreign key name.
        fk: String,
        /// Fraction of entity rows carried by the most common value.
        top_fraction: f64,
    },
    /// The target's entropy is below the conservative guard: the skew
    /// guard will veto every avoidance.
    LowTargetEntropy {
        /// `H(Y)` in bits.
        entropy_bits: f64,
    },
}

/// Thresholds for the heuristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LintConfig {
    /// Fire `UnreferencedRows` above this fraction.
    pub unreferenced_floor: f64,
    /// Fire `DominantFkValue` above this fraction.
    pub dominant_fk_floor: f64,
    /// Fire `LowTargetEntropy` below this many bits.
    pub entropy_floor_bits: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            unreferenced_floor: 0.25,
            dominant_fk_floor: 0.5,
            entropy_floor_bits: 0.5,
        }
    }
}

/// Runs all lints over a star schema instance.
pub fn lint_star(star: &StarSchema, config: &LintConfig) -> Vec<Lint> {
    let mut lints = Vec::new();

    // Target entropy.
    if let Some(y) = star.entity().target_column() {
        let hist = y.histogram();
        let n: u64 = hist.iter().sum();
        let mut h = 0.0;
        for &c in &hist {
            if c > 0 {
                let p = c as f64 / n as f64;
                h -= p * p.log2();
            }
        }
        if h < config.entropy_floor_bits {
            lints.push(Lint::LowTargetEntropy { entropy_bits: h });
        }
    }

    // Per-table column lints (entity + attribute tables).
    let mut tables: Vec<&crate::table::Table> = vec![star.entity()];
    tables.extend(star.attributes().iter().map(|at| &at.table));
    for table in tables {
        for (def, col) in table.schema().attributes().iter().zip(table.columns()) {
            if def.role != Role::Feature {
                continue;
            }
            let distinct = col.distinct_count();
            if distinct <= 1 {
                lints.push(Lint::ConstantColumn {
                    table: table.name().to_string(),
                    column: def.name.clone(),
                });
            } else if distinct == table.n_rows() && table.n_rows() > 8 {
                lints.push(Lint::NearKeyFeature {
                    table: table.name().to_string(),
                    column: def.name.clone(),
                });
            }
        }
    }

    // FK fan-out lints.
    for at in star.attributes() {
        let fk = star
            .entity()
            .column_by_name(&at.fk)
            .expect("validated at construction");
        let hist = fk.histogram();
        let n: u64 = hist.iter().sum();
        let referenced = hist.iter().filter(|&&c| c > 0).count();
        let unreferenced_fraction = 1.0 - referenced as f64 / at.n_rows() as f64;
        if unreferenced_fraction > config.unreferenced_floor {
            lints.push(Lint::UnreferencedRows {
                table: at.table.name().to_string(),
                unreferenced_fraction,
            });
        }
        if let Some(&top) = hist.iter().max() {
            let top_fraction = top as f64 / n as f64;
            if top_fraction > config.dominant_fk_floor {
                lints.push(Lint::DominantFkValue {
                    fk: at.fk.clone(),
                    top_fraction,
                });
            }
        }
    }

    lints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::AttributeTable;
    use crate::domain::Domain;
    use crate::table::TableBuilder;

    fn star(fk_codes: Vec<u32>, y_codes: Vec<u32>, n_r: usize, const_col: bool) -> StarSchema {
        let rid = Domain::indexed("fk", n_r).shared();
        let a_codes: Vec<u32> = if const_col {
            vec![0; n_r]
        } else {
            (0..n_r as u32).map(|i| i % 2).collect()
        };
        let r = TableBuilder::new("R")
            .primary_key("fk", rid.clone(), (0..n_r as u32).collect())
            .feature("a", Domain::indexed("a", 2).shared(), a_codes)
            .build()
            .unwrap();
        let s = TableBuilder::new("S")
            .target("y", Domain::boolean("y").shared(), y_codes)
            .foreign_key("fk", "R", rid, fk_codes)
            .build()
            .unwrap();
        StarSchema::new(
            s,
            vec![AttributeTable {
                fk: "fk".into(),
                table: r,
            }],
        )
        .unwrap()
    }

    #[test]
    fn clean_schema_has_no_lints() {
        let fk: Vec<u32> = (0..100u32).map(|i| i % 10).collect();
        let y: Vec<u32> = (0..100u32).map(|i| i % 2).collect();
        let st = star(fk, y, 10, false);
        assert!(lint_star(&st, &LintConfig::default()).is_empty());
    }

    #[test]
    fn constant_column_flagged() {
        let fk: Vec<u32> = (0..100u32).map(|i| i % 10).collect();
        let y: Vec<u32> = (0..100u32).map(|i| i % 2).collect();
        let st = star(fk, y, 10, true);
        let lints = lint_star(&st, &LintConfig::default());
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::ConstantColumn { column, .. } if column == "a")));
    }

    #[test]
    fn unreferenced_rows_flagged() {
        // 100 rows all referencing fk 0..4; table has 20 rows -> 80% unused.
        let fk: Vec<u32> = (0..100u32).map(|i| i % 5).collect();
        let y: Vec<u32> = (0..100u32).map(|i| i % 2).collect();
        let st = star(fk, y, 20, false);
        let lints = lint_star(&st, &LintConfig::default());
        let hit = lints.iter().find_map(|l| match l {
            Lint::UnreferencedRows {
                unreferenced_fraction,
                ..
            } => Some(*unreferenced_fraction),
            _ => None,
        });
        assert!((hit.expect("lint fires") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dominant_fk_flagged() {
        let mut fk = vec![0u32; 70];
        fk.extend((0..30u32).map(|i| 1 + i % 9));
        let y: Vec<u32> = (0..100u32).map(|i| i % 2).collect();
        let st = star(fk, y, 10, false);
        let lints = lint_star(&st, &LintConfig::default());
        assert!(lints.iter().any(
            |l| matches!(l, Lint::DominantFkValue { top_fraction, .. } if (*top_fraction - 0.7).abs() < 1e-12)
        ));
    }

    #[test]
    fn low_entropy_target_flagged() {
        let fk: Vec<u32> = (0..100u32).map(|i| i % 10).collect();
        let mut y = vec![0u32; 97];
        y.extend([1, 1, 1]);
        let st = star(fk, y, 10, false);
        let lints = lint_star(&st, &LintConfig::default());
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::LowTargetEntropy { .. })));
    }

    #[test]
    fn near_key_feature_flagged() {
        // Attribute feature with one distinct value per row.
        let n_r = 16usize;
        let rid = Domain::indexed("fk", n_r).shared();
        let r = TableBuilder::new("R")
            .primary_key("fk", rid.clone(), (0..n_r as u32).collect())
            .feature(
                "almost_key",
                Domain::indexed("k", n_r).shared(),
                (0..n_r as u32).collect(),
            )
            .build()
            .unwrap();
        let fk: Vec<u32> = (0..64u32).map(|i| i % n_r as u32).collect();
        let s = TableBuilder::new("S")
            .target(
                "y",
                Domain::boolean("y").shared(),
                (0..64u32).map(|i| i % 2).collect(),
            )
            .foreign_key("fk", "R", rid, fk)
            .build()
            .unwrap();
        let st = StarSchema::new(
            s,
            vec![AttributeTable {
                fk: "fk".into(),
                table: r,
            }],
        )
        .unwrap();
        let lints = lint_star(&st, &LintConfig::default());
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::NearKeyFeature { column, .. } if column == "almost_key")));
    }
}
