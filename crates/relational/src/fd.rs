//! Functional dependencies over table instances.
//!
//! The join `T <- R ⋈ S` turns the key dependency `RID -> X_R` into the FD
//! `FK -> X_R` in `T` (Sec 3.1.1, footnote 4). This module checks FDs on
//! instances and detects acyclicity of FD sets (appendix C, Def C.1), which
//! is the precondition for the generalized redundancy result (Cor C.1).

use std::collections::HashMap;

use crate::error::Result;
use crate::table::Table;

/// A functional dependency `determinant -> dependents` between named
/// attributes of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Left-hand side attribute names.
    pub determinant: Vec<String>,
    /// Right-hand side attribute names.
    pub dependents: Vec<String>,
}

impl FunctionalDependency {
    /// Builds an FD from attribute-name slices.
    pub fn new(determinant: &[&str], dependents: &[&str]) -> Self {
        Self {
            determinant: determinant.iter().map(|s| s.to_string()).collect(),
            dependents: dependents.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Checks whether this FD holds in the given table instance.
    ///
    /// Runs in `O(n_rows * (|lhs| + |rhs|))` with a hash map keyed on the
    /// determinant values.
    pub fn holds_in(&self, table: &Table) -> Result<bool> {
        let lhs: Vec<_> = self
            .determinant
            .iter()
            .map(|n| table.column_by_name(n))
            .collect::<Result<_>>()?;
        let rhs: Vec<_> = self
            .dependents
            .iter()
            .map(|n| table.column_by_name(n))
            .collect::<Result<_>>()?;
        let mut seen: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
        for row in 0..table.n_rows() {
            let key: Vec<u32> = lhs.iter().map(|c| c.get(row)).collect();
            let val: Vec<u32> = rhs.iter().map(|c| c.get(row)).collect();
            match seen.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if e.get() != &val {
                        return Ok(false);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(val);
                }
            }
        }
        Ok(true)
    }
}

/// Whether a set of FDs is acyclic per Def C.1: the digraph with an edge
/// from every determinant attribute to every dependent attribute has no
/// cycle.
pub fn is_acyclic(fds: &[FunctionalDependency]) -> bool {
    // Intern attribute names to indices.
    let mut idx_of: HashMap<&str, usize> = HashMap::new();
    let mut next = 0usize;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for fd in fds {
        for l in &fd.determinant {
            let li = *idx_of.entry(l.as_str()).or_insert_with(|| {
                let i = next;
                next += 1;
                i
            });
            for r in &fd.dependents {
                let ri = *idx_of.entry(r.as_str()).or_insert_with(|| {
                    let i = next;
                    next += 1;
                    i
                });
                edges.push((li, ri));
            }
        }
    }
    let n = next;
    let mut adj = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (a, b) in edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    // Kahn's algorithm: acyclic iff all nodes are drained.
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut drained = 0;
    while let Some(u) = queue.pop() {
        drained += 1;
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    drained == n
}

/// The set of attributes made *redundant* by an acyclic FD set (Cor C.1):
/// every attribute appearing in some dependent set.
pub fn redundant_attributes(fds: &[FunctionalDependency]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for fd in fds {
        for r in &fd.dependents {
            if !out.contains(r) {
                out.push(r.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::error::RelationalError;
    use crate::table::TableBuilder;

    fn joined() -> Table {
        // fk -> (a, b) holds; fk -> c does not.
        TableBuilder::new("T")
            .foreign_key(
                "fk",
                "R",
                Domain::indexed("fk", 3).shared(),
                vec![0, 1, 2, 0, 1],
            )
            .feature("a", Domain::indexed("a", 2).shared(), vec![0, 1, 1, 0, 1])
            .feature("b", Domain::indexed("b", 4).shared(), vec![3, 2, 1, 3, 2])
            .feature("c", Domain::indexed("c", 2).shared(), vec![0, 0, 0, 1, 0])
            .build()
            .unwrap()
    }

    #[test]
    fn holds_detects_valid_fd() {
        let t = joined();
        assert!(FunctionalDependency::new(&["fk"], &["a", "b"])
            .holds_in(&t)
            .unwrap());
    }

    #[test]
    fn holds_detects_violation() {
        let t = joined();
        assert!(!FunctionalDependency::new(&["fk"], &["c"])
            .holds_in(&t)
            .unwrap());
    }

    #[test]
    fn composite_determinant() {
        let t = joined();
        // (fk, c) -> a trivially holds since fk -> a holds.
        assert!(FunctionalDependency::new(&["fk", "c"], &["a"])
            .holds_in(&t)
            .unwrap());
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = joined();
        assert!(matches!(
            FunctionalDependency::new(&["nope"], &["a"]).holds_in(&t),
            Err(RelationalError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn acyclicity() {
        let acyclic = vec![
            FunctionalDependency::new(&["fk"], &["a", "b"]),
            FunctionalDependency::new(&["a"], &["c"]),
        ];
        assert!(is_acyclic(&acyclic));
        let cyclic = vec![
            FunctionalDependency::new(&["a"], &["b"]),
            FunctionalDependency::new(&["b"], &["a"]),
        ];
        assert!(!is_acyclic(&cyclic));
        let self_loop = vec![FunctionalDependency::new(&["a"], &["a"])];
        assert!(!is_acyclic(&self_loop));
        assert!(is_acyclic(&[]));
    }

    #[test]
    fn redundant_set_is_dependents() {
        let fds = vec![
            FunctionalDependency::new(&["fk"], &["a", "b"]),
            FunctionalDependency::new(&["a"], &["c", "b"]),
        ];
        let red = redundant_attributes(&fds);
        assert_eq!(red, vec!["a".to_string(), "b".into(), "c".into()]);
    }
}
