//! Information-theoretic quantities over nominal columns.
//!
//! Implements the notions the paper uses for filter-based feature
//! selection and its redundancy/relevancy analysis (Secs 2.2, 3.1,
//! appendix B): entropy `H`, mutual information `I(F;Y)` (Def B.1), and
//! information gain ratio `IGR(F;Y) = I(F;Y) / H(F)`.
//!
//! All logarithms are base 2 (bits).

/// Entropy `H(X)` in bits of the empirical distribution of `codes` over a
/// domain of `domain_size` values, restricted to `rows`.
pub fn entropy(codes: &[u32], domain_size: usize, rows: &[usize]) -> f64 {
    let mut counts = vec![0u64; domain_size];
    for &r in rows {
        counts[codes[r] as usize] += 1;
    }
    entropy_of_counts(&counts)
}

/// Entropy in bits of a count histogram.
pub fn entropy_of_counts(counts: &[u64]) -> f64 {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Mutual information `I(A;B)` in bits between two nominal columns over
/// `rows` (Def B.1): `I(A;B) = H(B) - H(B|A)`.
pub fn mutual_information(
    a_codes: &[u32],
    a_size: usize,
    b_codes: &[u32],
    b_size: usize,
    rows: &[usize],
) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let mut joint = vec![0u64; a_size * b_size];
    let mut a_counts = vec![0u64; a_size];
    let mut b_counts = vec![0u64; b_size];
    for &r in rows {
        let a = a_codes[r] as usize;
        let b = b_codes[r] as usize;
        joint[a * b_size + b] += 1;
        a_counts[a] += 1;
        b_counts[b] += 1;
    }
    let n = rows.len() as f64;
    let mut mi = 0.0;
    for a in 0..a_size {
        if a_counts[a] == 0 {
            continue;
        }
        let pa = a_counts[a] as f64 / n;
        for b in 0..b_size {
            let c = joint[a * b_size + b];
            if c == 0 {
                continue;
            }
            let pab = c as f64 / n;
            let pb = b_counts[b] as f64 / n;
            mi += pab * (pab / (pa * pb)).log2();
        }
    }
    mi.max(0.0) // clamp tiny negative rounding
}

/// Information gain ratio `IGR(F;Y) = I(F;Y) / H(F)`, the normalization
/// that "penalizes features with larger domains" (Sec 3.1.2). Returns 0
/// when `H(F) = 0` (a constant feature carries no information).
pub fn information_gain_ratio(
    f_codes: &[u32],
    f_size: usize,
    y_codes: &[u32],
    y_size: usize,
    rows: &[usize],
) -> f64 {
    let h_f = entropy(f_codes, f_size, rows);
    if h_f <= 0.0 {
        return 0.0;
    }
    mutual_information(f_codes, f_size, y_codes, y_size, rows) / h_f
}

/// Conditional mutual information `I(A;B|C)` in bits — the edge weight of
/// TAN's Chow–Liu tree (`I(X_i;X_j|Y)`, appendix E).
pub fn conditional_mutual_information(
    a_codes: &[u32],
    a_size: usize,
    b_codes: &[u32],
    b_size: usize,
    c_codes: &[u32],
    c_size: usize,
    rows: &[usize],
) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let mut joint = vec![0u64; a_size * b_size * c_size];
    let mut ac = vec![0u64; a_size * c_size];
    let mut bc = vec![0u64; b_size * c_size];
    let mut c_counts = vec![0u64; c_size];
    for &r in rows {
        let a = a_codes[r] as usize;
        let b = b_codes[r] as usize;
        let c = c_codes[r] as usize;
        joint[(a * b_size + b) * c_size + c] += 1;
        ac[a * c_size + c] += 1;
        bc[b * c_size + c] += 1;
        c_counts[c] += 1;
    }
    let n = rows.len() as f64;
    let mut cmi = 0.0;
    for a in 0..a_size {
        for b in 0..b_size {
            for c in 0..c_size {
                let j = joint[(a * b_size + b) * c_size + c];
                if j == 0 {
                    continue;
                }
                let p_abc = j as f64 / n;
                let p_ac = ac[a * c_size + c] as f64 / n;
                let p_bc = bc[b * c_size + c] as f64 / n;
                let p_c = c_counts[c] as f64 / n;
                cmi += p_abc * (p_c * p_abc / (p_ac * p_bc)).log2();
            }
        }
    }
    cmi.max(0.0)
}

/// Entropy of the conditional distribution `H(A|B)` in bits.
pub fn conditional_entropy(
    a_codes: &[u32],
    a_size: usize,
    b_codes: &[u32],
    b_size: usize,
    rows: &[usize],
) -> f64 {
    entropy(a_codes, a_size, rows) - mutual_information(a_codes, a_size, b_codes, b_size, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn entropy_of_fair_coin_is_one_bit() {
        let codes = vec![0u32, 1, 0, 1];
        let rows: Vec<usize> = (0..4).collect();
        assert!((entropy(&codes, 2, &rows) - 1.0).abs() < EPS);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        let codes = vec![1u32; 10];
        let rows: Vec<usize> = (0..10).collect();
        assert!(entropy(&codes, 3, &rows).abs() < EPS);
        assert_eq!(entropy(&codes, 3, &[]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_quaternary_is_two_bits() {
        let codes = vec![0u32, 1, 2, 3];
        let rows: Vec<usize> = (0..4).collect();
        assert!((entropy(&codes, 4, &rows) - 2.0).abs() < EPS);
    }

    #[test]
    fn mi_of_identical_columns_is_entropy() {
        let codes = vec![0u32, 1, 0, 1, 1, 0];
        let rows: Vec<usize> = (0..6).collect();
        let mi = mutual_information(&codes, 2, &codes, 2, &rows);
        assert!((mi - entropy(&codes, 2, &rows)).abs() < EPS);
    }

    #[test]
    fn mi_of_independent_columns_is_zero() {
        // Perfectly balanced independent pair.
        let a = vec![0u32, 0, 1, 1];
        let b = vec![0u32, 1, 0, 1];
        let rows: Vec<usize> = (0..4).collect();
        assert!(mutual_information(&a, 2, &b, 2, &rows).abs() < EPS);
    }

    #[test]
    fn mi_is_symmetric() {
        let a = vec![0u32, 1, 2, 0, 1, 2, 1, 2];
        let b = vec![0u32, 0, 1, 1, 0, 1, 0, 1];
        let rows: Vec<usize> = (0..8).collect();
        let ab = mutual_information(&a, 3, &b, 2, &rows);
        let ba = mutual_information(&b, 2, &a, 3, &rows);
        assert!((ab - ba).abs() < EPS);
    }

    #[test]
    fn igr_normalizes_by_feature_entropy() {
        // F determines Y and H(F) = 2 bits, H(Y) = 1 bit -> IGR = 0.5.
        let f = vec![0u32, 1, 2, 3];
        let y = vec![0u32, 0, 1, 1];
        let rows: Vec<usize> = (0..4).collect();
        let igr = information_gain_ratio(&f, 4, &y, 2, &rows);
        assert!((igr - 0.5).abs() < EPS);
        // A binary feature identical to Y has IGR = 1.
        let igr2 = information_gain_ratio(&y, 2, &y, 2, &rows);
        assert!((igr2 - 1.0).abs() < EPS);
    }

    #[test]
    fn igr_of_constant_feature_is_zero() {
        let f = vec![0u32; 4];
        let y = vec![0u32, 1, 0, 1];
        let rows: Vec<usize> = (0..4).collect();
        assert_eq!(information_gain_ratio(&f, 2, &y, 2, &rows), 0.0);
    }

    #[test]
    fn theorem_3_1_fk_dominates_foreign_feature() {
        // FK with 4 values; F = f(FK) collapses pairs. Thm 3.1 says
        // I(F;Y) <= I(FK;Y) whatever Y is.
        let fk = vec![0u32, 1, 2, 3, 0, 1, 2, 3, 0, 2];
        let f: Vec<u32> = fk.iter().map(|&v| v / 2).collect();
        let y = vec![0u32, 1, 1, 0, 0, 1, 0, 0, 1, 1];
        let rows: Vec<usize> = (0..10).collect();
        let i_fk = mutual_information(&fk, 4, &y, 2, &rows);
        let i_f = mutual_information(&f, 2, &y, 2, &rows);
        assert!(i_f <= i_fk + EPS);
    }

    #[test]
    fn cmi_matches_mi_when_condition_constant() {
        let a = vec![0u32, 1, 0, 1, 1, 0];
        let b = vec![0u32, 1, 1, 1, 0, 0];
        let c = vec![0u32; 6];
        let rows: Vec<usize> = (0..6).collect();
        let cmi = conditional_mutual_information(&a, 2, &b, 2, &c, 1, &rows);
        let mi = mutual_information(&a, 2, &b, 2, &rows);
        assert!((cmi - mi).abs() < EPS);
    }

    #[test]
    fn cmi_zero_when_conditionally_independent() {
        // Given c, a and b are constants -> conditionally independent.
        let c = vec![0u32, 0, 1, 1];
        let a = c.clone();
        let b = c.clone();
        let rows: Vec<usize> = (0..4).collect();
        // I(A;B|C) = 0 because A and B are functions of C.
        let cmi = conditional_mutual_information(&a, 2, &b, 2, &c, 2, &rows);
        assert!(cmi.abs() < EPS);
    }

    #[test]
    fn conditional_entropy_chain_rule() {
        let a = vec![0u32, 1, 2, 0, 1, 2];
        let b = vec![0u32, 0, 1, 1, 0, 1];
        let rows: Vec<usize> = (0..6).collect();
        let h_a = entropy(&a, 3, &rows);
        let h_ab = conditional_entropy(&a, 3, &b, 2, &rows);
        let mi = mutual_information(&a, 3, &b, 2, &rows);
        assert!((h_a - h_ab - mi).abs() < EPS);
        assert!(h_ab >= -EPS);
    }
}
