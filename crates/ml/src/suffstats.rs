//! Sufficient statistics shared across a feature-selection run.
//!
//! Naive Bayes over nominal features is decomposable: everything a fit
//! needs is the class histogram plus one class-conditional count table
//! per feature, and those tables do not depend on which *other* features
//! are in the subset (the same decomposability that powers
//! `crates/factorized` and [`crate::incremental`]). A greedy wrapper
//! evaluates O(k) candidate subsets per step over the same `(data,
//! train)` pair, so rescanning the training rows per candidate is pure
//! waste: [`SuffStats`] computes each per-feature table **once** per
//! selection run and assembles any candidate model from the cached
//! tables with zero row scans.
//!
//! The same count tables drive the filter scores: `I(F;Y)` and
//! `IGR(F;Y)` are functions of the (feature value × class) joint
//! histogram, reproduced here in exactly the summation order of
//! [`crate::info`] so cached scores are bit-for-bit equal to the
//! direct ones.
//!
//! [`SweepFit`] is how classifiers plug in: Naive Bayes assembles from
//! the tables, logistic regression warm-starts SGD from the parent
//! subset's weights, and anything else falls back to its ordinary
//! [`Classifier::fit`].

use std::sync::OnceLock;
use std::time::Instant;

use crate::classifier::{Classifier, ErrorMetric};
use crate::dataset::Dataset;
use crate::info::entropy_of_counts;
use crate::logreg::LogisticRegression;
use crate::naive_bayes::{NaiveBayes, NaiveBayesModel};
use crate::tan::Tan;
use crate::tree::DecisionTree;

/// Class-conditional count tables over one `(data, train)` pair, built
/// lazily per feature and cached for the lifetime of the selection run.
///
/// The cache is immutable after construction in every observable way:
/// tables are computed at most once (thread-safe via [`OnceLock`], so
/// parallel candidate sweeps share them freely) and there is no
/// invalidation — a `SuffStats` borrows its `(data, train)` pair, so the
/// statistics cannot go stale while the cache is alive. New fold ⇒ new
/// `SuffStats`.
pub struct SuffStats<'a> {
    data: &'a Dataset,
    train: &'a [usize],
    /// `class_counts[y]` = training rows with label `y`.
    class_counts: Vec<u64>,
    /// When `train` is a contiguous range (the common full-table case),
    /// its bounds — table builds then take the gather-free blocked
    /// kernel over two contiguous `u32` slices instead of the
    /// double-gather row loop.
    train_range: Option<std::ops::Range<usize>>,
    /// Per feature, the flattened `n_classes × domain_size` count table
    /// `counts[y * d + v]`, built on first use.
    tables: Vec<OnceLock<Box<[u64]>>>,
}

impl<'a> SuffStats<'a> {
    /// Prepares a statistics cache for one `(data, train)` pair. The
    /// class histogram is computed eagerly (one pass over the labels);
    /// per-feature tables are built on first use.
    pub fn new(data: &'a Dataset, train: &'a [usize]) -> Self {
        let labels = data.labels();
        let mut class_counts = vec![0u64; data.n_classes()];
        for &r in train {
            class_counts[labels[r] as usize] += 1;
        }
        Self {
            data,
            train,
            class_counts,
            train_range: crate::kernels::contiguous_range(train),
            tables: (0..data.n_features()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The dataset the statistics are over.
    pub fn data(&self) -> &'a Dataset {
        self.data
    }

    /// The training rows the statistics are over.
    pub fn train(&self) -> &'a [usize] {
        self.train
    }

    /// Training-label histogram.
    pub fn class_counts(&self) -> &[u64] {
        &self.class_counts
    }

    /// The class-conditional count table for feature `f`, flattened
    /// `[y * |D_F| + v]`, computing it on first call (one morsel-driven
    /// pass over the training rows through [`crate::kernels`]) and
    /// serving it from cache afterwards. Builds go parallel only for
    /// large inputs outside an existing parallel region — a build
    /// triggered from inside a candidate-sweep worker runs sequentially
    /// — and either way the counts are the row-loop's exactly.
    pub fn table(&self, f: usize) -> &[u64] {
        let mut missed = false;
        let table = self.tables[f].get_or_init(|| {
            missed = true;
            let started = Instant::now();
            let _span = hamlet_obs::span!("ml.suffstats_build", feature = f);
            let feature = self.data.feature(f);
            let d = feature.domain_size;
            let c = self.data.n_classes();
            let labels = self.data.labels();
            let threads = hamlet_obs::env::resolved_threads();
            let counts = match &self.train_range {
                Some(range) => crate::kernels::class_count_table(
                    c,
                    d,
                    &labels[range.clone()],
                    &feature.codes[range.clone()],
                    threads,
                ),
                None => crate::kernels::class_count_table_gather(
                    c,
                    d,
                    labels,
                    &feature.codes,
                    self.train,
                    threads,
                ),
            };
            hamlet_obs::counter_add!(
                "hamlet_suffstats_build_us_total",
                started.elapsed().as_micros() as u64
            );
            counts.into_boxed_slice()
        });
        if missed {
            hamlet_obs::counter_add!("hamlet_suffstats_misses_total", 1);
        } else {
            hamlet_obs::counter_add!("hamlet_suffstats_hits_total", 1);
        }
        table
    }

    /// Pre-builds the count tables of `feats` across up to `threads`
    /// workers (one feature per worker; each inner build sees the
    /// parallel-region flag and scans sequentially). Later
    /// [`table`](Self::table) calls are all cache hits, so a selection
    /// run's statistics phase is one parallel pass instead of k lazy
    /// scans. Building a table twice is impossible — `OnceLock` keeps
    /// the first result — so warming is always safe.
    pub fn warm(&self, feats: &[usize], threads: usize) {
        let _span = hamlet_obs::span!("ml.suffstats_warm", feats = feats.len());
        hamlet_obs::parallel::run_indexed(feats.len(), threads, &|i| {
            let _ = self.table(feats[i]);
        });
    }

    /// Assembles a Naive Bayes model for `feats` from the cached tables
    /// — zero training-row scans once the tables are warm, and
    /// bit-for-bit equal to [`NaiveBayes::fit`] on the same `(data,
    /// train, feats)` because the float recipe (same counts, same
    /// operations, same order) is identical.
    pub fn nb_model(&self, smoothing: f64, feats: &[usize]) -> NaiveBayesModel {
        let _span = hamlet_obs::span!("ml.nb_assemble", feats = feats.len());
        hamlet_obs::counter_add!("hamlet_nb_fits_total", 1);
        let n_classes = self.data.n_classes();
        let alpha = smoothing;
        let total = self.train.len() as f64 + alpha * n_classes as f64;
        let log_prior: Vec<f64> = self
            .class_counts
            .iter()
            .map(|&c| ((c as f64 + alpha) / total).ln())
            .collect();

        let mut log_cond = Vec::with_capacity(feats.len());
        let mut domain_sizes = Vec::with_capacity(feats.len());
        for &f in feats {
            let d = self.data.feature(f).domain_size;
            let counts = self.table(f);
            let mut table = vec![0f64; n_classes * d];
            for y in 0..n_classes {
                let denom = self.class_counts[y] as f64 + alpha * d as f64;
                for v in 0..d {
                    table[y * d + v] = ((counts[y * d + v] as f64 + alpha) / denom).ln();
                }
            }
            log_cond.push(table);
            domain_sizes.push(d);
        }

        NaiveBayesModel::from_parts(feats.to_vec(), n_classes, log_prior, log_cond, domain_sizes)
    }

    /// Smoothed log-priors, the same float recipe as [`NaiveBayes::fit`].
    fn log_prior_vec(&self, smoothing: f64) -> Vec<f64> {
        let total = self.train.len() as f64 + smoothing * self.data.n_classes() as f64;
        self.class_counts
            .iter()
            .map(|&c| ((c as f64 + smoothing) / total).ln())
            .collect()
    }

    /// Transposed smoothed log-conditional table of feature `f`,
    /// `[v * n_classes + y]` (entry values identical to the model's
    /// `[y * d + v]` table; only the layout differs, so a row's class
    /// scores read contiguous floats).
    fn log_table_t(&self, smoothing: f64, f: usize) -> Vec<f64> {
        let c = self.data.n_classes();
        let d = self.data.feature(f).domain_size;
        let counts = self.table(f);
        let mut t = vec![0f64; d * c];
        for y in 0..c {
            let denom = self.class_counts[y] as f64 + smoothing * d as f64;
            for v in 0..d {
                t[v * c + y] = ((counts[y * d + v] as f64 + smoothing) / denom).ln();
            }
        }
        t
    }

    /// Validation errors of every forward trial `sort(selected ∪ {f})`
    /// for `f` in `candidates`, in candidate order — **bitwise
    /// identical** to assembling each trial's model and scoring it with
    /// [`NaiveBayesModel::batch_error`], but in one pass over `rows`
    /// per worker instead of one pass per candidate.
    ///
    /// Per row, the class scores of the shared parent prefix are
    /// accumulated once (`prefix[j]` = prior + the first `j` selected
    /// features' addends, in ascending feature order); each trial then
    /// resumes from the candidate's sorted insertion point, adds the
    /// candidate's addend, and replays the tail — the exact addition
    /// sequence of the trial's own model, so every float matches. Error
    /// accumulation over rows stays in row order per trial.
    ///
    /// Trials are chunked across up to `threads` scoped workers; each
    /// chunk owns disjoint accumulators, so the result is independent
    /// of the worker count.
    pub fn nb_forward_sweep_errors(
        &self,
        smoothing: f64,
        selected: &[usize],
        candidates: &[usize],
        rows: &[usize],
        metric: ErrorMetric,
        threads: usize,
    ) -> Vec<f64> {
        let mut sorted_sel: Vec<usize> = selected.to_vec();
        sorted_sel.sort_unstable();
        self.nb_sweep_errors(
            smoothing,
            &sorted_sel,
            &candidates
                .iter()
                .map(|&f| SweepTrial {
                    insert: Some(f),
                    skip: None,
                })
                .collect::<Vec<_>>(),
            rows,
            metric,
            threads,
        )
    }

    /// Validation errors of every backward trial `selected \ {selected[i]}`
    /// for each position `i`, in position order — bitwise identical to
    /// per-trial assembly + [`NaiveBayesModel::batch_error`], computed
    /// in one pass over `rows` per worker. `selected` must be sorted
    /// ascending (backward search keeps it that way).
    pub fn nb_backward_sweep_errors(
        &self,
        smoothing: f64,
        selected: &[usize],
        rows: &[usize],
        metric: ErrorMetric,
        threads: usize,
    ) -> Vec<f64> {
        debug_assert!(selected.windows(2).all(|w| w[0] < w[1]));
        self.nb_sweep_errors(
            smoothing,
            selected,
            &(0..selected.len())
                .map(|i| SweepTrial {
                    insert: None,
                    skip: Some(i),
                })
                .collect::<Vec<_>>(),
            rows,
            metric,
            threads,
        )
    }

    /// Shared sweep core: each trial is `sorted_sel` with either one
    /// feature inserted at its sorted position or one position skipped.
    fn nb_sweep_errors(
        &self,
        smoothing: f64,
        sorted_sel: &[usize],
        trials: &[SweepTrial],
        rows: &[usize],
        metric: ErrorMetric,
        threads: usize,
    ) -> Vec<f64> {
        if trials.is_empty() {
            return Vec::new();
        }
        if rows.is_empty() {
            // metric.eval on no rows is 0.0 for both metrics.
            return vec![0.0; trials.len()];
        }
        let c = self.data.n_classes();
        let k = sorted_sel.len();
        let n = rows.len();
        let prior = self.log_prior_vec(smoothing);
        let sel_tables: Vec<Vec<f64>> = sorted_sel
            .iter()
            .map(|&f| self.log_table_t(smoothing, f))
            .collect();
        // The evaluation rows are typically a shuffled permutation, so
        // `codes[r]` in the scoring loop would be a random gather per
        // (row, trial). Gather each involved column once, up front, into
        // dense arrays aligned with the row iteration order — pure data
        // movement, so every float the scoring loop produces is
        // untouched. Offsets are pre-scaled by `c` to index the
        // transposed tables directly.
        let gather = |f: usize| -> Vec<u32> {
            let codes = &self.data.feature(f).codes;
            rows.iter().map(|&r| codes[r] * c as u32).collect()
        };
        let sel_offs: Vec<Vec<u32>> = sorted_sel.iter().map(|&f| gather(f)).collect();
        let labels = self.data.labels();
        let truths: Vec<u32> = rows.iter().map(|&r| labels[r]).collect();

        // Chunk trials across workers; every chunk scans the rows once
        // with its own accumulators, so results do not depend on the
        // worker count.
        let chunk = trials.len().div_ceil(threads.max(1));
        let n_chunks = trials.len().div_ceil(chunk);
        let errors = |wrong: &[u64], sq: &[f64]| -> Vec<f64> {
            match metric {
                ErrorMetric::ZeroOne => wrong.iter().map(|&w| w as f64 / n as f64).collect(),
                ErrorMetric::Rmse => sq.iter().map(|&s| (s / n as f64).sqrt()).collect(),
            }
        };

        if k == 0 {
            // Empty parent ⇒ every trial inserts one feature, and its
            // score is `prior[y] + table[v*c+y]` exactly. Fusing the
            // prior into each candidate's table once turns scoring into
            // a block lookup + argmax per (row, trial) — the same
            // single addition per class, performed ahead of the scan.
            let per_chunk = hamlet_obs::parallel::run_indexed(n_chunks, threads, &|ci| {
                let lo = ci * chunk;
                let hi = (lo + chunk).min(trials.len());
                let infos: Vec<(Vec<u32>, Vec<f64>)> = trials[lo..hi]
                    .iter()
                    .map(|t| {
                        let f = t.insert.expect("empty parent has insert trials only");
                        let mut pt = self.log_table_t(smoothing, f);
                        for block in pt.chunks_exact_mut(c) {
                            for (s, &p) in block.iter_mut().zip(&prior) {
                                // IEEE addition commutes bitwise, so
                                // `l + p` equals the recipe's `p + l`.
                                *s += p;
                            }
                        }
                        (gather(f), pt)
                    })
                    .collect();
                let mut wrong = vec![0u64; infos.len()];
                let mut sq = vec![0f64; infos.len()];
                for i in 0..n {
                    let truth = truths[i];
                    for (t, (offs, pt)) in infos.iter().enumerate() {
                        let off = offs[i] as usize;
                        let best = argmax(&pt[off..off + c]);
                        match metric {
                            ErrorMetric::ZeroOne => wrong[t] += u64::from(best as u32 != truth),
                            ErrorMetric::Rmse => {
                                let diff = best as f64 - truth as f64;
                                sq[t] += diff * diff;
                            }
                        }
                    }
                }
                errors(&wrong, &sq)
            });
            return per_chunk.into_iter().flatten().collect();
        }

        let per_chunk = hamlet_obs::parallel::run_indexed(n_chunks, threads, &|ci| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(trials.len());
            let infos: Vec<TrialInfo> = trials[lo..hi]
                .iter()
                .map(|t| match (t.insert, t.skip) {
                    (Some(f), None) => (
                        sorted_sel.partition_point(|&s| s < f),
                        Some((gather(f), self.log_table_t(smoothing, f))),
                    ),
                    (None, Some(i)) => (i, None),
                    _ => unreachable!("a trial inserts xor skips"),
                })
                .collect();
            let mut prefix = vec![0f64; (k + 1) * c];
            let mut score = vec![0f64; c];
            let mut wrong = vec![0u64; infos.len()];
            let mut sq = vec![0f64; infos.len()];
            for i in 0..n {
                prefix[..c].copy_from_slice(&prior);
                for j in 0..k {
                    let off = sel_offs[j][i] as usize;
                    let (done, rest) = prefix.split_at_mut((j + 1) * c);
                    let prev = &done[j * c..];
                    let block = &sel_tables[j][off..off + c];
                    for y in 0..c {
                        rest[y] = prev[y] + block[y];
                    }
                }
                let truth = truths[i];
                for (t, (pos, cand)) in infos.iter().enumerate() {
                    let p_block = &prefix[pos * c..pos * c + c];
                    // Resume from the parent prefix, fold in the
                    // trial's remaining addends in sorted order (the
                    // first one fused with the resume copy), and argmax.
                    let best = match cand {
                        Some((offs, table)) => {
                            let off = offs[i] as usize;
                            let block = &table[off..off + c];
                            for ((s, &p), &l) in score.iter_mut().zip(p_block).zip(block) {
                                *s = p + l;
                            }
                            for j in *pos..k {
                                let off = sel_offs[j][i] as usize;
                                let block = &sel_tables[j][off..off + c];
                                for (s, &l) in score.iter_mut().zip(block) {
                                    *s += l;
                                }
                            }
                            argmax(&score)
                        }
                        None if *pos + 1 == k => argmax(p_block),
                        None => {
                            let off = sel_offs[*pos + 1][i] as usize;
                            let block = &sel_tables[*pos + 1][off..off + c];
                            for ((s, &p), &l) in score.iter_mut().zip(p_block).zip(block) {
                                *s = p + l;
                            }
                            for j in *pos + 2..k {
                                let off = sel_offs[j][i] as usize;
                                let block = &sel_tables[j][off..off + c];
                                for (s, &l) in score.iter_mut().zip(block) {
                                    *s += l;
                                }
                            }
                            argmax(&score)
                        }
                    };
                    match metric {
                        ErrorMetric::ZeroOne => wrong[t] += u64::from(best as u32 != truth),
                        ErrorMetric::Rmse => {
                            let diff = best as f64 - truth as f64;
                            sq[t] += diff * diff;
                        }
                    }
                }
            }
            errors(&wrong, &sq)
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Marginal feature-value histogram of feature `f` (column sums of
    /// its count table).
    fn value_counts(&self, f: usize) -> Vec<u64> {
        let d = self.data.feature(f).domain_size;
        let table = self.table(f);
        let mut counts = vec![0u64; d];
        for (v, count) in counts.iter_mut().enumerate() {
            for y in 0..self.data.n_classes() {
                *count += table[y * d + v];
            }
        }
        counts
    }

    /// `I(F;Y)` in bits from the cached table — bit-for-bit equal to
    /// [`crate::info::mutual_information`] over the training rows (the
    /// integer histograms are identical and the float summation runs in
    /// the same order).
    pub fn mutual_information(&self, f: usize) -> f64 {
        if self.train.is_empty() {
            return 0.0;
        }
        let d = self.data.feature(f).domain_size;
        let n_classes = self.data.n_classes();
        let table = self.table(f);
        let a_counts = self.value_counts(f);
        let n = self.train.len() as f64;
        let mut mi = 0.0;
        for a in 0..d {
            if a_counts[a] == 0 {
                continue;
            }
            let pa = a_counts[a] as f64 / n;
            for b in 0..n_classes {
                let c = table[b * d + a];
                if c == 0 {
                    continue;
                }
                let pab = c as f64 / n;
                let pb = self.class_counts[b] as f64 / n;
                mi += pab * (pab / (pa * pb)).log2();
            }
        }
        mi.max(0.0)
    }

    /// `IGR(F;Y) = I(F;Y) / H(F)` from the cached table — bit-for-bit
    /// equal to [`crate::info::information_gain_ratio`] over the
    /// training rows.
    pub fn information_gain_ratio(&self, f: usize) -> f64 {
        let h_f = entropy_of_counts(&self.value_counts(f));
        if h_f <= 0.0 {
            return 0.0;
        }
        self.mutual_information(f) / h_f
    }
}

/// Index of the strictly greatest score — lowest index on ties, the
/// same rule as `predict_row`'s `scores[y] > scores[best]` scan, in a
/// branch-free form (mispredicted compares dominate the scoring loop
/// otherwise).
#[inline]
fn argmax(block: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_val = block[0];
    for (y, &s) in block.iter().enumerate().skip(1) {
        let better = s > best_val;
        best = if better { y } else { best };
        best_val = if better { s } else { best_val };
    }
    best
}

/// One trial of a greedy sweep: the sorted parent subset with either
/// one feature inserted at its sorted position (`insert`) or one
/// position dropped (`skip`). Exactly one of the two is set.
struct SweepTrial {
    insert: Option<usize>,
    skip: Option<usize>,
}

/// Per-trial scoring state: the resume position in the parent prefix,
/// plus (for insertions) the candidate's gathered code offsets and
/// transposed log table.
type TrialInfo = (usize, Option<(Vec<u32>, Vec<f64>)>);

impl std::fmt::Debug for SuffStats<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuffStats")
            .field("n_train", &self.train.len())
            .field("n_features", &self.tables.len())
            .field(
                "tables_built",
                &self.tables.iter().filter(|t| t.get().is_some()).count(),
            )
            .finish()
    }
}

/// Fitting through a [`SuffStats`] cache, with an optional warm-start
/// model from the parent subset of a greedy step.
///
/// The contract every implementation must keep: for the `(data, train)`
/// pair the statistics were built over, `fit_swept(stats, feats, warm)`
/// must predict like a classifier trained on that pair — and when the
/// classifier is deterministic-decomposable (Naive Bayes), the result is
/// **bit-for-bit equal** to [`Classifier::fit`], warm or not. Classifiers
/// with nothing to gain from the cache keep the provided default, which
/// simply delegates to their ordinary fit.
pub trait SweepFit: Classifier {
    /// Fits `feats` over the cache's `(data, train)` pair, optionally
    /// warm-starting from the parent subset's fitted model.
    fn fit_swept(
        &self,
        stats: &SuffStats<'_>,
        feats: &[usize],
        warm: Option<&Self::Fitted>,
    ) -> Self::Fitted {
        let _ = warm;
        self.fit(stats.data(), stats.train(), feats)
    }

    /// Scores a swept model on `rows` — the metric evaluation a wrapper
    /// performs once per candidate. Must return **exactly**
    /// `metric.eval(model, data, rows)`; the default does precisely
    /// that, and overrides may only change how fast the same floats are
    /// produced (Naive Bayes scores through
    /// [`NaiveBayesModel::batch_error`], which is bitwise identical but
    /// allocation-free).
    fn eval_swept(
        &self,
        model: &Self::Fitted,
        data: &Dataset,
        rows: &[usize],
        metric: ErrorMetric,
    ) -> f64 {
        metric.eval(model, data, rows)
    }

    /// Scores one entire forward sweep at once: the validation error of
    /// `sort(selected ∪ {f})` for every `f` in `candidates`, in
    /// candidate order. Returning `None` (the default) means "no
    /// batched path" and the search falls back to one
    /// `fit_swept` + `eval_swept` per candidate. An override must
    /// return errors **bitwise identical** to that fallback.
    fn forward_sweep(
        &self,
        stats: &SuffStats<'_>,
        selected: &[usize],
        candidates: &[usize],
        rows: &[usize],
        metric: ErrorMetric,
        threads: usize,
    ) -> Option<Vec<f64>> {
        let _ = (stats, selected, candidates, rows, metric, threads);
        None
    }

    /// Scores one entire backward sweep at once: the validation error
    /// of `selected \ {selected[i]}` for every position `i`, in
    /// position order (`selected` is sorted ascending during backward
    /// search). Same contract as [`SweepFit::forward_sweep`].
    fn backward_sweep(
        &self,
        stats: &SuffStats<'_>,
        selected: &[usize],
        rows: &[usize],
        metric: ErrorMetric,
        threads: usize,
    ) -> Option<Vec<f64>> {
        let _ = (stats, selected, rows, metric, threads);
        None
    }
}

impl SweepFit for NaiveBayes {
    fn fit_swept(
        &self,
        stats: &SuffStats<'_>,
        feats: &[usize],
        _warm: Option<&NaiveBayesModel>,
    ) -> NaiveBayesModel {
        stats.nb_model(self.smoothing, feats)
    }

    fn eval_swept(
        &self,
        model: &NaiveBayesModel,
        data: &Dataset,
        rows: &[usize],
        metric: ErrorMetric,
    ) -> f64 {
        model.batch_error(data, rows, metric)
    }

    fn forward_sweep(
        &self,
        stats: &SuffStats<'_>,
        selected: &[usize],
        candidates: &[usize],
        rows: &[usize],
        metric: ErrorMetric,
        threads: usize,
    ) -> Option<Vec<f64>> {
        Some(stats.nb_forward_sweep_errors(
            self.smoothing,
            selected,
            candidates,
            rows,
            metric,
            threads,
        ))
    }

    fn backward_sweep(
        &self,
        stats: &SuffStats<'_>,
        selected: &[usize],
        rows: &[usize],
        metric: ErrorMetric,
        threads: usize,
    ) -> Option<Vec<f64>> {
        Some(stats.nb_backward_sweep_errors(self.smoothing, selected, rows, metric, threads))
    }
}

impl SweepFit for LogisticRegression {
    fn fit_swept(
        &self,
        stats: &SuffStats<'_>,
        feats: &[usize],
        warm: Option<&Self::Fitted>,
    ) -> Self::Fitted {
        self.fit_source_warm(stats.data(), stats.train(), feats, warm)
    }
}

impl SweepFit for Tan {}

impl SweepFit for DecisionTree {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;
    use crate::info::{information_gain_ratio, mutual_information};

    fn data() -> Dataset {
        let n = 240u32;
        let x0: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let x1: Vec<u32> = (0..n).map(|i| (i * 7 + 1) % 5).collect();
        let x2: Vec<u32> = (0..n).map(|i| (i / 3) % 4).collect();
        let y: Vec<u32> = x0.iter().map(|&v| u32::from(v == 0)).collect();
        Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 3,
                    codes: x0,
                },
                Feature {
                    name: "x1".into(),
                    domain_size: 5,
                    codes: x1,
                },
                Feature {
                    name: "x2".into(),
                    domain_size: 4,
                    codes: x2,
                },
            ],
            y,
            2,
        )
    }

    #[test]
    fn nb_assembly_is_bit_for_bit_equal_to_direct_fit() {
        let d = data();
        let train: Vec<usize> = (0..160).step_by(2).collect();
        let stats = SuffStats::new(&d, &train);
        let nb = NaiveBayes::default();
        for feats in [vec![], vec![0], vec![1, 2], vec![0, 1, 2]] {
            let direct = nb.fit(&d, &train, &feats);
            let assembled = stats.nb_model(nb.smoothing, &feats);
            assert_eq!(direct, assembled, "feats {feats:?}");
            let swept = nb.fit_swept(&stats, &feats, None);
            assert_eq!(direct, swept);
        }
    }

    #[test]
    fn nb_assembly_matches_with_non_default_smoothing() {
        let d = data();
        let train: Vec<usize> = (3..200).collect();
        let stats = SuffStats::new(&d, &train);
        let nb = NaiveBayes::new(0.25);
        let direct = nb.fit(&d, &train, &[0, 2]);
        assert_eq!(direct, nb.fit_swept(&stats, &[0, 2], None));
    }

    #[test]
    fn cached_filter_scores_are_bit_for_bit_equal() {
        let d = data();
        let train: Vec<usize> = (0..240).filter(|r| r % 3 != 1).collect();
        let stats = SuffStats::new(&d, &train);
        for f in 0..d.n_features() {
            let feat = d.feature(f);
            let mi = mutual_information(&feat.codes, feat.domain_size, d.labels(), 2, &train);
            let igr = information_gain_ratio(&feat.codes, feat.domain_size, d.labels(), 2, &train);
            assert_eq!(stats.mutual_information(f), mi, "MI mismatch on {f}");
            assert_eq!(stats.information_gain_ratio(f), igr, "IGR mismatch on {f}");
        }
    }

    #[test]
    fn empty_train_set_scores_zero() {
        let d = data();
        let train: Vec<usize> = Vec::new();
        let stats = SuffStats::new(&d, &train);
        assert_eq!(stats.mutual_information(0), 0.0);
        assert_eq!(stats.information_gain_ratio(0), 0.0);
    }

    #[test]
    fn tables_are_built_once_and_shared_across_threads() {
        let d = data();
        let train: Vec<usize> = (0..240).collect();
        let stats = SuffStats::new(&d, &train);
        let before = hamlet_obs::metrics::counter("hamlet_suffstats_misses_total").get();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        let _ = stats.table(1);
                    }
                });
            }
        });
        let misses = hamlet_obs::metrics::counter("hamlet_suffstats_misses_total").get() - before;
        assert_eq!(misses, 1, "the table must be built exactly once");
        assert!(hamlet_obs::metrics::counter("hamlet_suffstats_hits_total").get() >= 31);
    }

    #[test]
    fn batch_error_is_bitwise_equal_to_metric_eval() {
        let d = data();
        let train: Vec<usize> = (0..160).collect();
        let val: Vec<usize> = (160..240).collect();
        let nb = NaiveBayes::default();
        for feats in [vec![], vec![1], vec![0, 1, 2]] {
            let model = nb.fit(&d, &train, &feats);
            for metric in [ErrorMetric::ZeroOne, ErrorMetric::Rmse] {
                let slow = metric.eval(&model, &d, &val);
                let fast = nb.eval_swept(&model, &d, &val, metric);
                assert_eq!(slow.to_bits(), fast.to_bits(), "{metric:?} on {feats:?}");
            }
        }
    }

    #[test]
    fn sweep_errors_are_bitwise_equal_to_per_trial_scoring() {
        let d = data();
        let train: Vec<usize> = (0..160).collect();
        let val: Vec<usize> = (160..240).collect();
        let stats = SuffStats::new(&d, &train);
        for metric in [ErrorMetric::ZeroOne, ErrorMetric::Rmse] {
            for threads in [1, 3] {
                // Empty parent: exercises the fused prior+table path.
                let first =
                    stats.nb_forward_sweep_errors(0.5, &[], &[0, 1, 2], &val, metric, threads);
                for (i, &f) in [0usize, 1, 2].iter().enumerate() {
                    let model = stats.nb_model(0.5, &[f]);
                    let direct = metric.eval(&model, &d, &val);
                    assert_eq!(
                        direct.to_bits(),
                        first[i].to_bits(),
                        "{metric:?} single {f}"
                    );
                }
                // Forward: parent {1}, candidates {0, 2} (unsorted parent
                // order exercised via the engine path elsewhere).
                let fwd = stats.nb_forward_sweep_errors(0.5, &[1], &[0, 2], &val, metric, threads);
                for (i, &f) in [0usize, 2].iter().enumerate() {
                    let mut trial = vec![1, f];
                    trial.sort_unstable();
                    let model = stats.nb_model(0.5, &trial);
                    let direct = metric.eval(&model, &d, &val);
                    assert_eq!(direct.to_bits(), fwd[i].to_bits(), "{metric:?} insert {f}");
                }
                // Backward: drop each position of the sorted full set.
                let bwd = stats.nb_backward_sweep_errors(0.5, &[0, 1, 2], &val, metric, threads);
                for (i, err) in bwd.iter().enumerate() {
                    let mut trial = vec![0, 1, 2];
                    trial.remove(i);
                    let model = stats.nb_model(0.5, &trial);
                    let direct = metric.eval(&model, &d, &val);
                    assert_eq!(direct.to_bits(), err.to_bits(), "{metric:?} drop {i}");
                }
            }
        }
    }

    #[test]
    fn warm_prebuilds_every_table_and_counts_match_lazy_builds() {
        let d = data();
        // Scattered train rows: the gather kernel path.
        let train: Vec<usize> = (0..240).filter(|r| r % 7 != 2).collect();
        let warmed = SuffStats::new(&d, &train);
        warmed.warm(&[0, 1, 2], 4);
        let lazy = SuffStats::new(&d, &train);
        let before = hamlet_obs::metrics::counter("hamlet_suffstats_misses_total").get();
        for f in 0..3 {
            assert_eq!(warmed.table(f), lazy.table(f), "feature {f}");
        }
        // The warmed cache served hits only: its three reads above added
        // no misses (lazy added exactly three).
        let misses = hamlet_obs::metrics::counter("hamlet_suffstats_misses_total").get() - before;
        assert_eq!(misses, 3);
        // Contiguous train rows: the gather-free kernel path, same counts.
        let contiguous: Vec<usize> = (30..210).collect();
        let fast = SuffStats::new(&d, &contiguous);
        let mut naive = vec![0u64; 2 * d.feature(1).domain_size];
        let dim = d.feature(1).domain_size;
        for &r in &contiguous {
            naive[d.labels()[r] as usize * dim + d.feature(1).codes[r] as usize] += 1;
        }
        assert_eq!(fast.table(1), naive.as_slice());
    }

    #[test]
    fn logreg_sweep_fit_matches_cold_fit_without_warm_model() {
        let d = data();
        let train: Vec<usize> = (0..200).collect();
        let stats = SuffStats::new(&d, &train);
        let lr = LogisticRegression::l2(0.05).with_seed(9);
        let cold = lr.fit(&d, &train, &[0, 1]);
        let swept = lr.fit_swept(&stats, &[0, 1], None);
        assert_eq!(cold, swept, "no warm model ⇒ identical SGD trajectory");
    }
}
