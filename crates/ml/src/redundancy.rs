//! Empirical feature redundancy — Definitions B.2–B.4 and Proposition
//! 3.1, executable on instances.
//!
//! The appendix formalizes *weak relevance* (`P(Y|X) = P(Y|X−{F})` yet
//! some context `Z` makes `F` matter) and the *Markov blanket*
//! (`M_F` screens `F` off from everything else), then proves every
//! foreign feature is redundant with `{FK}` as its blanket. This module
//! evaluates those conditional-distribution identities on empirical
//! data, so the proposition can be checked (and demonstrated) on any
//! joined table. Identities that hold exactly in the population hold
//! exactly in the sample too when they stem from functional
//! dependencies — which is precisely Prop 3.1's situation.

use crate::dataset::Dataset;

/// Compares two empirical conditional distributions `P(Y | ctx)` for
/// equality within `tol`, where each context is the joint value of the
/// given feature subsets. Returns true iff for every observed context of
/// the *finer* conditioning set, the two conditionals agree.
///
/// Conditioning on `fine` and on `coarse ⊆ fine` yields the identity
/// `P(Y|fine) = P(Y|coarse)` exactly when the extra features of `fine`
/// carry no additional information — the quantity Defs B.2–B.4 test.
fn conditionals_agree(
    data: &Dataset,
    rows: &[usize],
    fine: &[usize],
    coarse: &[usize],
    tol: f64,
) -> bool {
    // Empirical P(Y | fine-context) and P(Y | coarse-context).
    let dist = |feats: &[usize]| {
        let mut counts: std::collections::HashMap<Vec<u32>, Vec<u64>> = Default::default();
        for &r in rows {
            let key: Vec<u32> = feats.iter().map(|&f| data.feature(f).codes[r]).collect();
            let entry = counts
                .entry(key)
                .or_insert_with(|| vec![0; data.n_classes()]);
            entry[data.labels()[r] as usize] += 1;
        }
        counts
    };
    let fine_dist = dist(fine);
    let coarse_dist = dist(coarse);
    let coarse_positions: Vec<usize> = coarse
        .iter()
        .map(|c| fine.iter().position(|f| f == c).expect("coarse ⊆ fine"))
        .collect();

    for (fine_key, fine_counts) in &fine_dist {
        let coarse_key: Vec<u32> = coarse_positions.iter().map(|&p| fine_key[p]).collect();
        let coarse_counts = coarse_dist
            .get(&coarse_key)
            .expect("every fine context projects to an observed coarse context");
        let nf: u64 = fine_counts.iter().sum();
        let nc: u64 = coarse_counts.iter().sum();
        for y in 0..data.n_classes() {
            let pf = fine_counts[y] as f64 / nf as f64;
            let pc = coarse_counts[y] as f64 / nc as f64;
            if (pf - pc).abs() > tol {
                return false;
            }
        }
    }
    true
}

/// Def B.3, empirically: is `blanket` a Markov blanket for feature `f`
/// among `all` (i.e. given the blanket, adding `f` changes no empirical
/// conditional of `Y` and the remaining features)?
///
/// For FD-induced blankets (`FK -> F`) the identity is exact: fixing the
/// blanket fixes `f`, so the two conditioning sets partition rows
/// identically and the conditionals agree to machine precision.
pub fn is_markov_blanket(
    data: &Dataset,
    rows: &[usize],
    f: usize,
    blanket: &[usize],
    tol: f64,
) -> bool {
    let mut with_f: Vec<usize> = blanket.to_vec();
    with_f.push(f);
    conditionals_agree(data, rows, &with_f, blanket, tol)
}

/// Def B.2, empirically: `f` is weakly relevant iff dropping it from the
/// full set changes nothing (`P(Y|X) = P(Y|X−{f})`) but *some* context
/// exists where it matters — here witnessed by `P(Y|f) != P(Y)`.
pub fn is_weakly_relevant(
    data: &Dataset,
    rows: &[usize],
    f: usize,
    all: &[usize],
    tol: f64,
) -> bool {
    let without: Vec<usize> = all.iter().copied().filter(|&x| x != f).collect();
    let drop_is_free = conditionals_agree(data, rows, all, &without, tol);
    let matters_alone = !conditionals_agree(data, rows, &[f], &[], tol);
    drop_is_free && matters_alone
}

/// Proposition 3.1, empirically: in a joined dataset where `fk`
/// functionally determines `f`, the feature `f` is *redundant* — weakly
/// relevant with `{fk}` as a Markov blanket.
pub fn is_redundant_given_fk(
    data: &Dataset,
    rows: &[usize],
    f: usize,
    fk: usize,
    all: &[usize],
    tol: f64,
) -> bool {
    is_weakly_relevant(data, rows, f, all, tol) && is_markov_blanket(data, rows, f, &[fk], tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;

    /// Joined-table shape: fk determines xr; y depends on xr (hence on
    /// fk); xs is independent noise.
    fn joined(n: usize) -> Dataset {
        let n_fk = 8u32;
        let fk: Vec<u32> = (0..n as u32).map(|i| i % n_fk).collect();
        let xr: Vec<u32> = fk.iter().map(|&k| k % 2).collect();
        let xs: Vec<u32> = (0..n as u32).map(|i| (i / 3) % 2).collect();
        let y: Vec<u32> = xr.clone();
        Dataset::new(
            vec![
                Feature {
                    name: "xs".into(),
                    domain_size: 2,
                    codes: xs,
                },
                Feature {
                    name: "fk".into(),
                    domain_size: n_fk as usize,
                    codes: fk,
                },
                Feature {
                    name: "xr".into(),
                    domain_size: 2,
                    codes: xr,
                },
            ],
            y,
            2,
        )
    }

    const TOL: f64 = 1e-9;

    #[test]
    fn fk_is_markov_blanket_for_xr() {
        let d = joined(240);
        let rows: Vec<usize> = (0..240).collect();
        assert!(is_markov_blanket(&d, &rows, 2, &[1], TOL));
    }

    #[test]
    fn xs_is_not_a_blanket_for_xr() {
        let d = joined(240);
        let rows: Vec<usize> = (0..240).collect();
        assert!(!is_markov_blanket(&d, &rows, 2, &[0], 0.05));
    }

    #[test]
    fn xr_is_weakly_relevant() {
        let d = joined(240);
        let rows: Vec<usize> = (0..240).collect();
        assert!(is_weakly_relevant(&d, &rows, 2, &[0, 1, 2], TOL));
    }

    #[test]
    fn prop_3_1_xr_redundant_given_fk() {
        let d = joined(240);
        let rows: Vec<usize> = (0..240).collect();
        assert!(is_redundant_given_fk(&d, &rows, 2, 1, &[0, 1, 2], TOL));
    }

    #[test]
    fn informative_nonredundant_feature_rejected() {
        // y depends on x directly and nothing determines x: dropping x
        // from the full set changes P(Y|·), so x is NOT weakly relevant
        // (it is strongly relevant), hence not redundant.
        let n = 200usize;
        let x: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
        let z: Vec<u32> = (0..n as u32).map(|i| (i / 2) % 3).collect();
        let d = Dataset::new(
            vec![
                Feature {
                    name: "x".into(),
                    domain_size: 2,
                    codes: x.clone(),
                },
                Feature {
                    name: "z".into(),
                    domain_size: 3,
                    codes: z,
                },
            ],
            x,
            2,
        );
        let rows: Vec<usize> = (0..n).collect();
        assert!(!is_weakly_relevant(&d, &rows, 0, &[0, 1], 0.05));
    }

    #[test]
    fn pure_noise_is_not_weakly_relevant() {
        // A feature independent of y fails the "matters alone" half.
        let n = 400usize;
        let noise: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
        let y: Vec<u32> = (0..n as u32).map(|i| (i / 2) % 2).collect();
        let d = Dataset::new(
            vec![Feature {
                name: "noise".into(),
                domain_size: 2,
                codes: noise,
            }],
            y,
            2,
        );
        let rows: Vec<usize> = (0..n).collect();
        assert!(!is_weakly_relevant(&d, &rows, 0, &[0], 0.05));
    }
}
