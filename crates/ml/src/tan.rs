//! Tree-Augmented Naive Bayes (TAN).
//!
//! Appendix E: "TAN strikes a balance between the efficiency of Naive
//! Bayes and the expressive power of general Bayesian networks. TAN
//! searches for strong conditional dependencies among pairs of features in
//! X given Y using mutual information to construct a tree of dependencies."
//!
//! Construction (Friedman et al., 1997): compute `I(X_i; X_j | Y)` for all
//! pairs, build a maximum-weight spanning tree, root it, and give every
//! non-root feature one feature-parent in addition to `Y`. The paper's
//! appendix observes that on KFK-joined data the FD `FK -> X_R` drags all
//! foreign features under `FK` in this tree, turning their CPTs into
//! unhelpful Kronecker deltas — our reproduction of that effect lives in
//! the experiments crate.

use crate::classifier::{Classifier, Model};
use crate::dataset::Dataset;
use crate::info::conditional_mutual_information;
use crate::source::CodeSource;

/// TAN learner configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Tan {
    /// Laplace smoothing pseudo-count for all CPTs.
    pub smoothing: f64,
    /// Upper bound on the number of cells `|D_X| * |D_parent| * |D_Y|` a
    /// conditional table may occupy. Pairs exceeding it (e.g. FK–FK with
    /// two 50 000-value domains) are excluded from the dependency tree;
    /// affected features fall back to a Naive-Bayes-style `P(X|Y)`.
    pub max_cpt_cells: usize,
}

impl Default for Tan {
    fn default() -> Self {
        Self {
            smoothing: 1.0,
            max_cpt_cells: 8_000_000,
        }
    }
}

/// A fitted TAN model.
#[derive(Debug, Clone, PartialEq)]
pub struct TanModel {
    feats: Vec<usize>,
    n_classes: usize,
    log_prior: Vec<f64>,
    /// Parent position (into `feats`) per selected feature; `None` for the
    /// root and for features whose candidate CPTs were all over budget.
    parents: Vec<Option<usize>>,
    /// Per feature: flattened log CPT.
    /// With a parent: `[y][parent_value][value]`; without: `[y][value]`.
    log_cond: Vec<Vec<f64>>,
    domain_sizes: Vec<usize>,
}

impl Classifier for Tan {
    type Fitted = TanModel;

    fn fit(&self, data: &Dataset, rows: &[usize], feats: &[usize]) -> TanModel {
        let n_classes = data.n_classes();
        let labels = data.labels();
        let alpha = self.smoothing;
        let m = feats.len();

        // Class priors.
        let mut class_counts = vec![0u64; n_classes];
        for &r in rows {
            class_counts[labels[r] as usize] += 1;
        }
        let total = rows.len() as f64 + alpha * n_classes as f64;
        let log_prior: Vec<f64> = class_counts
            .iter()
            .map(|&c| ((c as f64 + alpha) / total).ln())
            .collect();

        // Pairwise conditional MI, skipping over-budget pairs.
        let parents = if m >= 2 {
            let mut cmi = vec![f64::NEG_INFINITY; m * m];
            for i in 0..m {
                let fi = data.feature(feats[i]);
                for j in (i + 1)..m {
                    let fj = data.feature(feats[j]);
                    let cells = fi.domain_size * fj.domain_size * n_classes;
                    if cells > self.max_cpt_cells {
                        continue;
                    }
                    let w = conditional_mutual_information(
                        &fi.codes,
                        fi.domain_size,
                        &fj.codes,
                        fj.domain_size,
                        labels,
                        n_classes,
                        rows,
                    );
                    cmi[i * m + j] = w;
                    cmi[j * m + i] = w;
                }
            }
            maximum_spanning_forest_parents(&cmi, m)
        } else {
            vec![None; m]
        };

        // CPTs.
        let mut log_cond = Vec::with_capacity(m);
        let mut domain_sizes = Vec::with_capacity(m);
        for (i, &f) in feats.iter().enumerate() {
            let feature = data.feature(f);
            let d = feature.domain_size;
            domain_sizes.push(d);
            match parents[i] {
                None => {
                    // P(X | Y) as in Naive Bayes.
                    let mut counts = vec![0u64; n_classes * d];
                    for &r in rows {
                        counts[labels[r] as usize * d + feature.codes[r] as usize] += 1;
                    }
                    let mut table = vec![0f64; n_classes * d];
                    for y in 0..n_classes {
                        let denom = class_counts[y] as f64 + alpha * d as f64;
                        for v in 0..d {
                            table[y * d + v] = ((counts[y * d + v] as f64 + alpha) / denom).ln();
                        }
                    }
                    log_cond.push(table);
                }
                Some(p) => {
                    // P(X | parent, Y).
                    let parent = data.feature(feats[p]);
                    let dp = parent.domain_size;
                    let mut counts = vec![0u64; n_classes * dp * d];
                    let mut margins = vec![0u64; n_classes * dp];
                    for &r in rows {
                        let y = labels[r] as usize;
                        let pv = parent.codes[r] as usize;
                        let v = feature.codes[r] as usize;
                        counts[(y * dp + pv) * d + v] += 1;
                        margins[y * dp + pv] += 1;
                    }
                    let mut table = vec![0f64; n_classes * dp * d];
                    for y in 0..n_classes {
                        for pv in 0..dp {
                            let denom = margins[y * dp + pv] as f64 + alpha * d as f64;
                            for v in 0..d {
                                table[(y * dp + pv) * d + v] =
                                    ((counts[(y * dp + pv) * d + v] as f64 + alpha) / denom).ln();
                            }
                        }
                    }
                    log_cond.push(table);
                }
            }
        }

        TanModel {
            feats: feats.to_vec(),
            n_classes,
            log_prior,
            parents,
            log_cond,
            domain_sizes,
        }
    }
}

/// Builds a maximum-weight spanning forest over `m` nodes from a dense
/// weight matrix (`NEG_INFINITY` marks an unusable edge) using Prim's
/// algorithm per component, then roots each tree at its lowest-index node
/// and returns each node's parent.
fn maximum_spanning_forest_parents(w: &[f64], m: usize) -> Vec<Option<usize>> {
    let mut parents: Vec<Option<usize>> = vec![None; m];
    let mut in_tree = vec![false; m];
    for start in 0..m {
        if in_tree[start] {
            continue;
        }
        // Prim from `start` over its component.
        in_tree[start] = true;
        let mut best_w = vec![f64::NEG_INFINITY; m];
        let mut best_from = vec![usize::MAX; m];
        for v in 0..m {
            if !in_tree[v] {
                best_w[v] = w[start * m + v];
                best_from[v] = start;
            }
        }
        loop {
            let mut pick = None;
            let mut pick_w = f64::NEG_INFINITY;
            for v in 0..m {
                if !in_tree[v] && best_w[v] > pick_w {
                    pick_w = best_w[v];
                    pick = Some(v);
                }
            }
            let Some(v) = pick else { break };
            if pick_w == f64::NEG_INFINITY {
                break; // remaining nodes unreachable from this component
            }
            in_tree[v] = true;
            parents[v] = Some(best_from[v]);
            for u in 0..m {
                if !in_tree[u] && w[v * m + u] > best_w[u] {
                    best_w[u] = w[v * m + u];
                    best_from[u] = v;
                }
            }
        }
    }
    parents
}

impl TanModel {
    /// Assembles a model from raw parts — the import half of model
    /// serialization (`hamlet-serve` artifacts). Callers must pre-validate
    /// shapes; mismatched lengths are a programming error.
    pub fn from_parts(
        feats: Vec<usize>,
        n_classes: usize,
        log_prior: Vec<f64>,
        parents: Vec<Option<usize>>,
        log_cond: Vec<Vec<f64>>,
        domain_sizes: Vec<usize>,
    ) -> Self {
        assert_eq!(log_prior.len(), n_classes);
        assert_eq!(parents.len(), feats.len());
        assert_eq!(log_cond.len(), feats.len());
        assert_eq!(domain_sizes.len(), feats.len());
        Self {
            feats,
            n_classes,
            log_prior,
            parents,
            log_cond,
            domain_sizes,
        }
    }

    /// The dependency-tree parent (position into [`Model::features`]) of
    /// each selected feature.
    pub fn parents(&self) -> &[Option<usize>] {
        &self.parents
    }

    /// Number of classes the model was fitted on.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Log-priors `log P(y)` per class.
    pub fn log_prior(&self) -> &[f64] {
        &self.log_prior
    }

    /// Flattened log CPT of the `i`-th selected feature. With a parent the
    /// layout is `[(y * |D_parent| + pv) * |D_F| + v]`; without,
    /// `[y * |D_F| + v]`.
    pub fn log_cond(&self, i: usize) -> &[f64] {
        &self.log_cond[i]
    }

    /// Domain size per selected feature (parallel to [`Model::features`]).
    pub fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    /// Unnormalized log-posterior per class on one row.
    pub fn log_posterior<S: CodeSource>(&self, data: &S, row: usize) -> Vec<f64> {
        let mut scores = self.log_prior.clone();
        for (i, &f) in self.feats.iter().enumerate() {
            let v = data.code(f, row) as usize;
            let d = self.domain_sizes[i];
            match self.parents[i] {
                None => {
                    let table = &self.log_cond[i];
                    for (y, s) in scores.iter_mut().enumerate() {
                        *s += table[y * d + v];
                    }
                }
                Some(p) => {
                    let pv = data.code(self.feats[p], row) as usize;
                    let dp = self.domain_sizes[p];
                    let table = &self.log_cond[i];
                    for (y, s) in scores.iter_mut().enumerate() {
                        *s += table[(y * dp + pv) * d + v];
                    }
                }
            }
        }
        scores
    }
}

impl Model for TanModel {
    fn predict_row<S: CodeSource>(&self, data: &S, row: usize) -> u32 {
        let scores = self.log_posterior(data, row);
        let mut best = 0usize;
        for y in 1..self.n_classes {
            if scores[y] > scores[best] {
                best = y;
            }
        }
        best as u32
    }

    fn features(&self) -> &[usize] {
        &self.feats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::zero_one_error;
    use crate::dataset::Feature;

    /// y = x0 XOR x1 — the classic concept NB cannot represent but TAN can
    /// (x1's CPT conditions on x0).
    fn xor_data(n: usize) -> Dataset {
        let x0: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
        let x1: Vec<u32> = (0..n as u32).map(|i| (i / 2) % 2).collect();
        let y: Vec<u32> = x0.iter().zip(&x1).map(|(&a, &b)| a ^ b).collect();
        Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 2,
                    codes: x0,
                },
                Feature {
                    name: "x1".into(),
                    domain_size: 2,
                    codes: x1,
                },
            ],
            y,
            2,
        )
    }

    #[test]
    fn tan_solves_xor_where_nb_cannot() {
        let d = xor_data(200);
        let rows: Vec<usize> = (0..200).collect();
        let tan = Tan::default().fit(&d, &rows, &[0, 1]);
        assert_eq!(zero_one_error(&tan, &d, &rows), 0.0, "TAN should solve XOR");
        let nb = crate::naive_bayes::NaiveBayes::default().fit(&d, &rows, &[0, 1]);
        assert!(
            zero_one_error(&nb, &d, &rows) > 0.4,
            "NB should fail XOR (sanity check)"
        );
    }

    #[test]
    fn tree_links_dependent_features() {
        let d = xor_data(200);
        let rows: Vec<usize> = (0..200).collect();
        let tan = Tan::default().fit(&d, &rows, &[0, 1]);
        // One of the two features must be the other's parent.
        let linked = tan.parents().iter().flatten().count();
        assert_eq!(linked, 1);
    }

    #[test]
    fn single_feature_behaves_like_nb() {
        let d = xor_data(100);
        let rows: Vec<usize> = (0..100).collect();
        let tan = Tan::default().fit(&d, &rows, &[0]);
        let nb = crate::naive_bayes::NaiveBayes::default().fit(&d, &rows, &[0]);
        for r in 0..100 {
            assert_eq!(tan.predict_row(&d, r), nb.predict_row(&d, r));
        }
    }

    #[test]
    fn cpt_budget_excludes_large_pairs() {
        let d = xor_data(100);
        let rows: Vec<usize> = (0..100).collect();
        let tan = Tan {
            smoothing: 1.0,
            max_cpt_cells: 1, // nothing fits
        }
        .fit(&d, &rows, &[0, 1]);
        assert!(tan.parents().iter().all(Option::is_none));
        // Degrades to NB behaviour on XOR: high error.
        assert!(zero_one_error(&tan, &d, &rows) > 0.4);
    }

    #[test]
    fn spanning_forest_on_disconnected_graph() {
        // 3 nodes; only edge (0,1) usable.
        let inf = f64::NEG_INFINITY;
        let w = vec![
            inf, 1.0, inf, //
            1.0, inf, inf, //
            inf, inf, inf,
        ];
        let parents = maximum_spanning_forest_parents(&w, 3);
        assert_eq!(parents[0], None);
        assert_eq!(parents[1], Some(0));
        assert_eq!(parents[2], None);
    }

    #[test]
    fn spanning_tree_picks_heaviest_edges() {
        // Triangle with weights 0-1:5, 1-2:3, 0-2:1 -> tree keeps 5 and 3.
        let inf = f64::NEG_INFINITY;
        let w = vec![
            inf, 5.0, 1.0, //
            5.0, inf, 3.0, //
            1.0, 3.0, inf,
        ];
        let parents = maximum_spanning_forest_parents(&w, 3);
        assert_eq!(parents[0], None);
        assert_eq!(parents[1], Some(0));
        assert_eq!(parents[2], Some(1));
    }

    #[test]
    fn empty_feature_set_predicts_majority() {
        let d = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 2,
                codes: vec![0, 1, 0],
            }],
            vec![1, 1, 0],
            2,
        );
        let rows: Vec<usize> = (0..3).collect();
        let m = Tan::default().fit(&d, &rows, &[]);
        assert_eq!(m.predict_row(&d, 0), 1);
    }
}
