//! Incremental (online) Naive Bayes.
//!
//! The paper's closed-domain assumption comes with *periodic model
//! revisions* (Sec 2.1): "analysts build models using only the movies
//! seen so far but revise their feature domains and update ML models
//! periodically to absorb movies added recently." Because Naive Bayes is
//! a counting model, the update is exact: absorb new batches into the
//! count tables and re-derive the model — no retraining from scratch.
//!
//! [`IncrementalNaiveBayes`] accumulates counts across batches (all
//! batches must share the feature layout) and produces a
//! [`NaiveBayesModel`]-equivalent at any point via [`IncrementalNaiveBayes::model`].

use crate::dataset::Dataset;
use crate::naive_bayes::{NaiveBayes, NaiveBayesModel};

/// Accumulating Naive Bayes counts.
#[derive(Debug, Clone)]
pub struct IncrementalNaiveBayes {
    smoothing: f64,
    feats: Vec<usize>,
    domain_sizes: Vec<usize>,
    n_classes: usize,
    class_counts: Vec<u64>,
    /// Per selected feature: flattened `n_classes x domain_size` counts.
    cond_counts: Vec<Vec<u64>>,
    seen: u64,
}

impl IncrementalNaiveBayes {
    /// Starts an empty accumulator for the given feature subset of a
    /// dataset layout (names/domains fixed at construction).
    pub fn new(learner: &NaiveBayes, data: &Dataset, feats: &[usize]) -> Self {
        let n_classes = data.n_classes();
        let domain_sizes: Vec<usize> = feats.iter().map(|&f| data.feature(f).domain_size).collect();
        let cond_counts = domain_sizes
            .iter()
            .map(|&d| vec![0u64; n_classes * d])
            .collect();
        Self {
            smoothing: learner.smoothing,
            feats: feats.to_vec(),
            domain_sizes,
            n_classes,
            class_counts: vec![0; n_classes],
            cond_counts,
            seen: 0,
        }
    }

    /// Absorbs one batch of labeled rows.
    ///
    /// # Panics
    /// Panics if the batch's feature layout disagrees with the layout
    /// fixed at construction.
    pub fn absorb(&mut self, data: &Dataset, rows: &[usize]) {
        assert_eq!(data.n_classes(), self.n_classes, "class count changed");
        for (i, &f) in self.feats.iter().enumerate() {
            assert_eq!(
                data.feature(f).domain_size,
                self.domain_sizes[i],
                "feature '{}' domain changed between batches",
                data.feature(f).name
            );
        }
        let labels = data.labels();
        for &r in rows {
            let y = labels[r] as usize;
            self.class_counts[y] += 1;
            for (i, &f) in self.feats.iter().enumerate() {
                let v = data.feature(f).codes[r] as usize;
                self.cond_counts[i][y * self.domain_sizes[i] + v] += 1;
            }
        }
        self.seen += rows.len() as u64;
    }

    /// Total examples absorbed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Derives the current model. Equivalent to batch-fitting on the
    /// union of all absorbed rows (a unit test asserts this exactly).
    pub fn model(&self) -> NaiveBayesModel {
        let alpha = self.smoothing;
        let total = self.seen as f64 + alpha * self.n_classes as f64;
        let log_prior: Vec<f64> = self
            .class_counts
            .iter()
            .map(|&c| ((c as f64 + alpha) / total).ln())
            .collect();
        let mut log_cond = Vec::with_capacity(self.feats.len());
        for (i, counts) in self.cond_counts.iter().enumerate() {
            let d = self.domain_sizes[i];
            let mut table = vec![0f64; self.n_classes * d];
            for y in 0..self.n_classes {
                let denom = self.class_counts[y] as f64 + alpha * d as f64;
                for v in 0..d {
                    table[y * d + v] = ((counts[y * d + v] as f64 + alpha) / denom).ln();
                }
            }
            log_cond.push(table);
        }
        NaiveBayesModel::from_parts(
            self.feats.clone(),
            self.n_classes,
            log_prior,
            log_cond,
            self.domain_sizes.clone(),
        )
    }
}

/// Convenience: batch-fit by absorbing once (used by the equivalence
/// test and by callers that want the incremental type everywhere).
pub fn fit_incremental(
    learner: &NaiveBayes,
    data: &Dataset,
    rows: &[usize],
    feats: &[usize],
) -> IncrementalNaiveBayes {
    let mut inc = IncrementalNaiveBayes::new(learner, data, feats);
    inc.absorb(data, rows);
    inc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{Classifier, Model};
    use crate::dataset::Feature;

    fn data(n: usize, shift: u32) -> Dataset {
        let x: Vec<u32> = (0..n as u32).map(|i| (i + shift) % 3).collect();
        let y: Vec<u32> = x.iter().map(|&v| u32::from(v == 1)).collect();
        Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 3,
                codes: x,
            }],
            y,
            2,
        )
    }

    #[test]
    fn incremental_equals_batch() {
        let d = data(300, 0);
        let rows: Vec<usize> = (0..300).collect();
        let learner = NaiveBayes::default();

        let batch = learner.fit(&d, &rows, &[0]);
        let mut inc = IncrementalNaiveBayes::new(&learner, &d, &[0]);
        inc.absorb(&d, &rows[..100]);
        inc.absorb(&d, &rows[100..250]);
        inc.absorb(&d, &rows[250..]);
        assert_eq!(inc.seen(), 300);
        let merged = inc.model();
        for r in 0..300 {
            assert_eq!(merged.predict_row(&d, r), batch.predict_row(&d, r));
            let pb = batch.predict_proba(&d, r);
            let pm = merged.predict_proba(&d, r);
            for (a, b) in pb.iter().zip(&pm) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn absorbing_new_batches_improves_coverage() {
        let learner = NaiveBayes::default();
        let d1 = data(30, 0);
        let rows1: Vec<usize> = (0..30).collect();
        let mut inc = fit_incremental(&learner, &d1, &rows1, &[0]);
        let before = inc.seen();
        let d2 = data(300, 1);
        let rows2: Vec<usize> = (0..300).collect();
        inc.absorb(&d2, &rows2);
        assert_eq!(inc.seen(), before + 300);
        // The updated model still classifies the concept perfectly.
        let m = inc.model();
        let errs = rows2
            .iter()
            .filter(|&&r| m.predict_row(&d2, r) != d2.labels()[r])
            .count();
        assert_eq!(errs, 0);
    }

    #[test]
    #[should_panic(expected = "domain changed")]
    fn layout_change_rejected() {
        let learner = NaiveBayes::default();
        let d1 = data(10, 0);
        let mut inc = IncrementalNaiveBayes::new(&learner, &d1, &[0]);
        let d2 = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 4, // widened!
                codes: vec![3, 0],
            }],
            vec![0, 1],
            2,
        );
        inc.absorb(&d2, &[0, 1]);
    }

    #[test]
    fn empty_accumulator_predicts_uniformly() {
        let learner = NaiveBayes::default();
        let d = data(10, 0);
        let inc = IncrementalNaiveBayes::new(&learner, &d, &[0]);
        let m = inc.model();
        let p = m.predict_proba(&d, 0);
        assert!((p[0] - 0.5).abs() < 1e-12, "smoothing-only prior: {p:?}");
    }
}
