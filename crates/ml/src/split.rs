//! Holdout splits.
//!
//! The paper uses "the standard holdout validation method with the entity
//! table split randomly into 50%:25%:25% for training, validation, and
//! final holdout testing" (Sec 5). Splits are row-index sets over a
//! [`crate::dataset::Dataset`] (or a relational table), so the data itself
//! is never copied.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A three-way holdout split of row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoldoutSplit {
    /// Training rows.
    pub train: Vec<usize>,
    /// Validation rows, used by wrappers and for tuning filter `k`.
    pub validation: Vec<usize>,
    /// Final holdout test rows.
    pub test: Vec<usize>,
}

impl HoldoutSplit {
    /// Splits `0..n` randomly with the given fractions (test gets the
    /// remainder). Deterministic in `seed`.
    pub fn new(n: usize, train_frac: f64, validation_frac: f64, seed: u64) -> Self {
        assert!(train_frac >= 0.0 && validation_frac >= 0.0);
        assert!(
            train_frac + validation_frac <= 1.0 + 1e-12,
            "fractions must not exceed 1"
        );
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        perm.shuffle(&mut rng);
        let n_train = ((n as f64) * train_frac).round() as usize;
        let n_val = (((n as f64) * validation_frac).round() as usize).min(n - n_train.min(n));
        let n_train = n_train.min(n);
        Self {
            train: perm[..n_train].to_vec(),
            validation: perm[n_train..n_train + n_val].to_vec(),
            test: perm[n_train + n_val..].to_vec(),
        }
    }

    /// The paper's 50%:25%:25% protocol.
    pub fn paper_protocol(n: usize, seed: u64) -> Self {
        Self::new(n, 0.5, 0.25, seed)
    }

    /// Total number of rows covered.
    pub fn len(&self) -> usize {
        self.train.len() + self.validation.len() + self.test.len()
    }

    /// Whether the split covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Draws `m` bootstrap-free disjoint training sets by chunking a shuffled
/// permutation — used by the bias/variance protocol where each Monte-Carlo
/// run needs an independent training sample.
pub fn disjoint_train_sets(n: usize, m: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(m > 0);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    let chunk = (n / m).max(1);
    perm.chunks(chunk).take(m).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_all_rows() {
        let s = HoldoutSplit::paper_protocol(101, 7);
        assert_eq!(s.len(), 101);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.validation)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..101).collect::<Vec<_>>());
    }

    #[test]
    fn split_sizes_match_fractions() {
        let s = HoldoutSplit::paper_protocol(1000, 0);
        assert_eq!(s.train.len(), 500);
        assert_eq!(s.validation.len(), 250);
        assert_eq!(s.test.len(), 250);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = HoldoutSplit::paper_protocol(100, 42);
        let b = HoldoutSplit::paper_protocol(100, 42);
        let c = HoldoutSplit::paper_protocol(100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn split_is_shuffled() {
        let s = HoldoutSplit::paper_protocol(1000, 1);
        // The first 500 naturals would only appear if unshuffled.
        let sorted_prefix: Vec<usize> = (0..500).collect();
        let mut train = s.train.clone();
        train.sort_unstable();
        assert_ne!(train, sorted_prefix);
    }

    #[test]
    fn zero_rows_ok() {
        let s = HoldoutSplit::paper_protocol(0, 3);
        assert!(s.is_empty());
    }

    #[test]
    fn disjoint_sets_are_disjoint() {
        let sets = disjoint_train_sets(100, 4, 9);
        assert_eq!(sets.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for s in &sets {
            assert_eq!(s.len(), 25);
            for &r in s {
                assert!(seen.insert(r), "row {r} appears twice");
            }
        }
    }

    #[test]
    fn disjoint_sets_small_n() {
        let sets = disjoint_train_sets(3, 5, 9);
        assert!(sets.len() <= 5);
        assert!(!sets.is_empty());
    }
}
