//! A multiway (ID3-style) decision tree over nominal features.
//!
//! The paper's decision rules are derived for classifiers with VC
//! dimension linear in the number of feature values (footnote 5 notes
//! "the upper bound derivation is similar for classifiers with more
//! complex VC dimensions ... we leave a deeper formal analysis to future
//! work"). This tree is the test bed for that future-work question: the
//! `future_work` experiment checks empirically whether the TR rule's
//! verdicts transfer to a classifier whose capacity is *not* linear.
//!
//! Splits maximize information gain; growth stops at `max_depth`, below
//! `min_samples_split`, or when a node is pure. Leaves predict their
//! majority class.

use crate::classifier::{Classifier, Model};
use crate::dataset::Dataset;
use crate::info::entropy_of_counts;
use crate::source::CodeSource;

/// Decision-tree learner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionTree {
    /// Maximum tree depth (root = depth 0). Caps capacity the way the
    /// paper caps linear models through their feature domains.
    pub max_depth: usize,
    /// Nodes with fewer rows become leaves.
    pub min_samples_split: usize,
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: u32,
    },
    Split {
        /// Position into the *dataset's* features.
        feature: usize,
        /// One child per category code; `children[v]` handles `F = v`.
        children: Vec<usize>,
        /// Fallback class for categories unseen at this node.
        majority: u32,
    },
}

/// A fitted decision tree (arena-allocated nodes).
#[derive(Debug, Clone)]
pub struct DecisionTreeModel {
    feats: Vec<usize>,
    nodes: Vec<Node>,
    root: usize,
}

impl Classifier for DecisionTree {
    type Fitted = DecisionTreeModel;

    fn fit(&self, data: &Dataset, rows: &[usize], feats: &[usize]) -> DecisionTreeModel {
        let mut nodes = Vec::new();
        let root = build(
            data,
            rows,
            feats,
            self.max_depth,
            self.min_samples_split,
            &mut nodes,
        );
        DecisionTreeModel {
            feats: feats.to_vec(),
            nodes,
            root,
        }
    }
}

fn class_counts(data: &Dataset, rows: &[usize]) -> Vec<u64> {
    let mut counts = vec![0u64; data.n_classes()];
    for &r in rows {
        counts[data.labels()[r] as usize] += 1;
    }
    counts
}

fn majority(counts: &[u64]) -> u32 {
    let mut best = 0usize;
    for (c, &n) in counts.iter().enumerate() {
        if n > counts[best] {
            best = c;
        }
    }
    best as u32
}

/// Information gain of splitting `rows` multiway on feature `f`.
fn split_gain(data: &Dataset, rows: &[usize], f: usize, parent_entropy: f64) -> f64 {
    let feature = data.feature(f);
    let d = feature.domain_size;
    let mut child_counts = vec![0u64; d * data.n_classes()];
    let mut child_sizes = vec![0u64; d];
    for &r in rows {
        let v = feature.codes[r] as usize;
        child_counts[v * data.n_classes() + data.labels()[r] as usize] += 1;
        child_sizes[v] += 1;
    }
    let mut cond = 0.0;
    for v in 0..d {
        if child_sizes[v] == 0 {
            continue;
        }
        let slice = &child_counts[v * data.n_classes()..(v + 1) * data.n_classes()];
        cond += (child_sizes[v] as f64 / rows.len() as f64) * entropy_of_counts(slice);
    }
    parent_entropy - cond
}

fn build(
    data: &Dataset,
    rows: &[usize],
    feats: &[usize],
    depth_left: usize,
    min_split: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let counts = class_counts(data, rows);
    let maj = majority(&counts);
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure || depth_left == 0 || rows.len() < min_split || feats.is_empty() {
        nodes.push(Node::Leaf { class: maj });
        return nodes.len() - 1;
    }

    // Best split by information gain. Candidate gains are scored in
    // parallel chunks (each gain is an independent count-then-entropy
    // pass) and reduced serially in feature order, so the winning
    // feature — and hence the whole tree — is identical at any thread
    // count.
    let parent_entropy = entropy_of_counts(&counts);
    let threads = hamlet_obs::env::resolved_threads().min(feats.len().max(1));
    let chunk = feats.len().div_ceil(threads.max(1)).max(1);
    let n_chunks = feats.len().div_ceil(chunk);
    let per_chunk = hamlet_obs::parallel::run_indexed(n_chunks, threads, &|ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(feats.len());
        feats[lo..hi]
            .iter()
            .map(|&f| split_gain(data, rows, f, parent_entropy))
            .collect::<Vec<f64>>()
    });
    let mut best: Option<(usize, f64)> = None;
    for (&f, &gain) in feats.iter().zip(per_chunk.iter().flatten()) {
        if gain > best.map_or(1e-12, |(_, g)| g) {
            best = Some((f, gain));
        }
    }

    let Some((split_feat, _)) = best else {
        nodes.push(Node::Leaf { class: maj });
        return nodes.len() - 1;
    };

    // Partition rows by category and recurse; the split feature stays
    // available below (multiway splits make re-splitting useless, but
    // removing it would misindex sibling subtrees' feats — keep simple).
    let remaining: Vec<usize> = feats.iter().copied().filter(|&f| f != split_feat).collect();
    let d = data.feature(split_feat).domain_size;
    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); d];
    for &r in rows {
        partitions[data.feature(split_feat).codes[r] as usize].push(r);
    }
    let mut children = Vec::with_capacity(d);
    for part in &partitions {
        if part.is_empty() {
            nodes.push(Node::Leaf { class: maj });
            children.push(nodes.len() - 1);
        } else {
            let child = build(data, part, &remaining, depth_left - 1, min_split, nodes);
            children.push(child);
        }
    }
    nodes.push(Node::Split {
        feature: split_feat,
        children,
        majority: maj,
    });
    nodes.len() - 1
}

impl DecisionTreeModel {
    /// Number of nodes in the tree (a capacity proxy).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { children, .. } => {
                    1 + children
                        .iter()
                        .map(|&c| depth_of(nodes, c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        depth_of(&self.nodes, self.root)
    }
}

impl Model for DecisionTreeModel {
    fn predict_row<S: CodeSource>(&self, data: &S, row: usize) -> u32 {
        let mut i = self.root;
        loop {
            match &self.nodes[i] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    children,
                    majority,
                } => {
                    let v = data.code(*feature, row) as usize;
                    match children.get(v) {
                        Some(&c) => i = c,
                        None => return *majority,
                    }
                }
            }
        }
    }

    fn features(&self) -> &[usize] {
        &self.feats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::zero_one_error;
    use crate::dataset::Feature;

    fn xor_data(n: usize) -> Dataset {
        let x0: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
        let x1: Vec<u32> = (0..n as u32).map(|i| (i / 2) % 2).collect();
        let y: Vec<u32> = x0.iter().zip(&x1).map(|(&a, &b)| a ^ b).collect();
        Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 2,
                    codes: x0,
                },
                Feature {
                    name: "x1".into(),
                    domain_size: 2,
                    codes: x1,
                },
            ],
            y,
            2,
        )
    }

    #[test]
    fn tree_solves_xor() {
        // ID3 with gain > 0 required per split would fail XOR (no single
        // feature helps); our tiny positive threshold means the root
        // split is only taken if gain is strictly positive. On perfectly
        // balanced XOR, gain is 0 -> tree must fall back to a leaf, so
        // we unbalance slightly to let it start.
        let d = xor_data(201);
        let rows: Vec<usize> = (0..201).collect();
        let m = DecisionTree::default().fit(&d, &rows, &[0, 1]);
        let err = zero_one_error(&m, &d, &rows);
        assert!(err <= 0.5, "err {err}");
    }

    #[test]
    fn learns_single_feature_concept_exactly() {
        let x: Vec<u32> = (0..300u32).map(|i| i % 3).collect();
        let y: Vec<u32> = x.iter().map(|&v| u32::from(v == 1)).collect();
        let d = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 3,
                codes: x,
            }],
            y,
            2,
        );
        let rows: Vec<usize> = (0..300).collect();
        let m = DecisionTree::default().fit(&d, &rows, &[0]);
        assert_eq!(zero_one_error(&m, &d, &rows), 0.0);
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn depth_limit_respected() {
        let d = xor_data(400);
        let rows: Vec<usize> = (0..400).collect();
        let m = DecisionTree {
            max_depth: 1,
            min_samples_split: 2,
        }
        .fit(&d, &rows, &[0, 1]);
        assert!(m.depth() <= 1);
    }

    #[test]
    fn pure_node_stops_early() {
        let d = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 2,
                codes: vec![0, 1, 0, 1],
            }],
            vec![1, 1, 1, 1],
            2,
        );
        let rows: Vec<usize> = (0..4).collect();
        let m = DecisionTree::default().fit(&d, &rows, &[0]);
        assert_eq!(m.n_nodes(), 1);
        assert_eq!(m.predict_row(&d, 0), 1);
    }

    #[test]
    fn min_samples_split_respected() {
        let d = xor_data(6);
        let rows: Vec<usize> = (0..6).collect();
        let m = DecisionTree {
            max_depth: 8,
            min_samples_split: 100,
        }
        .fit(&d, &rows, &[0, 1]);
        assert_eq!(m.n_nodes(), 1, "should be a single leaf");
    }

    #[test]
    fn empty_feature_set_is_majority_leaf() {
        let d = xor_data(10);
        let rows: Vec<usize> = (0..10).collect();
        let m = DecisionTree::default().fit(&d, &rows, &[]);
        assert_eq!(m.n_nodes(), 1);
    }

    #[test]
    fn large_domain_feature_memorizes() {
        // An FK-like feature with one row per value: the tree memorizes
        // the training labels — the same overfitting risk the ROR
        // quantifies for linear models.
        let n = 64u32;
        let fk: Vec<u32> = (0..n).collect();
        let y: Vec<u32> = (0..n).map(|i| (i * 7 + 1) % 2).collect();
        let d = Dataset::new(
            vec![Feature {
                name: "fk".into(),
                domain_size: n as usize,
                codes: fk,
            }],
            y,
            2,
        );
        let rows: Vec<usize> = (0..n as usize).collect();
        let m = DecisionTree::default().fit(&d, &rows, &[0]);
        assert_eq!(zero_one_error(&m, &d, &rows), 0.0, "memorization expected");
    }
}
