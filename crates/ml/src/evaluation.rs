//! Model evaluation beyond the holdout protocol: k-fold cross-validation
//! (the alternative wrapper criterion Sec 2.2 mentions) and confusion
//! matrices with per-class precision/recall.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::classifier::{ErrorMetric, Model};
use crate::dataset::Dataset;
use crate::suffstats::{SuffStats, SweepFit};

/// Splits `0..n` into `k` folds of near-equal size (shuffled).
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least two folds");
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
    for (i, r) in perm.into_iter().enumerate() {
        folds[i % k].push(r);
    }
    folds
}

/// k-fold cross-validation error of a learner on a feature subset:
/// trains on `k-1` folds, scores the held-out fold, averages. Each fold
/// fits through its own [`SuffStats`] cache, so callers evaluating many
/// subsets over the same folds (a CV-scored wrapper) pay one row scan
/// per (fold, feature), not one per subset.
pub fn cross_validate<C: SweepFit>(
    classifier: &C,
    data: &Dataset,
    rows: &[usize],
    feats: &[usize],
    k: usize,
    metric: ErrorMetric,
    seed: u64,
) -> f64 {
    let folds = kfold_indices(rows.len(), k, seed);
    let mut total = 0.0;
    for held_out in 0..k {
        let train: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != held_out)
            .flat_map(|(_, f)| f.iter().map(|&p| rows[p]))
            .collect();
        let test: Vec<usize> = folds[held_out].iter().map(|&p| rows[p]).collect();
        let stats = SuffStats::new(data, &train);
        let model = classifier.fit_swept(&stats, feats, None);
        total += metric.eval(&model, data, &test);
    }
    total / k as f64
}

/// A confusion matrix over `n_classes` classes: `counts[true][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds the matrix from a model's predictions on `rows`.
    pub fn from_model<M: Model>(model: &M, data: &Dataset, rows: &[usize]) -> Self {
        let n = data.n_classes();
        let mut counts = vec![0u64; n * n];
        for &r in rows {
            let t = data.labels()[r] as usize;
            let p = model.predict_row(data, r) as usize;
            counts[t * n + p] += 1;
        }
        Self {
            n_classes: n,
            counts,
        }
    }

    /// Count of examples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> u64 {
        self.counts[t * self.n_classes + p]
    }

    /// Total examples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.n_classes).map(|c| self.count(c, c)).sum();
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision of class `c` (0 when the class is never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: u64 = (0..self.n_classes).map(|t| self.count(t, c)).sum();
        if predicted == 0 {
            0.0
        } else {
            self.count(c, c) as f64 / predicted as f64
        }
    }

    /// Recall of class `c` (0 when the class never occurs).
    pub fn recall(&self, c: usize) -> f64 {
        let actual: u64 = (0..self.n_classes).map(|p| self.count(c, p)).sum();
        if actual == 0 {
            0.0
        } else {
            self.count(c, c) as f64 / actual as f64
        }
    }

    /// Macro-averaged F1 score.
    pub fn macro_f1(&self) -> f64 {
        let mut sum = 0.0;
        for c in 0..self.n_classes {
            let p = self.precision(c);
            let r = self.recall(c);
            if p + r > 0.0 {
                sum += 2.0 * p * r / (p + r);
            }
        }
        sum / self.n_classes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Classifier;
    use crate::dataset::Feature;
    use crate::naive_bayes::NaiveBayes;

    fn data(n: usize) -> Dataset {
        let x: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
        let y = x.clone();
        Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 3,
                codes: x,
            }],
            y,
            3,
        )
    }

    #[test]
    fn folds_partition_rows() {
        let folds = kfold_indices(103, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // Near-equal sizes.
        for f in &folds {
            assert!(f.len() == 20 || f.len() == 21);
        }
    }

    #[test]
    fn cv_on_learnable_concept_is_near_zero() {
        let d = data(300);
        let rows: Vec<usize> = (0..300).collect();
        let err = cross_validate(
            &NaiveBayes::default(),
            &d,
            &rows,
            &[0],
            5,
            ErrorMetric::ZeroOne,
            7,
        );
        assert!(err < 0.01, "cv error {err}");
    }

    #[test]
    fn cv_on_empty_features_is_majority_error() {
        let d = data(300);
        let rows: Vec<usize> = (0..300).collect();
        let err = cross_validate(
            &NaiveBayes::default(),
            &d,
            &rows,
            &[],
            3,
            ErrorMetric::ZeroOne,
            7,
        );
        assert!(err > 0.5, "majority-class error should be ~2/3, got {err}");
    }

    #[test]
    fn confusion_matrix_perfect_classifier() {
        let d = data(90);
        let rows: Vec<usize> = (0..90).collect();
        let m = NaiveBayes::default().fit(&d, &rows, &[0]);
        let cm = ConfusionMatrix::from_model(&m, &d, &rows);
        assert_eq!(cm.total(), 90);
        assert_eq!(cm.accuracy(), 1.0);
        for c in 0..3 {
            assert_eq!(cm.precision(c), 1.0);
            assert_eq!(cm.recall(c), 1.0);
        }
        assert!((cm.macro_f1() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_counts() {
        // Hand-built: model always predicts class 0.
        struct Zero;
        impl Model for Zero {
            fn predict_row<S: crate::source::CodeSource>(&self, _d: &S, _r: usize) -> u32 {
                0
            }
            fn features(&self) -> &[usize] {
                &[]
            }
        }
        let d = data(9); // classes 0,1,2 three times each
        let rows: Vec<usize> = (0..9).collect();
        let cm = ConfusionMatrix::from_model(&Zero, &d, &rows);
        assert_eq!(cm.count(0, 0), 3);
        assert_eq!(cm.count(1, 0), 3);
        assert_eq!(cm.count(2, 0), 3);
        assert!((cm.accuracy() - 1.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.recall(0), 1.0);
        assert_eq!(cm.precision(1), 0.0);
        assert_eq!(cm.recall(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_rejected() {
        kfold_indices(10, 1, 0);
    }
}
