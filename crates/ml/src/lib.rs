//! # hamlet-ml
//!
//! ML substrate for the SIGMOD 2016 "To Join or Not to Join?" reproduction:
//! the classifiers, metrics, and statistical machinery the paper's analysis
//! and experiments need, implemented from scratch over all-nominal data.
//!
//! * [`Dataset`] — single-table view with index-set row/feature subsetting
//!   (no copies during greedy feature selection);
//! * [`NaiveBayes`] — the paper's running classifier, with Laplace
//!   smoothing (Sec 2.1);
//! * [`LogisticRegression`] — sparse multinomial SGD with lazy L1/L2
//!   regularization (Secs 2.2, 5.3);
//! * [`Tan`] — Tree-Augmented Naive Bayes (appendix E);
//! * [`HoldoutSplit`] — the 50%:25%:25% protocol (Sec 5);
//! * [`ErrorMetric`] — zero-one for binary targets, RMSE for ordinal
//!   multi-class targets (Sec 5.1);
//! * [`SuffStats`] / [`SweepFit`] — per-(fold, feature) class-conditional
//!   count tables cached for the lifetime of a selection run: NB models
//!   assemble from them with zero row scans, filter scores read them, and
//!   logreg fits warm-start from the parent subset's weights;
//! * [`bias_variance`] — Domingos-style decomposition used by the
//!   simulation study (Sec 4.1);
//! * [`info`] — entropy / mutual information / information gain ratio /
//!   conditional MI (Secs 2.2, 3.1, appendices B, E).

pub mod bias_variance;
pub mod classifier;
pub mod dataset;
pub mod encoding;
pub mod evaluation;
pub mod incremental;
pub mod info;
pub mod kernels;
pub mod logreg;
pub mod model_selection;
pub mod naive_bayes;
pub mod redundancy;
pub mod source;
pub mod split;
pub mod suffstats;
pub mod tan;
pub mod tree;

pub use bias_variance::{decompose, decompose_observed, BiasVarianceReport};
pub use classifier::{rmse, zero_one_error, Classifier, ErrorMetric, Model};
pub use dataset::{Dataset, Feature};
pub use encoding::{EncodeError, Encoder, Encoding};
pub use evaluation::{cross_validate, kfold_indices, ConfusionMatrix};
pub use incremental::{fit_incremental, IncrementalNaiveBayes};
pub use kernels::{class_count_into, class_count_table, class_count_table_gather};
pub use logreg::{LogisticRegression, LogisticRegressionModel, Penalty};
pub use model_selection::{grid_search, grid_search_test_error, GridSearchResult};
pub use naive_bayes::{NaiveBayes, NaiveBayesModel};
pub use redundancy::{is_markov_blanket, is_redundant_given_fk, is_weakly_relevant};
pub use source::CodeSource;
pub use split::{disjoint_train_sets, HoldoutSplit};
pub use suffstats::{SuffStats, SweepFit};
pub use tan::{Tan, TanModel};
pub use tree::{DecisionTree, DecisionTreeModel};
