//! Cache-blocked, morsel-parallel count kernels.
//!
//! Every decomposable statistic in this crate reduces to the same
//! primitive: the class-conditional count table
//! `counts[y * d + v] += 1` over `(label, code)` pairs. The naive form
//! (`for &r in train { counts[labels[r] * d + codes[r]] += 1 }`)
//! performs **two dependent gathers per row** through the `train`
//! permutation, which defeats both the prefetcher and
//! auto-vectorization of the address computation. These kernels
//! restructure the scan:
//!
//! * **gather-free path** — when the row set is a contiguous range, the
//!   inner loop walks two contiguous `u32` slices (`labels`, `codes`)
//!   directly, a pure streaming access pattern the compiler unrolls and
//!   the hardware prefetches;
//! * **blocked-gather path** — for an arbitrary row set, rows are
//!   gathered block-by-block (a few KiB of `(label, code)` pairs at a
//!   time) into small stack-resident buffers, then counted from the
//!   contiguous buffers — the random access is confined to the gather,
//!   and the count loop is the same streaming form;
//! * **morsel parallelism** — large inputs split into morsels
//!   ([`hamlet_obs::resolved_morsel_rows`] rows); each morsel fills its
//!   own local table and the locals merge **in morsel order**. Counts
//!   are integers, so the merged table is bit-for-bit the sequential
//!   one at any thread count (`HAMLET_THREADS` invariance).
//!
//! Nested parallelism is handled explicitly: callers like
//! [`crate::suffstats::SuffStats::table`] run *inside* `run_indexed`
//! workers during candidate sweeps, and a kernel that spawned its own
//! workers there would oversubscribe the machine. Each kernel consults
//! [`hamlet_obs::parallel::in_parallel_region`] and degrades to the
//! sequential scan when nested — same counts either way.

use hamlet_obs::parallel::{in_parallel_region, run_morsels};

/// Rows per gather block: 4K `(label, code)` pairs = 32 KiB of staging,
/// comfortably L1/L2-resident alongside the count table.
const GATHER_BLOCK: usize = 4096;

/// Below this many rows the morsel fan-out costs more than the scan.
const PAR_THRESHOLD: usize = 1 << 16;

/// Accumulates `counts[label * d + code] += 1` over two contiguous
/// slices — the gather-free streaming inner loop every other kernel
/// bottoms out in. `counts` must have `c * d` entries for codes in
/// `[0, d)` and labels in `[0, c)`.
#[inline]
pub fn class_count_into(counts: &mut [u64], d: usize, labels: &[u32], codes: &[u32]) {
    for (&y, &v) in labels.iter().zip(codes) {
        counts[y as usize * d + v as usize] += 1;
    }
}

/// Effective worker count for a kernel invocation: sequential when the
/// input is small or we are already inside a parallel region.
fn effective_threads(n: usize, threads: usize) -> usize {
    if n < PAR_THRESHOLD || in_parallel_region() {
        1
    } else {
        threads.max(1)
    }
}

/// Class-conditional count table `[y * d + v]` over a contiguous row
/// range (`labels` and `codes` already sliced to the rows of interest).
/// Morsel-parallel with in-order merge: bit-identical at any `threads`.
pub fn class_count_table(
    c: usize,
    d: usize,
    labels: &[u32],
    codes: &[u32],
    threads: usize,
) -> Vec<u64> {
    let n = labels.len().min(codes.len());
    let threads = effective_threads(n, threads);
    let morsel = hamlet_obs::resolved_morsel_rows();
    if threads <= 1 {
        let mut counts = vec![0u64; c * d];
        class_count_into(&mut counts, d, &labels[..n], &codes[..n]);
        return counts;
    }
    let partials = run_morsels(n, morsel, threads, &|_, range| {
        let mut local = vec![0u64; c * d];
        class_count_into(&mut local, d, &labels[range.clone()], &codes[range]);
        local
    });
    merge_in_order(c * d, partials)
}

/// Class-conditional count table `[y * d + v]` over an arbitrary row
/// set, gathering `(label, code)` pairs block-by-block into contiguous
/// staging buffers before counting. Morsel-parallel with in-order
/// merge: bit-identical at any `threads`.
pub fn class_count_table_gather(
    c: usize,
    d: usize,
    labels: &[u32],
    codes: &[u32],
    rows: &[usize],
    threads: usize,
) -> Vec<u64> {
    let threads = effective_threads(rows.len(), threads);
    let morsel = hamlet_obs::resolved_morsel_rows();
    let count_morsel = |rows: &[usize]| -> Vec<u64> {
        let mut local = vec![0u64; c * d];
        let mut ybuf = [0u32; GATHER_BLOCK];
        let mut vbuf = [0u32; GATHER_BLOCK];
        for block in rows.chunks(GATHER_BLOCK) {
            for (i, &r) in block.iter().enumerate() {
                ybuf[i] = labels[r];
                vbuf[i] = codes[r];
            }
            class_count_into(&mut local, d, &ybuf[..block.len()], &vbuf[..block.len()]);
        }
        local
    };
    if threads <= 1 {
        return count_morsel(rows);
    }
    let partials = run_morsels(rows.len(), morsel, threads, &|_, range| {
        count_morsel(&rows[range])
    });
    merge_in_order(c * d, partials)
}

/// Folds per-morsel tables into one, first morsel first — the fixed
/// merge order the determinism discipline requires (u64 adds make it
/// order-insensitive anyway, but fixed order costs nothing and keeps
/// the invariant auditable).
fn merge_in_order(len: usize, partials: Vec<Vec<u64>>) -> Vec<u64> {
    let mut total = vec![0u64; len];
    for p in partials {
        for (t, v) in total.iter_mut().zip(p) {
            *t += v;
        }
    }
    total
}

/// Whether `rows` is the contiguous range `rows[0]..rows[0]+len` — the
/// common case for full-table statistics, where the gather-free kernel
/// applies. Empty row sets count as contiguous.
pub fn contiguous_range(rows: &[usize]) -> Option<std::ops::Range<usize>> {
    let first = match rows.first() {
        Some(&f) => f,
        None => return Some(0..0),
    };
    for (i, &r) in rows.iter().enumerate() {
        if r != first + i {
            return None;
        }
    }
    Some(first..first + rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(c: usize, d: usize, labels: &[u32], codes: &[u32], rows: &[usize]) -> Vec<u64> {
        let mut counts = vec![0u64; c * d];
        for &r in rows {
            counts[labels[r] as usize * d + codes[r] as usize] += 1;
        }
        counts
    }

    fn fixture(n: usize, c: u32, d: u32) -> (Vec<u32>, Vec<u32>) {
        let labels: Vec<u32> = (0..n).map(|i| (i as u32 * 13 + 5) % c).collect();
        let codes: Vec<u32> = (0..n).map(|i| (i as u32 * 31 + 7) % d).collect();
        (labels, codes)
    }

    #[test]
    fn contiguous_kernel_matches_naive_at_any_thread_count() {
        let (labels, codes) = fixture(100_000, 3, 7);
        let rows: Vec<usize> = (0..100_000).collect();
        let want = naive(3, 7, &labels, &codes, &rows);
        for threads in [1, 2, 8] {
            assert_eq!(class_count_table(3, 7, &labels, &codes, threads), want);
        }
    }

    #[test]
    fn gather_kernel_matches_naive_on_scattered_rows() {
        let (labels, codes) = fixture(100_000, 4, 5);
        // A strided, shuffled-ish subset exercises the gather path.
        let rows: Vec<usize> = (0..100_000).filter(|r| r % 3 != 1).rev().collect();
        let want = naive(4, 5, &labels, &codes, &rows);
        for threads in [1, 2, 8] {
            assert_eq!(
                class_count_table_gather(4, 5, &labels, &codes, &rows, threads),
                want
            );
        }
    }

    #[test]
    fn small_and_empty_inputs() {
        let (labels, codes) = fixture(10, 2, 3);
        assert_eq!(
            class_count_table(2, 3, &labels, &codes, 8),
            naive(2, 3, &labels, &codes, &(0..10).collect::<Vec<_>>())
        );
        assert_eq!(class_count_table(2, 3, &[], &[], 8), vec![0u64; 6]);
        assert_eq!(
            class_count_table_gather(2, 3, &labels, &codes, &[], 8),
            vec![0u64; 6]
        );
    }

    #[test]
    fn contiguity_detection() {
        assert_eq!(contiguous_range(&[]), Some(0..0));
        assert_eq!(contiguous_range(&[5]), Some(5..6));
        assert_eq!(contiguous_range(&[3, 4, 5, 6]), Some(3..7));
        assert_eq!(contiguous_range(&[3, 5, 6]), None);
        assert_eq!(contiguous_range(&[4, 3]), None);
    }

    #[test]
    fn nested_region_degrades_to_sequential_but_same_counts() {
        let (labels, codes) = fixture(200_000, 2, 4);
        let rows: Vec<usize> = (0..200_000).collect();
        let outside = class_count_table(2, 4, &labels, &codes, 8);
        // Two real workers: each nested kernel call must see the region
        // flag and go sequential, producing the same table.
        let inside = hamlet_obs::parallel::run_indexed(2, 2, &|_| {
            assert!(hamlet_obs::parallel::in_parallel_region());
            class_count_table(2, 4, &labels, &codes, 8)
        });
        assert_eq!(outside, inside[0]);
        assert_eq!(outside, inside[1]);
        assert_eq!(outside, naive(2, 4, &labels, &codes, &rows));
    }
}
