//! Naive Bayes for nominal features.
//!
//! The paper's running classifier (Sec 2.1): "Naive Bayes is a popular
//! classifier ... easy to understand and use; it does not require expensive
//! iterative optimization". Conditional probabilities use Laplace
//! smoothing, the "standard practice" the paper adopts to handle RID values
//! absent from the training FK column (Sec 2.1, footnote 2).

use crate::classifier::{Classifier, ErrorMetric, Model};
use crate::dataset::Dataset;
use crate::source::CodeSource;

/// Naive Bayes learner configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    /// Additive (Laplace) smoothing pseudo-count; 1.0 is the classic
    /// choice and the default.
    pub smoothing: f64,
}

impl Default for NaiveBayes {
    fn default() -> Self {
        Self { smoothing: 1.0 }
    }
}

impl NaiveBayes {
    /// A learner with the given smoothing pseudo-count.
    pub fn new(smoothing: f64) -> Self {
        assert!(smoothing > 0.0, "smoothing must be positive");
        Self { smoothing }
    }
}

/// A fitted Naive Bayes model.
///
/// Stores log-priors and per-feature log-conditional tables
/// `log P(F = v | Y = y)` laid out as `[feature][y * |D_F| + v]`.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesModel {
    feats: Vec<usize>,
    n_classes: usize,
    log_prior: Vec<f64>,
    /// Per selected feature: flattened `n_classes x domain_size` table.
    log_cond: Vec<Vec<f64>>,
    /// Domain size per selected feature (parallel to `feats`).
    domain_sizes: Vec<usize>,
}

impl Classifier for NaiveBayes {
    type Fitted = NaiveBayesModel;

    fn fit(&self, data: &Dataset, rows: &[usize], feats: &[usize]) -> NaiveBayesModel {
        let _span = hamlet_obs::span!("ml.nb_fit", rows = rows.len(), feats = feats.len());
        hamlet_obs::counter_add!("hamlet_nb_fits_total", 1);
        let n_classes = data.n_classes();
        let alpha = self.smoothing;
        let labels = data.labels();

        // Class counts -> log priors (smoothed so empty classes don't blow up).
        let mut class_counts = vec![0u64; n_classes];
        for &r in rows {
            class_counts[labels[r] as usize] += 1;
        }
        let total = rows.len() as f64 + alpha * n_classes as f64;
        let log_prior: Vec<f64> = class_counts
            .iter()
            .map(|&c| ((c as f64 + alpha) / total).ln())
            .collect();

        // Conditional tables.
        let mut log_cond = Vec::with_capacity(feats.len());
        let mut domain_sizes = Vec::with_capacity(feats.len());
        for &f in feats {
            let feature = data.feature(f);
            let d = feature.domain_size;
            let mut counts = vec![0u64; n_classes * d];
            for &r in rows {
                let y = labels[r] as usize;
                let v = feature.codes[r] as usize;
                counts[y * d + v] += 1;
            }
            let mut table = vec![0f64; n_classes * d];
            for y in 0..n_classes {
                let denom = class_counts[y] as f64 + alpha * d as f64;
                for v in 0..d {
                    table[y * d + v] = ((counts[y * d + v] as f64 + alpha) / denom).ln();
                }
            }
            log_cond.push(table);
            domain_sizes.push(d);
        }

        NaiveBayesModel {
            feats: feats.to_vec(),
            n_classes,
            log_prior,
            log_cond,
            domain_sizes,
        }
    }
}

impl NaiveBayesModel {
    /// Assembles a model from raw parts — used by
    /// [`crate::incremental::IncrementalNaiveBayes`], which maintains the
    /// count tables itself.
    pub fn from_parts(
        feats: Vec<usize>,
        n_classes: usize,
        log_prior: Vec<f64>,
        log_cond: Vec<Vec<f64>>,
        domain_sizes: Vec<usize>,
    ) -> Self {
        assert_eq!(log_prior.len(), n_classes);
        assert_eq!(log_cond.len(), feats.len());
        assert_eq!(domain_sizes.len(), feats.len());
        Self {
            feats,
            n_classes,
            log_prior,
            log_cond,
            domain_sizes,
        }
    }

    /// Unnormalized log-posterior `log P(y) + sum_f log P(x_f | y)` for
    /// each class on one row.
    pub fn log_posterior<S: CodeSource>(&self, data: &S, row: usize) -> Vec<f64> {
        let mut scores = self.log_prior.clone();
        for (i, &f) in self.feats.iter().enumerate() {
            let v = data.code(f, row) as usize;
            let d = self.domain_sizes[i];
            let table = &self.log_cond[i];
            for (y, s) in scores.iter_mut().enumerate() {
                *s += table[y * d + v];
            }
        }
        scores
    }

    /// Log-priors `log P(y)` per class.
    pub fn log_prior(&self) -> &[f64] {
        &self.log_prior
    }

    /// Number of classes the model was fitted on.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Domain size per selected feature (parallel to [`Model::features`]).
    pub fn domain_sizes(&self) -> &[usize] {
        &self.domain_sizes
    }

    /// Log-conditional table of the `i`-th selected feature, flattened
    /// `[y * |D_F| + v]`.
    pub fn log_cond(&self, i: usize) -> &[f64] {
        &self.log_cond[i]
    }

    /// Normalized class probabilities on one row (softmax of the
    /// log-posterior).
    pub fn predict_proba<S: CodeSource>(&self, data: &S, row: usize) -> Vec<f64> {
        let scores = self.log_posterior(data, row);
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }

    /// Validation error on `rows`, **bitwise identical** to
    /// `metric.eval(self, data, rows)` but allocation-free: one score
    /// buffer reused across rows, and each selected feature's code
    /// column resolved once instead of per `(row, feature)` access.
    /// The float operations and their order are exactly those of
    /// [`Model::predict_row`] composed with
    /// [`crate::classifier::zero_one_error`] / [`crate::classifier::rmse`],
    /// which is what lets the candidate sweeps in `hamlet-fs` score
    /// through this path and still select the same subsets as the
    /// row-at-a-time reference. Scoring dominates a sweep's cost once
    /// fits assemble from cached count tables, so this is the other
    /// half of the sweep speedup.
    pub fn batch_error(&self, data: &Dataset, rows: &[usize], metric: ErrorMetric) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let labels = data.labels();
        let cols: Vec<&[u32]> = self
            .feats
            .iter()
            .map(|&f| data.feature(f).codes.as_slice())
            .collect();
        let c = self.n_classes;
        // Transpose each log-conditional table from `[y * d + v]` to
        // `[v * c + y]` once, so scoring a row reads `c` contiguous
        // floats per feature instead of striding by the domain size.
        // The per-class addends and their order are unchanged.
        let t_tables: Vec<Vec<f64>> = self
            .log_cond
            .iter()
            .zip(&self.domain_sizes)
            .map(|(table, &d)| {
                let mut t = vec![0f64; d * c];
                for y in 0..c {
                    for v in 0..d {
                        t[v * c + y] = table[y * d + v];
                    }
                }
                t
            })
            .collect();
        let mut scores = vec![0f64; c];
        let mut wrong = 0usize;
        let mut sq_sum = 0.0;
        for &r in rows {
            scores.copy_from_slice(&self.log_prior);
            for (col, tt) in cols.iter().zip(&t_tables) {
                let v = col[r] as usize;
                let block = &tt[v * c..v * c + c];
                for (s, &l) in scores.iter_mut().zip(block) {
                    *s += l;
                }
            }
            // Deterministic tie-break: lowest class wins (as predict_row).
            let mut best = 0usize;
            for y in 1..self.n_classes {
                if scores[y] > scores[best] {
                    best = y;
                }
            }
            match metric {
                ErrorMetric::ZeroOne => wrong += usize::from(best as u32 != labels[r]),
                ErrorMetric::Rmse => {
                    let diff = best as f64 - labels[r] as f64;
                    sq_sum += diff * diff;
                }
            }
        }
        match metric {
            ErrorMetric::ZeroOne => wrong as f64 / rows.len() as f64,
            ErrorMetric::Rmse => (sq_sum / rows.len() as f64).sqrt(),
        }
    }
}

impl Model for NaiveBayesModel {
    fn predict_row<S: CodeSource>(&self, data: &S, row: usize) -> u32 {
        let scores = self.log_posterior(data, row);
        // Deterministic tie-break: lowest class wins.
        let mut best = 0usize;
        for y in 1..self.n_classes {
            if scores[y] > scores[best] {
                best = y;
            }
        }
        best as u32
    }

    fn features(&self) -> &[usize] {
        &self.feats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::zero_one_error;
    use crate::dataset::Feature;

    fn xor_free_data() -> Dataset {
        // y = x0 (perfectly predictable from feature 0); x1 is noise.
        Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 2,
                    codes: vec![0, 0, 1, 1, 0, 1, 0, 1],
                },
                Feature {
                    name: "noise".into(),
                    domain_size: 2,
                    codes: vec![0, 1, 0, 1, 1, 0, 0, 1],
                },
            ],
            vec![0, 0, 1, 1, 0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn learns_deterministic_concept() {
        let d = xor_free_data();
        let rows: Vec<usize> = (0..8).collect();
        let m = NaiveBayes::default().fit(&d, &rows, &[0, 1]);
        assert_eq!(zero_one_error(&m, &d, &rows), 0.0);
    }

    #[test]
    fn empty_feature_set_predicts_majority() {
        let d = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 2,
                codes: vec![0, 1, 0, 1, 0],
            }],
            vec![1, 1, 1, 0, 0],
            2,
        );
        let rows: Vec<usize> = (0..5).collect();
        let m = NaiveBayes::default().fit(&d, &rows, &[]);
        for r in 0..5 {
            assert_eq!(m.predict_row(&d, r), 1);
        }
    }

    #[test]
    fn matches_hand_computation() {
        // 4 examples, 1 boolean feature, alpha = 1.
        // y: [0,0,0,1]; x: [0,1,0,1]
        // P(y=0) = (3+1)/(4+2) = 2/3 ; P(y=1) = (1+1)/6 = 1/3
        // P(x=1|y=0) = (1+1)/(3+2) = 2/5 ; P(x=1|y=1) = (1+1)/(1+2) = 2/3
        let d = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 2,
                codes: vec![0, 1, 0, 1],
            }],
            vec![0, 0, 0, 1],
            2,
        );
        let m = NaiveBayes::default().fit(&d, &[0, 1, 2, 3], &[0]);
        let p = m.predict_proba(&d, 1); // x = 1
        let p0 = (2.0 / 3.0) * (2.0 / 5.0);
        let p1 = (1.0 / 3.0) * (2.0 / 3.0);
        assert!((p[0] - p0 / (p0 + p1)).abs() < 1e-12);
        assert!((p[1] - p1 / (p0 + p1)).abs() < 1e-12);
    }

    #[test]
    fn smoothing_handles_unseen_values() {
        // Train only sees code 0; predicting a row with code 2 must not
        // panic or produce NaN.
        let d = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 3,
                codes: vec![0, 0, 2],
            }],
            vec![0, 1, 0],
            2,
        );
        let m = NaiveBayes::default().fit(&d, &[0, 1], &[0]);
        let p = m.predict_proba(&d, 2);
        assert!(p.iter().all(|x| x.is_finite() && *x > 0.0));
    }

    #[test]
    fn proba_sums_to_one() {
        let d = xor_free_data();
        let rows: Vec<usize> = (0..8).collect();
        let m = NaiveBayes::default().fit(&d, &rows, &[0, 1]);
        for r in 0..8 {
            let p = m.predict_proba(&d, r);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn feature_subset_is_respected() {
        let d = xor_free_data();
        let rows: Vec<usize> = (0..8).collect();
        // Training on the noise feature alone must not reach zero error.
        let m = NaiveBayes::default().fit(&d, &rows, &[1]);
        assert!(zero_one_error(&m, &d, &rows) > 0.0);
        assert_eq!(m.features(), &[1]);
    }

    #[test]
    #[should_panic(expected = "smoothing must be positive")]
    fn zero_smoothing_rejected() {
        let _ = NaiveBayes::new(0.0);
    }
}
