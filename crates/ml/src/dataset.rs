//! Flat ML datasets extracted from relational tables.
//!
//! A [`Dataset`] is the single-table view every ML toolkit expects: named
//! nominal feature columns plus a label column. Classifiers and feature
//! selection operate on *index sets* (row subsets for splits, feature
//! subsets for selection) so no data is copied during greedy search.

use hamlet_relational::{RelationalError, Role, Table};

/// One nominal feature column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    /// Attribute name (as in the originating table).
    pub name: String,
    /// Domain size `|D_F|`.
    pub domain_size: usize,
    /// Dense codes, one per example.
    pub codes: Vec<u32>,
}

/// A labeled, all-nominal dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    features: Vec<Feature>,
    labels: Vec<u32>,
    n_classes: usize,
}

impl Dataset {
    /// Builds a dataset from parts.
    ///
    /// # Panics
    /// Panics if lengths disagree, `n_classes == 0`, or any code is out of
    /// its declared domain — datasets are expected to come from validated
    /// tables or generators.
    pub fn new(features: Vec<Feature>, labels: Vec<u32>, n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        for f in &features {
            assert_eq!(
                f.codes.len(),
                labels.len(),
                "feature '{}' length mismatch",
                f.name
            );
            assert!(
                f.codes.iter().all(|&c| (c as usize) < f.domain_size),
                "feature '{}' has codes outside its domain",
                f.name
            );
        }
        assert!(
            labels.iter().all(|&y| (y as usize) < n_classes),
            "labels outside class domain"
        );
        Self {
            features,
            labels,
            n_classes,
        }
    }

    /// [`Dataset::new`] for call sites whose inputs are **already
    /// validated** — generators and the simulation loop, where the
    /// O(n·d) full-domain re-check of `new` is measurable hot-path
    /// waste. The invariants still hold (checked in debug builds);
    /// external/ingest paths must keep using the panicking [`Dataset::new`].
    pub fn from_trusted_parts(features: Vec<Feature>, labels: Vec<u32>, n_classes: usize) -> Self {
        debug_assert!(n_classes > 0, "need at least one class");
        for f in &features {
            debug_assert_eq!(
                f.codes.len(),
                labels.len(),
                "feature '{}' length mismatch",
                f.name
            );
            debug_assert!(
                f.codes.iter().all(|&c| (c as usize) < f.domain_size),
                "feature '{}' has codes outside its domain",
                f.name
            );
        }
        debug_assert!(
            labels.iter().all(|&y| (y as usize) < n_classes),
            "labels outside class domain"
        );
        Self {
            features,
            labels,
            n_classes,
        }
    }

    /// [`Dataset::from_table`] without the O(n·d) re-validation of
    /// [`Dataset::new`], for tables produced inside this process (the
    /// simulation and generator paths — a `Table` already enforces its
    /// domains on construction).
    ///
    /// # Panics
    /// Panics if the table has no target attribute, like
    /// [`Dataset::from_table`].
    pub fn from_table_trusted(table: &Table) -> Self {
        let target_idx = table
            .schema()
            .target()
            .expect("table must declare a target attribute");
        let labels = table.column(target_idx).codes().to_vec();
        let n_classes = table.column(target_idx).domain().size();
        let mut features = Vec::new();
        for (def, col) in table.schema().attributes().iter().zip(table.columns()) {
            if matches!(def.role, Role::Feature | Role::ForeignKey { .. }) {
                features.push(Feature {
                    name: def.name.clone(),
                    domain_size: col.domain().size(),
                    codes: col.codes().to_vec(),
                });
            }
        }
        Self::from_trusted_parts(features, labels, n_classes)
    }

    /// Extracts a dataset from a relational table: every feature and
    /// foreign-key attribute becomes an ML feature; the target becomes the
    /// label.
    ///
    /// # Panics
    /// Panics if the table has no target attribute. Fallible callers
    /// should use [`Dataset::try_from_table`].
    pub fn from_table(table: &Table) -> Self {
        Self::try_from_table(table).expect("table must declare a target attribute")
    }

    /// Fallible variant of [`Dataset::from_table`]: returns
    /// [`RelationalError::MissingRole`] instead of panicking when the
    /// table declares no target attribute.
    pub fn try_from_table(table: &Table) -> hamlet_relational::Result<Self> {
        let target_idx = table
            .schema()
            .target()
            .ok_or_else(|| RelationalError::MissingRole {
                table: table.name().to_string(),
                role: "target",
            })?;
        let labels = table.column(target_idx).codes().to_vec();
        let n_classes = table.column(target_idx).domain().size();
        let mut features = Vec::new();
        for (def, col) in table.schema().attributes().iter().zip(table.columns()) {
            if matches!(def.role, Role::Feature | Role::ForeignKey { .. }) {
                features.push(Feature {
                    name: def.name.clone(),
                    domain_size: col.domain().size(),
                    codes: col.codes().to_vec(),
                });
            }
        }
        Ok(Self::new(features, labels, n_classes))
    }

    /// Number of examples.
    pub fn n_examples(&self) -> usize {
        self.labels.len()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Number of classes `|D_Y|`.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// All features.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Feature by position.
    pub fn feature(&self, idx: usize) -> &Feature {
        &self.features[idx]
    }

    /// Position of the feature named `name`.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// Labels for all examples.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Sum of `(|D_F|)` over the given feature subset (one-hot width).
    pub fn one_hot_width(&self, feats: &[usize]) -> usize {
        feats.iter().map(|&f| self.features[f].domain_size).sum()
    }

    /// Sum of `(|D_F| - 1)` over the given feature subset: the binary
    /// vector representation width used in the paper's VC-dimension
    /// argument (Sec 3.2).
    pub fn binary_coded_width(&self, feats: &[usize]) -> usize {
        feats
            .iter()
            .map(|&f| self.features[f].domain_size.saturating_sub(1))
            .sum()
    }

    /// Names of the features at the given positions.
    pub fn feature_names(&self, feats: &[usize]) -> Vec<&str> {
        feats
            .iter()
            .map(|&f| self.features[f].name.as_str())
            .collect()
    }

    /// Empirical class distribution over the given rows.
    pub fn class_distribution(&self, rows: &[usize]) -> Vec<f64> {
        let mut counts = vec![0usize; self.n_classes];
        for &r in rows {
            counts[self.labels[r] as usize] += 1;
        }
        let n = rows.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_relational::{Domain, TableBuilder};

    pub(crate) fn toy() -> Dataset {
        Dataset::new(
            vec![
                Feature {
                    name: "a".into(),
                    domain_size: 2,
                    codes: vec![0, 1, 0, 1],
                },
                Feature {
                    name: "b".into(),
                    domain_size: 3,
                    codes: vec![2, 1, 0, 2],
                },
            ],
            vec![0, 1, 0, 1],
            2,
        )
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.n_examples(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.feature_index("b"), Some(1));
        assert_eq!(d.feature_index("zzz"), None);
        assert_eq!(d.one_hot_width(&[0, 1]), 5);
        assert_eq!(d.binary_coded_width(&[0, 1]), 3);
        assert_eq!(d.feature_names(&[1]), vec!["b"]);
    }

    #[test]
    fn class_distribution_counts() {
        let d = toy();
        assert_eq!(d.class_distribution(&[0, 1, 2, 3]), vec![0.5, 0.5]);
        assert_eq!(d.class_distribution(&[0, 2]), vec![1.0, 0.0]);
    }

    #[test]
    fn from_table_takes_features_and_fks() {
        let rid = Domain::indexed("fk", 2).shared();
        let t = TableBuilder::new("S")
            .primary_key("sid", Domain::indexed("sid", 3).shared(), vec![0, 1, 2])
            .target("y", Domain::indexed("y", 3).shared(), vec![0, 2, 1])
            .feature("x", Domain::boolean("x").shared(), vec![1, 0, 1])
            .foreign_key("fk", "R", rid, vec![0, 1, 0])
            .build()
            .unwrap();
        let d = Dataset::from_table(&t);
        assert_eq!(d.n_features(), 2); // x and fk; sid and y excluded
        assert_eq!(d.feature(0).name, "x");
        assert_eq!(d.feature(1).name, "fk");
        assert_eq!(d.labels(), &[0, 2, 1]);
        assert_eq!(d.n_classes(), 3);
    }

    #[test]
    fn trusted_paths_agree_with_validated_paths() {
        let d = toy();
        let t =
            Dataset::from_trusted_parts(d.features().to_vec(), d.labels().to_vec(), d.n_classes());
        assert_eq!(d, t);

        let rid = Domain::indexed("fk", 2).shared();
        let table = TableBuilder::new("S")
            .primary_key("sid", Domain::indexed("sid", 3).shared(), vec![0, 1, 2])
            .target("y", Domain::indexed("y", 3).shared(), vec![0, 2, 1])
            .feature("x", Domain::boolean("x").shared(), vec![1, 0, 1])
            .foreign_key("fk", "R", rid, vec![0, 1, 0])
            .build()
            .unwrap();
        assert_eq!(
            Dataset::from_table(&table),
            Dataset::from_table_trusted(&table)
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        Dataset::new(
            vec![Feature {
                name: "a".into(),
                domain_size: 2,
                codes: vec![0],
            }],
            vec![0, 1],
            2,
        );
    }

    #[test]
    #[should_panic(expected = "outside its domain")]
    fn code_out_of_domain_panics() {
        Dataset::new(
            vec![Feature {
                name: "a".into(),
                domain_size: 2,
                codes: vec![5],
            }],
            vec![0],
            2,
        );
    }
}
