//! Hyper-parameter selection on the validation split.
//!
//! The paper tunes per-instance hyper-parameters (filter cutoffs, glmnet
//! regularization) "using the validation error" (Secs 2.2, 5). This
//! module is that protocol for any learner family: evaluate a grid of
//! configurations, keep the validation-best, report its test error.

use crate::classifier::{Classifier, ErrorMetric};
use crate::dataset::Dataset;

/// The outcome of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult<M> {
    /// Index of the winning configuration in the grid.
    pub best_index: usize,
    /// Validation error of the winner.
    pub validation_error: f64,
    /// The winning fitted model.
    pub model: M,
}

/// Fits every learner in `grid` on `train`, scores each on `validation`,
/// and returns the winner (ties: first in grid order — put preferred
/// configurations first).
///
/// # Panics
/// Panics on an empty grid.
pub fn grid_search<C: Classifier>(
    grid: &[C],
    data: &Dataset,
    train: &[usize],
    validation: &[usize],
    feats: &[usize],
    metric: ErrorMetric,
) -> GridSearchResult<C::Fitted> {
    assert!(!grid.is_empty(), "grid must be non-empty");
    let mut best: Option<GridSearchResult<C::Fitted>> = None;
    for (i, learner) in grid.iter().enumerate() {
        let model = learner.fit(data, train, feats);
        let err = metric.eval(&model, data, validation);
        let better = best.as_ref().is_none_or(|b| err < b.validation_error);
        if better {
            best = Some(GridSearchResult {
                best_index: i,
                validation_error: err,
                model,
            });
        }
    }
    best.expect("non-empty grid")
}

/// Convenience: grid-search then score the winner on `test`.
pub fn grid_search_test_error<C: Classifier>(
    grid: &[C],
    data: &Dataset,
    train: &[usize],
    validation: &[usize],
    test: &[usize],
    feats: &[usize],
    metric: ErrorMetric,
) -> (usize, f64) {
    let result = grid_search(grid, data, train, validation, feats, metric);
    (result.best_index, metric.eval(&result.model, data, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Model;
    use crate::dataset::Feature;
    use crate::naive_bayes::NaiveBayes;

    fn data() -> Dataset {
        let n = 300u32;
        let x: Vec<u32> = (0..n).map(|i| i % 2).collect();
        let y = x.clone();
        Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 2,
                codes: x,
            }],
            y,
            2,
        )
    }

    #[test]
    fn picks_validation_best() {
        let d = data();
        let rows: Vec<usize> = (0..300).collect();
        // Absurd over-smoothing hurts; alpha = 1 wins.
        let grid = vec![NaiveBayes::new(1.0), NaiveBayes::new(10_000.0)];
        let r = grid_search(
            &grid,
            &d,
            &rows[..150],
            &rows[150..225],
            &[0],
            ErrorMetric::ZeroOne,
        );
        assert_eq!(r.best_index, 0);
        assert_eq!(r.validation_error, 0.0);
    }

    #[test]
    fn ties_prefer_first() {
        let d = data();
        let rows: Vec<usize> = (0..300).collect();
        let grid = vec![NaiveBayes::new(1.0), NaiveBayes::new(2.0)];
        let r = grid_search(
            &grid,
            &d,
            &rows[..150],
            &rows[150..225],
            &[0],
            ErrorMetric::ZeroOne,
        );
        assert_eq!(r.best_index, 0);
    }

    #[test]
    fn test_error_reported_for_winner() {
        let d = data();
        let rows: Vec<usize> = (0..300).collect();
        let grid = vec![NaiveBayes::new(1.0)];
        let (idx, err) = grid_search_test_error(
            &grid,
            &d,
            &rows[..150],
            &rows[150..225],
            &rows[225..],
            &[0],
            ErrorMetric::ZeroOne,
        );
        assert_eq!(idx, 0);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn winner_model_is_usable() {
        let d = data();
        let rows: Vec<usize> = (0..300).collect();
        let grid = vec![NaiveBayes::new(1.0)];
        let r = grid_search(
            &grid,
            &d,
            &rows[..150],
            &rows[150..225],
            &[0],
            ErrorMetric::ZeroOne,
        );
        assert_eq!(r.model.predict_row(&d, 0), d.labels()[0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_panics() {
        let d = data();
        let rows: Vec<usize> = (0..10).collect();
        let grid: Vec<NaiveBayes> = vec![];
        grid_search(&grid, &d, &rows, &rows, &[0], ErrorMetric::ZeroOne);
    }
}
