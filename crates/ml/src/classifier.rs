//! Classifier traits.
//!
//! A [`Classifier`] is a *learner configuration* (hyper-parameters); its
//! [`Classifier::fit`] produces a [`Model`]. Both operate on index sets
//! over a shared [`Dataset`], so training a model on a feature subset
//! (as greedy feature selection does thousands of times) copies nothing.

use crate::dataset::Dataset;
use crate::source::CodeSource;

/// A fitted model that predicts a class for any row of a dataset with the
/// same feature layout it was trained on.
///
/// Prediction is generic over [`CodeSource`], so a model fitted on a
/// materialized [`Dataset`] can score rows of a factorized view with the
/// same logical layout (and vice versa).
pub trait Model {
    /// Predicts the class of one row.
    fn predict_row<S: CodeSource>(&self, data: &S, row: usize) -> u32;

    /// Predicts the classes of many rows.
    fn predict<S: CodeSource>(&self, data: &S, rows: &[usize]) -> Vec<u32> {
        rows.iter().map(|&r| self.predict_row(data, r)).collect()
    }

    /// The feature subset this model uses (positions into the dataset).
    fn features(&self) -> &[usize];
}

/// A learner: hyper-parameters plus a fit procedure.
pub trait Classifier {
    /// The model type this learner produces.
    type Fitted: Model;

    /// Fits a model on `rows`, using only the feature positions in
    /// `feats`. An empty `feats` must yield a majority-class predictor
    /// (the empty subset is the starting point of forward selection).
    fn fit(&self, data: &Dataset, rows: &[usize], feats: &[usize]) -> Self::Fitted;
}

/// Zero-one error of `model` on `rows` (fraction misclassified).
pub fn zero_one_error<M: Model, S: CodeSource>(model: &M, data: &S, rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let wrong = rows
        .iter()
        .filter(|&&r| model.predict_row(data, r) != data.label(r))
        .count();
    wrong as f64 / rows.len() as f64
}

/// Root-mean-squared error of `model` on `rows`, treating class codes as
/// ordinal values — the paper's metric for multi-class ordinal targets
/// (star ratings, sales levels).
pub fn rmse<M: Model, S: CodeSource>(model: &M, data: &S, rows: &[usize]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let sq_sum: f64 = rows
        .iter()
        .map(|&r| {
            let d = model.predict_row(data, r) as f64 - data.label(r) as f64;
            d * d
        })
        .sum();
    (sq_sum / rows.len() as f64).sqrt()
}

/// The error metric appropriate for a dataset per the paper's convention:
/// zero-one for binary targets, RMSE for multi-class ordinal targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMetric {
    /// Fraction of misclassified examples.
    ZeroOne,
    /// Root mean squared error on ordinal class codes.
    Rmse,
}

impl ErrorMetric {
    /// Chooses the paper's metric for a target with `n_classes` classes.
    pub fn for_classes(n_classes: usize) -> Self {
        if n_classes <= 2 {
            Self::ZeroOne
        } else {
            Self::Rmse
        }
    }

    /// Evaluates the metric.
    pub fn eval<M: Model, S: CodeSource>(self, model: &M, data: &S, rows: &[usize]) -> f64 {
        match self {
            Self::ZeroOne => zero_one_error(model, data, rows),
            Self::Rmse => rmse(model, data, rows),
        }
    }

    /// Metric name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::ZeroOne => "Zero-one",
            Self::Rmse => "RMSE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;

    /// A constant-prediction stub for metric tests.
    struct Const(u32);
    impl Model for Const {
        fn predict_row<S: CodeSource>(&self, _d: &S, _r: usize) -> u32 {
            self.0
        }
        fn features(&self) -> &[usize] {
            &[]
        }
    }

    fn data() -> Dataset {
        Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 2,
                codes: vec![0, 1, 0, 1],
            }],
            vec![0, 1, 2, 3],
            4,
        )
    }

    #[test]
    fn zero_one_counts_mismatches() {
        let d = data();
        assert_eq!(zero_one_error(&Const(0), &d, &[0, 1, 2, 3]), 0.75);
        assert_eq!(zero_one_error(&Const(0), &d, &[0]), 0.0);
        assert_eq!(zero_one_error(&Const(0), &d, &[]), 0.0);
    }

    #[test]
    fn rmse_is_root_mean_square() {
        let d = data();
        // predictions 1 vs labels 0,1,2,3 -> errors 1,0,1,2 -> mse 6/4
        let e = rmse(&Const(1), &d, &[0, 1, 2, 3]);
        assert!((e - (1.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn metric_selection_follows_paper() {
        assert_eq!(ErrorMetric::for_classes(2), ErrorMetric::ZeroOne);
        assert_eq!(ErrorMetric::for_classes(5), ErrorMetric::Rmse);
        assert_eq!(ErrorMetric::ZeroOne.name(), "Zero-one");
        assert_eq!(ErrorMetric::Rmse.name(), "RMSE");
    }

    #[test]
    fn metric_eval_dispatches() {
        let d = data();
        let rows = [0usize, 1, 2, 3];
        assert_eq!(
            ErrorMetric::ZeroOne.eval(&Const(0), &d, &rows),
            zero_one_error(&Const(0), &d, &rows)
        );
        assert_eq!(
            ErrorMetric::Rmse.eval(&Const(1), &d, &rows),
            rmse(&Const(1), &d, &rows)
        );
    }
}
