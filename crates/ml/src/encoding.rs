//! Numeric recodings of nominal features.
//!
//! Sec 3.2: "we recode the features to numeric space using the standard
//! binary vector representation, i.e., a feature F is converted to a 0/1
//! vector with `|D_F| - 1` dimensions (the last category is represented
//! as a zero vector). With this recoding, the VC dimension of Naive Bayes
//! (or logistic regression) on a set X of nominal features is
//! `1 + sum_F (|D_F| - 1)`."
//!
//! Two encoders are provided:
//! * [`Encoding::OneHot`] — `|D_F|` indicator dimensions per feature (the
//!   representation logistic regression trains on internally);
//! * [`Encoding::BinaryCoded`] — the paper's `|D_F| - 1` representation
//!   used in the VC-dimension argument.
//!
//! Both produce *sparse* rows: a list of active dimensions (all active
//! values are 1.0), because every nominal feature activates at most one
//! dimension.

use crate::dataset::Dataset;

/// Which dummy coding to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// One indicator column per category.
    OneHot,
    /// `|D_F| - 1` indicator columns; the last category encodes as all
    /// zeros (the paper's binary vector representation).
    BinaryCoded,
}

/// A category code outside the domain the encoder was fitted on.
///
/// The encoder's policy for categories unseen at fit time is **strict**:
/// encoding a code `>= |D_F|` (as recorded when the encoder was fitted) is
/// a typed error, never a silent remap. There is deliberately no reserved
/// "unknown" dimension — a linear model has no trained weight for such a
/// column, so scoring it would silently borrow the next feature's weights
/// (the pre-fix behavior). Callers that expect open-domain values at
/// prediction time (foreign keys under cold start) must remap them to the
/// `Others` bucket *before* encoding, exactly as
/// `hamlet_relational::coldstart` does at train time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// Position of the offending feature in the dataset.
    pub feature: usize,
    /// The out-of-domain category code.
    pub code: u32,
    /// The domain size recorded at fit time.
    pub domain_size: usize,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "category code {} of feature {} was unseen at fit time \
             (fitted domain size {}); remap open-domain values to the \
             Others bucket before encoding",
            self.code, self.feature, self.domain_size
        )
    }
}

impl std::error::Error for EncodeError {}

/// A fitted encoder over a feature subset of a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoder {
    encoding: Encoding,
    feats: Vec<usize>,
    /// Starting dimension of each selected feature.
    offsets: Vec<usize>,
    /// Per-feature encoded width.
    widths: Vec<usize>,
    /// Per-feature domain size at fit time (valid codes are `< domains[i]`;
    /// this differs from `widths` under [`Encoding::BinaryCoded`]).
    domains: Vec<usize>,
    dim: usize,
}

impl Encoder {
    /// Builds an encoder for the given feature positions of `data`.
    pub fn fit(data: &Dataset, feats: &[usize], encoding: Encoding) -> Self {
        let mut offsets = Vec::with_capacity(feats.len());
        let mut widths = Vec::with_capacity(feats.len());
        let mut domains = Vec::with_capacity(feats.len());
        let mut dim = 0usize;
        for &f in feats {
            let d = data.feature(f).domain_size;
            let w = match encoding {
                Encoding::OneHot => d,
                Encoding::BinaryCoded => d.saturating_sub(1),
            };
            offsets.push(dim);
            widths.push(w);
            domains.push(d);
            dim += w;
        }
        Self {
            encoding,
            feats: feats.to_vec(),
            offsets,
            widths,
            domains,
            dim,
        }
    }

    /// Total encoded dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The VC dimension of a linear classifier over this encoding:
    /// `1 + dim` for the binary-coded representation (Sec 3.2). For
    /// one-hot the parameter space is larger but the effective dimension
    /// is the same (the per-feature columns are linearly dependent), so
    /// this returns `1 + binary_coded_width` in both cases.
    pub fn linear_vc_dimension(&self, data: &Dataset) -> usize {
        1 + data.binary_coded_width(&self.feats)
    }

    /// Encodes one row as the sorted list of active dimensions.
    ///
    /// Codes unseen at fit time are a typed [`EncodeError`] (see its docs
    /// for the policy rationale).
    pub fn encode_row(&self, data: &Dataset, row: usize) -> Result<Vec<usize>, EncodeError> {
        let mut active = Vec::with_capacity(self.feats.len());
        for (i, &f) in self.feats.iter().enumerate() {
            let code = data.feature(f).codes[row];
            let v = code as usize;
            if v >= self.domains[i] {
                return Err(EncodeError {
                    feature: f,
                    code,
                    domain_size: self.domains[i],
                });
            }
            match self.encoding {
                Encoding::OneHot => active.push(self.offsets[i] + v),
                Encoding::BinaryCoded => {
                    // The last category is the zero vector.
                    if v < self.widths[i] {
                        active.push(self.offsets[i] + v);
                    }
                }
            }
        }
        Ok(active)
    }

    /// Encodes one row densely (0.0/1.0 vector of [`Encoder::dim`]).
    ///
    /// Same unseen-category policy as [`Encoder::encode_row`].
    pub fn encode_row_dense(&self, data: &Dataset, row: usize) -> Result<Vec<f64>, EncodeError> {
        let mut out = vec![0.0; self.dim];
        for d in self.encode_row(data, row)? {
            out[d] = 1.0;
        }
        Ok(out)
    }

    /// Maps an encoded dimension back to `(feature position, category)`.
    pub fn decode_dimension(&self, dim: usize) -> Option<(usize, u32)> {
        for (i, (&off, &w)) in self.offsets.iter().zip(&self.widths).enumerate() {
            if dim >= off && dim < off + w {
                return Some((self.feats[i], (dim - off) as u32));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;

    fn data() -> Dataset {
        Dataset::new(
            vec![
                Feature {
                    name: "a".into(),
                    domain_size: 3,
                    codes: vec![0, 1, 2],
                },
                Feature {
                    name: "b".into(),
                    domain_size: 2,
                    codes: vec![1, 0, 1],
                },
            ],
            vec![0, 1, 0],
            2,
        )
    }

    #[test]
    fn one_hot_dimensions() {
        let d = data();
        let e = Encoder::fit(&d, &[0, 1], Encoding::OneHot);
        assert_eq!(e.dim(), 5);
        assert_eq!(e.encode_row(&d, 0).unwrap(), vec![0, 4]); // a=0, b=1
        assert_eq!(e.encode_row(&d, 2).unwrap(), vec![2, 4]); // a=2, b=1
    }

    #[test]
    fn binary_coded_drops_last_category() {
        let d = data();
        let e = Encoder::fit(&d, &[0, 1], Encoding::BinaryCoded);
        assert_eq!(e.dim(), 3); // (3-1) + (2-1)
        assert_eq!(e.encode_row(&d, 0).unwrap(), vec![0]); // a=0 active; b=1 is last -> zero
        assert_eq!(e.encode_row(&d, 1).unwrap(), vec![1, 2]); // a=1, b=0
        assert_eq!(e.encode_row(&d, 2).unwrap(), Vec::<usize>::new()); // a=2 last, b=1 last
    }

    #[test]
    fn dense_encoding_matches_sparse() {
        let d = data();
        for enc in [Encoding::OneHot, Encoding::BinaryCoded] {
            let e = Encoder::fit(&d, &[0, 1], enc);
            for row in 0..3 {
                let dense = e.encode_row_dense(&d, row).unwrap();
                let active: Vec<usize> = dense
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v == 1.0)
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(active, e.encode_row(&d, row).unwrap(), "{enc:?} row {row}");
            }
        }
    }

    #[test]
    fn vc_dimension_matches_paper_formula() {
        let d = data();
        let e = Encoder::fit(&d, &[0, 1], Encoding::BinaryCoded);
        // 1 + (3-1) + (2-1) = 4.
        assert_eq!(e.linear_vc_dimension(&d), 4);
        // The one-hot encoder reports the same effective dimension.
        let o = Encoder::fit(&d, &[0, 1], Encoding::OneHot);
        assert_eq!(o.linear_vc_dimension(&d), 4);
    }

    #[test]
    fn decode_roundtrip() {
        let d = data();
        let e = Encoder::fit(&d, &[0, 1], Encoding::OneHot);
        assert_eq!(e.decode_dimension(0), Some((0, 0)));
        assert_eq!(e.decode_dimension(2), Some((0, 2)));
        assert_eq!(e.decode_dimension(3), Some((1, 0)));
        assert_eq!(e.decode_dimension(4), Some((1, 1)));
        assert_eq!(e.decode_dimension(5), None);
    }

    #[test]
    fn subset_encoding() {
        let d = data();
        let e = Encoder::fit(&d, &[1], Encoding::OneHot);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.encode_row(&d, 0).unwrap(), vec![1]);
    }

    /// A dataset with the same shape as [`data`] but wider domains, so the
    /// row codes can exceed the domains an encoder fitted on [`data`] saw.
    fn wider_data() -> Dataset {
        Dataset::new(
            vec![
                Feature {
                    name: "a".into(),
                    domain_size: 5,
                    codes: vec![0, 3, 4],
                },
                Feature {
                    name: "b".into(),
                    domain_size: 4,
                    codes: vec![1, 0, 2],
                },
            ],
            vec![0, 1, 0],
            2,
        )
    }

    #[test]
    fn unseen_category_is_a_typed_error() {
        let fit_on = data();
        let wide = wider_data();
        for enc in [Encoding::OneHot, Encoding::BinaryCoded] {
            let e = Encoder::fit(&fit_on, &[0, 1], enc);
            // Row 0 of the wide data is within the fitted domains.
            assert!(e.encode_row(&wide, 0).is_ok(), "{enc:?}");
            // Row 1: a=3 >= |D_a|=3 at fit time.
            let err = e.encode_row(&wide, 1).unwrap_err();
            assert_eq!(
                err,
                EncodeError {
                    feature: 0,
                    code: 3,
                    domain_size: 3,
                },
                "{enc:?}"
            );
            assert!(err.to_string().contains("unseen at fit time"), "{err}");
            // Dense encoding applies the same policy.
            assert!(e.encode_row_dense(&wide, 1).is_err(), "{enc:?}");
        }
    }

    #[test]
    fn unseen_category_never_borrows_the_next_features_dimensions() {
        // Regression guard for the pre-policy bug: a=3 one-hot encoded as
        // offset(a) + 3 = 3, which is dimension 0 of feature b.
        let e = Encoder::fit(&data(), &[0, 1], Encoding::OneHot);
        let wide = wider_data();
        // If this returned Ok, dim 3 would alias b=0. It must not.
        assert!(e.encode_row(&wide, 1).is_err());
    }

    #[test]
    fn binary_coded_last_category_is_not_an_error() {
        // BinaryCoded's width is |D|-1 but the last category is still a
        // *seen* category (the zero vector) — only codes >= |D| error.
        let d = data();
        let e = Encoder::fit(&d, &[0, 1], Encoding::BinaryCoded);
        assert_eq!(e.encode_row(&d, 2).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn empty_feature_set() {
        let d = data();
        let e = Encoder::fit(&d, &[], Encoding::OneHot);
        assert_eq!(e.dim(), 0);
        assert!(e.encode_row(&d, 0).unwrap().is_empty());
        assert_eq!(e.linear_vc_dimension(&d), 1); // intercept only
    }
}
