//! Domingos-style bias/variance decomposition for zero-one loss.
//!
//! Implements the definitions of Sec 4.1 (after Domingos, ICML 2000):
//! for a test point `x` with true conditional distribution `P(Y|X=x)` and
//! a collection of models trained on different training sets `S`,
//!
//! * the **optimal prediction** `t = argmax_y P(y|x)`;
//! * the **noise** `N(x) = 1 - P(t|x)` (irreducible error);
//! * the **main prediction** `y_m` = mode of the models' predictions;
//! * the **bias** `B(x) = L(t, y_m)` (0/1);
//! * the **variance** `V(x) = E_S[L(y_m, y)]` (disagreement with the main
//!   prediction);
//! * the **net variance** `(1 - 2 B(x)) V(x)`, which captures that
//!   variance *helps* on biased points;
//! * the **expected test error** `E[L] = B + (1-2B)V + cN` (Eq 1).
//!
//! For binary targets with no noise the identity `E[L] = B + (1-2B)V` is
//! exact — a property test in this module (and a proptest in the
//! integration suite) checks it.

/// Aggregated decomposition over a test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasVarianceReport {
    /// Average expected zero-one test error over models and label noise.
    pub avg_test_error: f64,
    /// Average bias `B(x)`.
    pub avg_bias: f64,
    /// Average raw variance `V(x)`.
    pub avg_variance: f64,
    /// Average net variance `(1 - 2B(x)) V(x)`.
    pub avg_net_variance: f64,
    /// Average noise `N(x)`.
    pub avg_noise: f64,
    /// Number of test examples aggregated.
    pub n_examples: usize,
    /// Number of models (training sets) aggregated.
    pub n_models: usize,
}

/// Decomposes error given the **true** conditional distributions.
///
/// * `cond[i][y]` — true `P(Y = y | x_i)` for test example `i`;
/// * `preds[m][i]` — prediction of model `m` on test example `i`.
///
/// # Panics
/// Panics if shapes are inconsistent or `preds` is empty.
pub fn decompose(cond: &[Vec<f64>], preds: &[Vec<u32>]) -> BiasVarianceReport {
    assert!(!preds.is_empty(), "need at least one model");
    let n = cond.len();
    for p in preds {
        assert_eq!(p.len(), n, "prediction vector length mismatch");
    }
    let m = preds.len();
    let n_classes = cond.first().map_or(0, Vec::len);

    let mut sum_err = 0.0;
    let mut sum_bias = 0.0;
    let mut sum_var = 0.0;
    let mut sum_net = 0.0;
    let mut sum_noise = 0.0;

    let mut votes = vec![0usize; n_classes];
    for i in 0..n {
        let p = &cond[i];
        assert_eq!(p.len(), n_classes, "class count mismatch at example {i}");

        // Optimal prediction and noise.
        let t = argmax(p);
        let noise = 1.0 - p[t];

        // Main prediction (mode; ties -> lowest class).
        votes.iter_mut().for_each(|v| *v = 0);
        for pred in preds {
            votes[pred[i] as usize] += 1;
        }
        let y_m = argmax_usize(&votes);

        // Bias, variance.
        let bias = if y_m == t { 0.0 } else { 1.0 };
        let disagree = preds.iter().filter(|pr| pr[i] as usize != y_m).count();
        let var = disagree as f64 / m as f64;

        // Expected error of each model under the true conditional:
        // E_Y[L(Y, pred)] = 1 - P(pred | x).
        let err: f64 = preds.iter().map(|pr| 1.0 - p[pr[i] as usize]).sum::<f64>() / m as f64;

        sum_err += err;
        sum_bias += bias;
        sum_var += var;
        sum_net += (1.0 - 2.0 * bias) * var;
        sum_noise += noise;
    }

    let nf = n.max(1) as f64;
    BiasVarianceReport {
        avg_test_error: sum_err / nf,
        avg_bias: sum_bias / nf,
        avg_variance: sum_var / nf,
        avg_net_variance: sum_net / nf,
        avg_noise: sum_noise / nf,
        n_examples: n,
        n_models: m,
    }
}

/// Decomposes error when only observed labels are available (real data):
/// each label is treated as a point-mass conditional distribution, so the
/// noise term is zero and bias/variance are with respect to the observed
/// label.
pub fn decompose_observed(
    labels: &[u32],
    n_classes: usize,
    preds: &[Vec<u32>],
) -> BiasVarianceReport {
    let cond: Vec<Vec<f64>> = labels
        .iter()
        .map(|&y| {
            let mut p = vec![0.0; n_classes];
            p[y as usize] = 1.0;
            p
        })
        .collect();
    decompose(&cond, preds)
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

fn argmax_usize(xs: &[usize]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn perfect_models_have_zero_everything_but_noise() {
        // Two noisy test points with P(Y=1|x) = 0.9; all models predict 1.
        let cond = vec![vec![0.1, 0.9], vec![0.1, 0.9]];
        let preds = vec![vec![1, 1], vec![1, 1], vec![1, 1]];
        let r = decompose(&cond, &preds);
        assert!((r.avg_bias).abs() < EPS);
        assert!((r.avg_variance).abs() < EPS);
        assert!((r.avg_noise - 0.1).abs() < EPS);
        assert!((r.avg_test_error - 0.1).abs() < EPS);
    }

    #[test]
    fn pure_bias() {
        // Noise-free point whose optimal label is 0; all models predict 1.
        let cond = vec![vec![1.0, 0.0]];
        let preds = vec![vec![1], vec![1]];
        let r = decompose(&cond, &preds);
        assert!((r.avg_bias - 1.0).abs() < EPS);
        assert!((r.avg_variance).abs() < EPS);
        assert!((r.avg_test_error - 1.0).abs() < EPS);
    }

    #[test]
    fn pure_variance() {
        // Noise-free, main prediction correct, half the models deviate.
        let cond = vec![vec![1.0, 0.0]];
        let preds = vec![vec![0], vec![0], vec![0], vec![1]];
        let r = decompose(&cond, &preds);
        assert!((r.avg_bias).abs() < EPS);
        assert!((r.avg_variance - 0.25).abs() < EPS);
        assert!((r.avg_net_variance - 0.25).abs() < EPS);
        assert!((r.avg_test_error - 0.25).abs() < EPS);
    }

    #[test]
    fn variance_helps_when_biased() {
        // Main prediction wrong; the one deviating model is right.
        let cond = vec![vec![1.0, 0.0]];
        let preds = vec![vec![1], vec![1], vec![1], vec![0]];
        let r = decompose(&cond, &preds);
        assert!((r.avg_bias - 1.0).abs() < EPS);
        assert!((r.avg_variance - 0.25).abs() < EPS);
        assert!((r.avg_net_variance + 0.25).abs() < EPS); // negative!
                                                          // Identity: E[L] = B + (1-2B)V = 1 - 0.25.
        assert!((r.avg_test_error - 0.75).abs() < EPS);
    }

    #[test]
    fn binary_noise_free_identity_holds() {
        // Random-ish configuration, binary, noise-free: the identity is exact.
        let cond = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        ];
        let preds = vec![
            vec![0, 1, 1, 0],
            vec![0, 0, 1, 1],
            vec![1, 1, 0, 1],
            vec![0, 1, 1, 1],
            vec![0, 1, 0, 1],
        ];
        let r = decompose(&cond, &preds);
        let reconstructed = r.avg_bias + r.avg_net_variance;
        assert!(
            (r.avg_test_error - reconstructed).abs() < EPS,
            "E[L]={} but B+(1-2B)V={}",
            r.avg_test_error,
            reconstructed
        );
    }

    #[test]
    fn observed_labels_variant() {
        let labels = vec![0u32, 1, 0];
        let preds = vec![vec![0, 1, 1], vec![0, 1, 0]];
        let r = decompose_observed(&labels, 2, &preds);
        assert_eq!(r.avg_noise, 0.0);
        assert_eq!(r.n_examples, 3);
        assert_eq!(r.n_models, 2);
        // Example 2: main pred is 0 (tie 1-1 -> lowest), correct; variance 0.5.
        assert!((r.avg_bias - 0.0).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_models_panic() {
        decompose(&[vec![1.0, 0.0]], &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_mismatch_panics() {
        decompose(&[vec![1.0, 0.0]], &[vec![0, 1]]);
    }
}
