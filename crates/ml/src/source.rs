//! Row/column access abstraction shared by materialized and factorized
//! training.
//!
//! Classifiers fundamentally consume `(feature, row) -> code` lookups plus
//! labels; they do not care whether codes live in one flat [`Dataset`] or
//! are resolved through foreign-key indirection against a normalized star
//! schema. [`CodeSource`] captures that access pattern. Because the SGD
//! and counting loops are generic over it, the materialized and factorized
//! paths execute the *same* sequence of floating-point operations and
//! therefore produce bitwise-identical models given identical codes.

use crate::dataset::Dataset;

/// Uniform access to an all-nominal labeled example collection.
///
/// Feature positions follow the same layout as the materialized
/// [`Dataset`] extracted from the corresponding join output, so a feature
/// index means the same column in both worlds.
pub trait CodeSource {
    /// Number of examples (rows).
    fn n_examples(&self) -> usize;

    /// Number of target classes `|D_Y|`.
    fn n_classes(&self) -> usize;

    /// Number of logical feature columns.
    fn n_features(&self) -> usize;

    /// Domain size `|D_F|` of feature `f`.
    fn feature_domain_size(&self, f: usize) -> usize;

    /// Name of feature `f`.
    fn feature_name(&self, f: usize) -> &str;

    /// Dense code of feature `f` on example `row`.
    fn code(&self, f: usize, row: usize) -> u32;

    /// Label of example `row`.
    fn label(&self, row: usize) -> u32;
}

impl CodeSource for Dataset {
    fn n_examples(&self) -> usize {
        Dataset::n_examples(self)
    }

    fn n_classes(&self) -> usize {
        Dataset::n_classes(self)
    }

    fn n_features(&self) -> usize {
        Dataset::n_features(self)
    }

    fn feature_domain_size(&self, f: usize) -> usize {
        self.feature(f).domain_size
    }

    fn feature_name(&self, f: usize) -> &str {
        &self.feature(f).name
    }

    fn code(&self, f: usize, row: usize) -> u32 {
        self.feature(f).codes[row]
    }

    fn label(&self, row: usize) -> u32 {
        self.labels()[row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;

    #[test]
    fn dataset_implements_code_source() {
        let d = Dataset::new(
            vec![Feature {
                name: "a".into(),
                domain_size: 3,
                codes: vec![0, 2, 1],
            }],
            vec![1, 0, 1],
            2,
        );
        assert_eq!(CodeSource::n_examples(&d), 3);
        assert_eq!(CodeSource::n_classes(&d), 2);
        assert_eq!(CodeSource::n_features(&d), 1);
        assert_eq!(d.feature_domain_size(0), 3);
        assert_eq!(d.feature_name(0), "a");
        assert_eq!(d.code(0, 1), 2);
        assert_eq!(d.label(2), 1);
    }
}
