//! Multinomial logistic regression with L1/L2 regularization.
//!
//! The paper evaluates logistic regression with embedded feature selection
//! via "L1 or L2 norm regularization" (Secs 2.2, 5.3). Nominal features
//! are one-hot encoded; training is SGD with *lazy* regularization so each
//! step touches only the active one-hot coordinates — essential when a
//! foreign key contributes tens of thousands of columns.
//!
//! * L2 uses lazily applied multiplicative decay.
//! * L1 uses the truncated-gradient (clipping) scheme of Tsuruoka et al.,
//!   which drives irrelevant coordinates exactly to zero — the paper's
//!   "L1 norm makes some coefficients vanish, which is akin to dropping
//!   the corresponding features" (Sec 2.2).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::classifier::{Classifier, Model};
use crate::dataset::Dataset;
use crate::source::CodeSource;

/// Regularization penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Penalty {
    /// No regularization.
    None,
    /// `lambda * ||w||_1`.
    L1(f64),
    /// `(lambda / 2) * ||w||_2^2`.
    L2(f64),
}

/// Logistic-regression learner configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    /// Regularization penalty.
    pub penalty: Penalty,
    /// Number of SGD passes over the training rows.
    pub epochs: usize,
    /// Initial learning rate; decays as `lr / (1 + epoch)`.
    pub learning_rate: f64,
    /// Shuffle seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self {
            penalty: Penalty::None,
            epochs: 12,
            learning_rate: 0.5,
            seed: 0,
        }
    }
}

impl LogisticRegression {
    /// An L1-regularized learner with penalty strength `lambda`.
    pub fn l1(lambda: f64) -> Self {
        Self {
            penalty: Penalty::L1(lambda),
            ..Self::default()
        }
    }

    /// An L2-regularized learner with penalty strength `lambda`.
    pub fn l2(lambda: f64) -> Self {
        Self {
            penalty: Penalty::L2(lambda),
            ..Self::default()
        }
    }

    /// Sets the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A fitted multinomial logistic-regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegressionModel {
    feats: Vec<usize>,
    /// One-hot offset of each selected feature (parallel to `feats`).
    offsets: Vec<usize>,
    n_classes: usize,
    /// Total one-hot width.
    dim: usize,
    /// Weights laid out `[class][dim]`, flattened.
    weights: Vec<f64>,
    /// Per-class intercept.
    bias: Vec<f64>,
}

impl Classifier for LogisticRegression {
    type Fitted = LogisticRegressionModel;

    fn fit(&self, data: &Dataset, rows: &[usize], feats: &[usize]) -> LogisticRegressionModel {
        self.fit_source(data, rows, feats)
    }
}

impl LogisticRegression {
    /// Fits over any [`CodeSource`] — the flat [`Dataset`] of a
    /// materialized join or a factorized view resolving codes through FK
    /// indirection. The SGD loop is identical either way, so two sources
    /// presenting the same codes yield bitwise-identical weights for the
    /// same seed and epochs.
    pub fn fit_source<S: CodeSource>(
        &self,
        data: &S,
        rows: &[usize],
        feats: &[usize],
    ) -> LogisticRegressionModel {
        self.fit_source_warm(data, rows, feats, None)
    }

    /// [`LogisticRegression::fit_source`] with an optional **warm start**:
    /// weight blocks of features shared with `warm` (matched by dataset
    /// position) and the intercepts are copied in before SGD runs, so a
    /// candidate fit during greedy selection starts from the parent
    /// subset's solution instead of from zero. With `warm = None` this is
    /// exactly `fit_source` — same seed, same shuffle, same trajectory.
    pub fn fit_source_warm<S: CodeSource>(
        &self,
        data: &S,
        rows: &[usize],
        feats: &[usize],
        warm: Option<&LogisticRegressionModel>,
    ) -> LogisticRegressionModel {
        let _span = hamlet_obs::span!("ml.logreg_fit", rows = rows.len(), feats = feats.len());
        hamlet_obs::counter_add!("hamlet_logreg_fits_total", 1);
        let n_classes = data.n_classes();
        let mut offsets = Vec::with_capacity(feats.len());
        let mut dim = 0usize;
        for &f in feats {
            offsets.push(dim);
            dim += data.feature_domain_size(f);
        }

        let mut weights = vec![0f64; n_classes * dim];
        let mut bias = vec![0f64; n_classes];
        // Seed from the parent model where shapes agree; features the
        // parent never saw keep their zero block.
        if let Some(w) = warm.filter(|w| w.n_classes == n_classes) {
            hamlet_obs::counter_add!("hamlet_logreg_warm_starts_total", 1);
            bias.copy_from_slice(&w.bias);
            for (i, &f) in feats.iter().enumerate() {
                let Some(j) = w.feats.iter().position(|&wf| wf == f) else {
                    continue;
                };
                let d = data.feature_domain_size(f);
                if w.offsets[j] + d > w.dim {
                    continue; // fitted over a different layout; skip block
                }
                for y in 0..n_classes {
                    let src = y * w.dim + w.offsets[j];
                    let dst = y * dim + offsets[i];
                    weights[dst..dst + d].copy_from_slice(&w.weights[src..src + d]);
                }
            }
        }
        // Lazy-regularization bookkeeping: global step at which each
        // coordinate was last regularized (shared across classes per
        // column for cache friendliness we track per (class, column)).
        let mut last_touch = vec![0u64; n_classes * dim];
        // Cumulative L1 budget (Tsuruoka): total penalty per unit weight
        // that should have been applied up to step t.
        let mut order: Vec<usize> = rows.to_vec();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut step: u64 = 0;
        let mut scores = vec![0f64; n_classes];
        for epoch in 0..self.epochs {
            let lr = self.learning_rate / (1.0 + epoch as f64);
            order.shuffle(&mut rng);
            for &r in &order {
                step += 1;
                // Gather active columns.
                // scores = b + sum_f W[., off_f + v_f]
                scores.copy_from_slice(&bias);
                for (i, &f) in feats.iter().enumerate() {
                    let col = offsets[i] + data.code(f, r) as usize;
                    // Lazily regularize the active coordinates first.
                    #[allow(clippy::needless_range_loop)]
                    // y indexes weights and scores in lockstep
                    for y in 0..n_classes {
                        let w_idx = y * dim + col;
                        let elapsed = step - last_touch[w_idx];
                        if elapsed > 0 {
                            weights[w_idx] =
                                apply_penalty(weights[w_idx], self.penalty, lr, elapsed);
                            last_touch[w_idx] = step;
                        }
                        scores[y] += weights[w_idx];
                    }
                }
                softmax_in_place(&mut scores);
                let y_true = data.label(r) as usize;
                #[allow(clippy::needless_range_loop)] // y indexes three arrays in lockstep
                for y in 0..n_classes {
                    let g = scores[y] - if y == y_true { 1.0 } else { 0.0 };
                    if g == 0.0 {
                        continue;
                    }
                    bias[y] -= lr * g;
                    for (i, &f) in feats.iter().enumerate() {
                        let col = offsets[i] + data.code(f, r) as usize;
                        weights[y * dim + col] -= lr * g;
                    }
                }
            }
        }
        // Flush pending regularization on every coordinate.
        let lr_final = self.learning_rate / (1.0 + self.epochs.saturating_sub(1) as f64);
        for (w, lt) in weights.iter_mut().zip(&last_touch) {
            let elapsed = step - lt;
            if elapsed > 0 {
                *w = apply_penalty(*w, self.penalty, lr_final, elapsed);
            }
        }

        LogisticRegressionModel {
            feats: feats.to_vec(),
            offsets,
            n_classes,
            dim,
            weights,
            bias,
        }
    }
}

/// Applies `elapsed` steps of lazy regularization to one coordinate.
fn apply_penalty(w: f64, penalty: Penalty, lr: f64, elapsed: u64) -> f64 {
    match penalty {
        Penalty::None => w,
        Penalty::L2(lambda) => {
            let decay = (1.0 - lr * lambda).max(0.0);
            w * decay.powi(elapsed.min(1_000_000) as i32)
        }
        Penalty::L1(lambda) => {
            let budget = lr * lambda * elapsed as f64;
            if w > 0.0 {
                (w - budget).max(0.0)
            } else {
                (w + budget).min(0.0)
            }
        }
    }
}

/// Numerically stable in-place softmax.
fn softmax_in_place(scores: &mut [f64]) {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut z = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        z += *s;
    }
    for s in scores.iter_mut() {
        *s /= z;
    }
}

impl LogisticRegressionModel {
    /// Assembles a model from raw parts — the import half of model
    /// serialization (`hamlet-serve` artifacts). Callers must pre-validate
    /// shapes; mismatched lengths are a programming error.
    pub fn from_parts(
        feats: Vec<usize>,
        offsets: Vec<usize>,
        n_classes: usize,
        dim: usize,
        weights: Vec<f64>,
        bias: Vec<f64>,
    ) -> Self {
        assert_eq!(offsets.len(), feats.len());
        assert_eq!(weights.len(), n_classes * dim);
        assert_eq!(bias.len(), n_classes);
        Self {
            feats,
            offsets,
            n_classes,
            dim,
            weights,
            bias,
        }
    }

    /// One-hot offset of each selected feature (parallel to
    /// [`Model::features`]).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Number of classes the model was fitted on.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total one-hot width of the weight matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Class scores (pre-softmax) for one row.
    pub fn decision_scores<S: CodeSource>(&self, data: &S, row: usize) -> Vec<f64> {
        let mut scores = self.bias.clone();
        for (i, &f) in self.feats.iter().enumerate() {
            let col = self.offsets[i] + data.code(f, row) as usize;
            for (y, s) in scores.iter_mut().enumerate() {
                *s += self.weights[y * self.dim + col];
            }
        }
        scores
    }

    /// Class probabilities for one row.
    pub fn predict_proba<S: CodeSource>(&self, data: &S, row: usize) -> Vec<f64> {
        let mut s = self.decision_scores(data, row);
        softmax_in_place(&mut s);
        s
    }

    /// Raw weight matrix, laid out `[class][one-hot column]` flattened.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Per-class intercepts.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// L2 norm of the weight block belonging to the `i`-th *selected*
    /// feature (position into [`Model::features`]).
    pub fn feature_weight_norm<S: CodeSource>(&self, data: &S, i: usize) -> f64 {
        let f = self.feats[i];
        let d = data.feature_domain_size(f);
        let off = self.offsets[i];
        let mut sq = 0.0;
        for y in 0..self.n_classes {
            for v in 0..d {
                let w = self.weights[y * self.dim + off + v];
                sq += w * w;
            }
        }
        sq.sqrt()
    }

    /// Practical tolerance below which a feature's weight-block norm
    /// counts as "vanished": truncated-gradient L1 leaves residuals of
    /// order `lr * lambda` rather than exact zeros.
    pub const DROP_TOLERANCE: f64 = 1e-2;

    /// Features whose entire weight block was driven (essentially) to
    /// zero by regularization — the embedded method's notion of a
    /// *dropped* feature. Returns positions into the dataset.
    pub fn surviving_features<S: CodeSource>(&self, data: &S, tol: f64) -> Vec<usize> {
        self.feats
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.feature_weight_norm(data, i) > tol)
            .map(|(_, &f)| f)
            .collect()
    }
}

impl Model for LogisticRegressionModel {
    fn predict_row<S: CodeSource>(&self, data: &S, row: usize) -> u32 {
        let scores = self.decision_scores(data, row);
        let mut best = 0usize;
        for y in 1..self.n_classes {
            if scores[y] > scores[best] {
                best = y;
            }
        }
        best as u32
    }

    fn features(&self) -> &[usize] {
        &self.feats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::zero_one_error;
    use crate::dataset::Feature;

    fn deterministic_data(n: usize) -> Dataset {
        // y = x0 XOR-free: y = x0; x1 independent noise (alternating).
        let x0: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
        let x1: Vec<u32> = (0..n as u32).map(|i| (i / 2) % 3).collect();
        let y = x0.clone();
        Dataset::new(
            vec![
                Feature {
                    name: "x0".into(),
                    domain_size: 2,
                    codes: x0,
                },
                Feature {
                    name: "noise".into(),
                    domain_size: 3,
                    codes: x1,
                },
            ],
            y,
            2,
        )
    }

    #[test]
    fn learns_separable_concept() {
        let d = deterministic_data(200);
        let rows: Vec<usize> = (0..200).collect();
        let m = LogisticRegression::default().fit(&d, &rows, &[0, 1]);
        assert_eq!(zero_one_error(&m, &d, &rows), 0.0);
    }

    #[test]
    fn multiclass_learns() {
        // y = x with 4 classes.
        let x: Vec<u32> = (0..400u32).map(|i| i % 4).collect();
        let d = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 4,
                codes: x.clone(),
            }],
            x,
            4,
        );
        let rows: Vec<usize> = (0..400).collect();
        let m = LogisticRegression::default().fit(&d, &rows, &[0]);
        assert_eq!(zero_one_error(&m, &d, &rows), 0.0);
    }

    #[test]
    fn l1_zeroes_noise_feature() {
        let d = deterministic_data(400);
        let rows: Vec<usize> = (0..400).collect();
        let m = LogisticRegression::l1(0.02)
            .with_epochs(20)
            .fit(&d, &rows, &[0, 1]);
        // Truncated-gradient L1 leaves O(lr * lambda) residuals rather than
        // exact zeros; the practical drop threshold reflects that.
        let surviving = m.surviving_features(&d, 0.01);
        assert!(
            m.feature_weight_norm(&d, 0) > 100.0 * m.feature_weight_norm(&d, 1),
            "informative feature should dominate the noise feature"
        );
        assert!(surviving.contains(&0), "informative feature was dropped");
        assert!(
            !surviving.contains(&1),
            "noise feature survived L1: norm = {}",
            m.feature_weight_norm(&d, 1)
        );
    }

    #[test]
    fn l2_shrinks_but_keeps_weights() {
        let d = deterministic_data(400);
        let rows: Vec<usize> = (0..400).collect();
        let plain = LogisticRegression::default().fit(&d, &rows, &[0]);
        let ridge = LogisticRegression::l2(0.05).fit(&d, &rows, &[0]);
        assert!(ridge.feature_weight_norm(&d, 0) < plain.feature_weight_norm(&d, 0));
        assert!(ridge.feature_weight_norm(&d, 0) > 0.0);
    }

    #[test]
    fn proba_sums_to_one() {
        let d = deterministic_data(50);
        let rows: Vec<usize> = (0..50).collect();
        let m = LogisticRegression::default().fit(&d, &rows, &[0, 1]);
        for r in 0..50 {
            let p = m.predict_proba(&d, r);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = deterministic_data(100);
        let rows: Vec<usize> = (0..100).collect();
        let m1 = LogisticRegression::default()
            .with_seed(5)
            .fit(&d, &rows, &[0, 1]);
        let m2 = LogisticRegression::default()
            .with_seed(5)
            .fit(&d, &rows, &[0, 1]);
        assert_eq!(m1.weights, m2.weights);
    }

    #[test]
    fn empty_feature_set_predicts_majority() {
        let d = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 2,
                codes: vec![0, 1, 0, 1, 0, 1],
            }],
            vec![1, 1, 1, 1, 0, 0],
            2,
        );
        let rows: Vec<usize> = (0..6).collect();
        let m = LogisticRegression::default().fit(&d, &rows, &[]);
        for r in 0..6 {
            assert_eq!(m.predict_row(&d, r), 1);
        }
    }

    #[test]
    fn warm_start_none_is_exactly_cold_start() {
        let d = deterministic_data(100);
        let rows: Vec<usize> = (0..100).collect();
        let lr = LogisticRegression::l1(0.01).with_seed(11);
        let cold = lr.fit(&d, &rows, &[0, 1]);
        let warm = lr.fit_source_warm(&d, &rows, &[0, 1], None);
        assert_eq!(cold, warm);
    }

    #[test]
    fn warm_start_converges_to_the_cold_start_predictions() {
        let d = deterministic_data(400);
        let rows: Vec<usize> = (0..400).collect();
        let lr = LogisticRegression::l2(0.05).with_seed(3);
        let parent = lr.fit(&d, &rows, &[0]);
        let warm = lr.fit_source_warm(&d, &rows, &[0, 1], Some(&parent));
        let cold = lr.fit(&d, &rows, &[0, 1]);
        for r in 0..400 {
            assert_eq!(warm.predict_row(&d, r), cold.predict_row(&d, r));
        }
        assert_eq!(zero_one_error(&warm, &d, &rows), 0.0);
    }

    #[test]
    fn warm_start_with_mismatched_classes_is_ignored() {
        let x: Vec<u32> = (0..200u32).map(|i| i % 4).collect();
        let four = Dataset::new(
            vec![Feature {
                name: "x".into(),
                domain_size: 4,
                codes: x.clone(),
            }],
            x,
            4,
        );
        let rows: Vec<usize> = (0..200).collect();
        let lr = LogisticRegression::default().with_seed(7);
        let parent = lr.fit(&four, &rows, &[0]);

        let two = deterministic_data(200);
        let cold = lr.fit(&two, &rows, &[0, 1]);
        let warm = lr.fit_source_warm(&two, &rows, &[0, 1], Some(&parent));
        assert_eq!(cold, warm, "a 4-class parent cannot seed a 2-class fit");
    }

    #[test]
    fn softmax_is_stable_for_large_scores() {
        let mut s = vec![1000.0, 1001.0];
        softmax_in_place(&mut s);
        assert!(s.iter().all(|x| x.is_finite()));
        assert!((s[0] + s[1] - 1.0).abs() < 1e-12);
        assert!(s[1] > s[0]);
    }
}
