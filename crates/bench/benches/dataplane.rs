//! The out-of-core data plane's two headline claims, emitted as
//! `BENCH_dataplane.json` at the repo root and gated in CI:
//!
//! * **(a) kernel speedup** — SuffStats / factorized count-fold builds
//!   through the cache-blocked morsel-parallel kernels are ≥2× faster
//!   than the pre-PR dense kernels (the naive per-row double-gather
//!   loops, replicated verbatim below as the baseline), bit-for-bit
//!   equal tables either way;
//! * **(b) budgeted ingest** — a CSV whose dense working set exceeds
//!   `HAMLET_MEM_BUDGET_MB` streams through the chunked ingester with
//!   peak heap growth under the budget, and the chunked statistics
//!   match the dense load's bit-for-bit.
//!
//! The bench binary installs the counting allocator so the peak numbers
//! are real. `HAMLET_BENCH_QUICK=1` shrinks both phases (the CI smoke
//! mode); emission is skipped under `--test` (the shim runs bench
//! bodies once, which would record nonsense timings).

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_bench::BENCH_SEED;
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_factorized::{class_conditional_counts, FactorizedView};
use hamlet_ml::{Dataset, SuffStats};
use hamlet_obs::alloc::CountingAlloc;
use hamlet_obs::atomic_write;
use hamlet_relational::{read_csv_file_chunked, ColumnSpec, DirtyPolicy, IngestOptions};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The pre-PR SuffStats build: one naive double-gather scan per
/// feature, strictly sequential — exactly the loop `SuffStats::table`
/// ran before the kernel refactor.
fn naive_tables(data: &Dataset, train: &[usize]) -> Vec<Vec<u64>> {
    let c = data.n_classes();
    let labels = data.labels();
    (0..data.n_features())
        .map(|f| {
            let feat = data.feature(f);
            let mut counts = vec![0u64; c * feat.domain_size];
            for &r in train {
                counts[labels[r] as usize * feat.domain_size + feat.codes[r] as usize] += 1;
            }
            counts
        })
        .collect()
}

/// Median-of-runs wall-clock of `f`, in seconds.
fn time_secs<T, F: FnMut() -> T>(mut f: F, reps: usize) -> (f64, T) {
    let mut out = None;
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            out = Some(black_box(f()));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], out.expect("at least one rep"))
}

/// Part (a): kernel speedup on Walmart at out-of-core scale.
fn measure_kernels(scale: f64, reps: usize) -> String {
    let g = DatasetSpec::walmart().generate(scale, BENCH_SEED);
    let wide = g
        .star
        .materialize_all()
        .expect("synthetic star materializes");
    let data = Dataset::from_table(&wide);
    let train: Vec<usize> = (0..data.n_examples()).collect();
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let threads = threads();

    let (naive_s, want) = time_secs(|| naive_tables(&data, &train), reps);
    let (kernel_s, got) = time_secs(
        || {
            let stats = SuffStats::new(&data, &train);
            stats.warm(&feats, threads);
            feats
                .iter()
                .map(|&f| stats.table(f).to_vec())
                .collect::<Vec<_>>()
        },
        reps,
    );
    assert_eq!(want, got, "kernel SuffStats tables diverged from naive");

    // The factorized count-fold over the star: naive sequential
    // pushdown (the pre-PR loop shape) vs the morsel-parallel kernels.
    let view = FactorizedView::new(&g.star).expect("view over synthetic star");
    let (fold_naive_s, want_fold) = time_secs(
        || {
            feats
                .iter()
                .map(|&f| {
                    let c = data.n_classes();
                    let d = data.feature(f).domain_size;
                    let mut counts = vec![0u64; c * d];
                    for &r in &train {
                        counts
                            [data.labels()[r] as usize * d + data.feature(f).codes[r] as usize] +=
                            1;
                    }
                    counts
                })
                .collect::<Vec<_>>()
        },
        reps,
    );
    let (fold_kernel_s, got_fold) = time_secs(
        || {
            feats
                .iter()
                .map(|&f| class_conditional_counts(&view, f, &train))
                .collect::<Vec<_>>()
        },
        reps,
    );
    assert_eq!(want_fold, got_fold, "factorized fold diverged from naive");

    let speedup = naive_s / kernel_s.max(1e-9);
    let fold_speedup = fold_naive_s / fold_kernel_s.max(1e-9);
    format!(
        "\"kernels\": {{\"dataset\": \"Walmart\", \"scale\": {scale}, \"rows\": {}, \
         \"features\": {}, \"threads\": {threads}, \
         \"suffstats_naive_s\": {naive_s:.4}, \"suffstats_kernel_s\": {kernel_s:.4}, \
         \"suffstats_speedup\": {speedup:.2}, \
         \"fold_naive_s\": {fold_naive_s:.4}, \"fold_kernel_s\": {fold_kernel_s:.4}, \
         \"fold_speedup\": {fold_speedup:.2}}}",
        data.n_examples(),
        feats.len(),
    )
}

/// Writes the part-(b) fixture CSV: `rows` lines of one nominal and two
/// numeric columns, deterministic values, no RNG.
fn write_fixture_csv(path: &Path, rows: usize) {
    let mut text = String::with_capacity(rows * 24);
    text.push_str("Dept,Price,Qty\n");
    for i in 0..rows {
        let dept = (i * 31 + 7) % 97;
        let price = (i % 1000) as f64 / 10.0;
        let qty = ((i * 13) % 500) as f64;
        text.push_str(&format!("d{dept},{price:.1},{qty:.0}\n"));
    }
    atomic_write(path, text.as_bytes()).expect("fixture CSV writes");
}

fn fixture_specs() -> Vec<(&'static str, ColumnSpec)> {
    vec![
        ("Dept", ColumnSpec::feature("Dept")),
        ("Price", ColumnSpec::numeric_feature("Price", 16)),
        ("Qty", ColumnSpec::numeric_feature("Qty", 16)),
    ]
}

/// Per-column histograms of a chunked load — the statistics used for
/// the parity diff; computed without densifying the table.
fn chunked_histograms(table: &hamlet_relational::ChunkedTable, threads: usize) -> Vec<Vec<u64>> {
    table
        .columns()
        .iter()
        .map(|c| c.histogram(threads).expect("chunk histogram"))
        .collect()
}

/// Part (b): budgeted streaming ingest with spill, peak heap growth
/// under the budget while the dense working set exceeds it.
fn measure_budgeted_ingest(rows: usize, budget_mb: usize) -> String {
    let dir = std::env::temp_dir().join(format!("hamlet-dataplane-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let csv = dir.join("wide.csv");
    write_fixture_csv(&csv, rows);
    let budget = budget_mb * 1024 * 1024;
    let specs = fixture_specs();
    let policy = DirtyPolicy::Quarantine { max_bad_rows: 0 };
    let threads = threads();

    // Budgeted phase first, with the heap quiet: peak growth over the
    // phase baseline is the number under test.
    let baseline = hamlet_obs::alloc::current_bytes().unwrap_or(0);
    hamlet_obs::alloc::reset_peak();
    let opts = IngestOptions {
        morsel_rows: None,
        mem_budget: Some(budget),
        spill_dir: Some(dir.clone()),
    };
    let t = Instant::now();
    let budgeted =
        read_csv_file_chunked("wide", &csv, &specs, ',', policy, &opts).expect("budgeted ingest");
    let budgeted_hists = chunked_histograms(&budgeted.table, 1);
    let spilled = budgeted.table.is_spilled();
    let budgeted_rows = budgeted.table.n_rows();
    let budgeted_s = t.elapsed().as_secs_f64();
    let peak_delta = hamlet_obs::alloc::peak_bytes()
        .unwrap_or(0)
        .saturating_sub(baseline);
    drop(budgeted);

    // Dense working set: the pre-PR load shape (whole file in memory,
    // fully resident table), measured the same way.
    let baseline_dense = hamlet_obs::alloc::current_bytes().unwrap_or(0);
    hamlet_obs::alloc::reset_peak();
    let t = Instant::now();
    let dense = read_csv_file_chunked("wide", &csv, &specs, ',', policy, &IngestOptions::dense())
        .expect("dense ingest");
    let dense_table = dense.table.to_table().expect("densify");
    let dense_s = t.elapsed().as_secs_f64();
    let dense_delta = hamlet_obs::alloc::peak_bytes()
        .unwrap_or(0)
        .saturating_sub(baseline_dense);
    let dense_hists: Vec<Vec<u64>> = (0..dense_table.schema().len())
        .map(|c| {
            let col = dense_table.column(c);
            let mut h = vec![0u64; col.domain().size()];
            for &code in col.codes() {
                h[code as usize] += 1;
            }
            h
        })
        .collect();

    assert_eq!(
        budgeted_rows,
        dense_table.n_rows(),
        "row accounting diverged"
    );
    assert_eq!(budgeted_hists, dense_hists, "budgeted histograms diverged");
    assert!(
        spilled,
        "budget {budget_mb} MiB did not force a spill at {rows} rows"
    );
    assert!(
        peak_delta < budget,
        "budgeted ingest peaked at {peak_delta} bytes, over the {budget}-byte budget"
    );
    assert!(
        dense_delta > budget,
        "fixture too small: dense working set {dense_delta} bytes fits the {budget}-byte budget"
    );

    let _ = std::fs::remove_dir_all(&dir);
    format!(
        "\"budgeted_ingest\": {{\"rows\": {rows}, \"columns\": 3, \
         \"budget_bytes\": {budget}, \"peak_delta_bytes\": {peak_delta}, \
         \"dense_working_set_bytes\": {dense_delta}, \"spilled\": {spilled}, \
         \"under_budget\": {}, \"dense_over_budget\": {}, \
         \"budgeted_s\": {budgeted_s:.4}, \"dense_s\": {dense_s:.4}, \
         \"threads\": {threads}}}",
        peak_delta < budget,
        dense_delta > budget,
    )
}

fn emit_summary() {
    hamlet_obs::alloc::install_meter(&ALLOC);
    let quick = std::env::var("HAMLET_BENCH_QUICK").is_ok_and(|v| v == "1");
    // Committed numbers run Walmart at out-of-core scale 10 (≈4.2M
    // entity rows); the CI smoke run shrinks to full scale 1.0, still
    // far past the kernels' parallel threshold.
    let (scale, reps, rows, budget_mb) = if quick {
        (1.0, 3, 600_000, 8)
    } else {
        (10.0, 3, 3_000_000, 32)
    };
    let kernels = measure_kernels(scale, reps);
    let ingest = measure_budgeted_ingest(rows, budget_mb);
    let doc = format!("{{\n\"bench\": \"dataplane\",\n{kernels},\n{ingest}\n}}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataplane.json");
    if let Err(e) = atomic_write(Path::new(path), doc.as_bytes()) {
        eprintln!("BENCH_dataplane.json not written: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn bench_dataplane(c: &mut Criterion) {
    hamlet_obs::alloc::install_meter(&ALLOC);
    let g = DatasetSpec::walmart().generate(0.05, BENCH_SEED);
    let wide = g
        .star
        .materialize_all()
        .expect("synthetic star materializes");
    let data = Dataset::from_table(&wide);
    let train: Vec<usize> = (0..data.n_examples()).collect();
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let threads = threads();

    let mut group = c.benchmark_group("dataplane");
    group.sample_size(10);
    group.bench_function("suffstats_naive", |b| {
        b.iter(|| black_box(naive_tables(&data, &train)))
    });
    group.bench_function("suffstats_kernels", |b| {
        b.iter(|| {
            let stats = SuffStats::new(&data, &train);
            stats.warm(&feats, threads);
            black_box(stats.table(feats[feats.len() - 1]).to_vec())
        })
    });
    group.finish();
}

fn bench_dataplane_and_emit(c: &mut Criterion) {
    bench_dataplane(c);
    if !std::env::args().any(|a| a == "--test") {
        emit_summary();
    }
}

criterion_group!(benches, bench_dataplane_and_emit);
criterion_main!(benches);
