//! Classifier training/prediction throughput over joined data: Naive
//! Bayes (the paper's main classifier), logistic regression with lazy
//! L1/L2 (Sec 5.3), and TAN (appendix E).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use hamlet_bench::movielens;
use hamlet_ml::classifier::{Classifier, Model};
use hamlet_ml::dataset::Dataset;
use hamlet_ml::logreg::LogisticRegression;
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::tan::Tan;

fn bench_classifiers(c: &mut Criterion) {
    let gen = movielens();
    let table = gen.star.materialize_all().unwrap();
    let data = Dataset::from_table(&table);
    let rows: Vec<usize> = (0..data.n_examples()).collect();
    let feats: Vec<usize> = (0..data.n_features()).collect();

    let mut g = c.benchmark_group("classifiers");
    g.throughput(Throughput::Elements(rows.len() as u64));

    g.bench_function("naive_bayes_fit", |b| {
        let nb = NaiveBayes::default();
        b.iter(|| black_box(nb.fit(&data, &rows, &feats)))
    });
    g.bench_function("naive_bayes_predict", |b| {
        let model = NaiveBayes::default().fit(&data, &rows, &feats);
        b.iter(|| black_box(model.predict(&data, &rows)))
    });
    g.bench_function("logreg_l1_fit_2_epochs", |b| {
        let lr = LogisticRegression::l1(1e-3).with_epochs(2);
        b.iter(|| black_box(lr.fit(&data, &rows, &feats)))
    });
    g.bench_function("logreg_l2_fit_2_epochs", |b| {
        let lr = LogisticRegression::l2(1e-3).with_epochs(2);
        b.iter(|| black_box(lr.fit(&data, &rows, &feats)))
    });
    g.sample_size(10);
    g.bench_function("tan_fit", |b| {
        let tan = Tan::default();
        b.iter(|| black_box(tan.fit(&data, &rows, &feats)))
    });
    g.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
