//! Factorized vs materialized training cost across tuple ratios.
//!
//! For each `n_S/n_R ∈ {1, 10, 100}`, benches both trainers (naive
//! Bayes, logistic regression) both ways. The materialized variants
//! include the join + `Dataset` copy, because that is what the
//! strategy actually costs end to end; the factorized variants include
//! building the `FactorizedView` (per-FK index) for the same reason.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hamlet_experiments::factorized::fanout_star;
use hamlet_factorized::{fit_factorized_logreg, fit_factorized_nb, FactorizedView};
use hamlet_ml::classifier::Classifier;
use hamlet_ml::dataset::Dataset;
use hamlet_ml::logreg::LogisticRegression;
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_ml::CodeSource;

const N_S: usize = 20_000;
const D_R: usize = 8;

fn bench_factorized(c: &mut Criterion) {
    let nb = NaiveBayes::default();
    let lr = LogisticRegression::default().with_epochs(2);

    let mut g = c.benchmark_group("factorized");
    g.throughput(Throughput::Elements(N_S as u64));
    g.sample_size(10);
    for ratio in [1usize, 10, 100] {
        let star = fanout_star(N_S, ratio, D_R, 42);
        let rows: Vec<usize> = (0..star.n_s()).collect();

        g.bench_with_input(
            BenchmarkId::new("nb_materialized", ratio),
            &ratio,
            |b, _| {
                b.iter(|| {
                    let wide = star.materialize_all().unwrap();
                    let data = Dataset::from_table(&wide);
                    let feats: Vec<usize> = (0..data.n_features()).collect();
                    black_box(nb.fit(&data, &rows, &feats))
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("nb_factorized", ratio), &ratio, |b, _| {
            b.iter(|| {
                let view = FactorizedView::new(&star).unwrap();
                let feats: Vec<usize> = (0..view.n_features()).collect();
                black_box(fit_factorized_nb(&view, &nb, &rows, &feats).unwrap())
            })
        });
        g.bench_with_input(
            BenchmarkId::new("logreg_materialized", ratio),
            &ratio,
            |b, _| {
                b.iter(|| {
                    let wide = star.materialize_all().unwrap();
                    let data = Dataset::from_table(&wide);
                    let feats: Vec<usize> = (0..data.n_features()).collect();
                    black_box(lr.fit(&data, &rows, &feats))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("logreg_factorized", ratio),
            &ratio,
            |b, _| {
                b.iter(|| {
                    let view = FactorizedView::new(&star).unwrap();
                    let feats: Vec<usize> = (0..view.n_features()).collect();
                    black_box(fit_factorized_logreg(&view, &lr, &rows, &feats))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_factorized);
criterion_main!(benches);
