//! Benchmarks for the extension surface: the advisor, star
//! decomposition from a wide table, FD inference, CSV parsing, the
//! decision tree, and the skew detector.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_bench::{movielens, walmart};
use hamlet_core::advisor::{advise, AdvisorConfig};
use hamlet_core::skew::diagnose_skew;
use hamlet_ml::classifier::Classifier;
use hamlet_ml::dataset::Dataset;
use hamlet_ml::tree::DecisionTree;
use hamlet_relational::decompose::{decompose_star, infer_single_fds};
use hamlet_relational::{read_csv, write_csv, ColumnSpec, FunctionalDependency};

fn bench_advisor(c: &mut Criterion) {
    let gen = walmart();
    let mut g = c.benchmark_group("advisor");
    g.bench_function("advise_with_skew_scan", |b| {
        b.iter(|| {
            black_box(advise(
                &gen.star,
                gen.star.n_s() / 2,
                &AdvisorConfig::default(),
            ))
        })
    });
    g.bench_function("advise_metadata_only", |b| {
        let config = AdvisorConfig {
            check_skew: false,
            ..Default::default()
        };
        b.iter(|| black_box(advise(&gen.star, gen.star.n_s() / 2, &config)))
    });
    g.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let gen = movielens();
    let wide = gen.star.materialize_all().unwrap();
    let fds: Vec<FunctionalDependency> = gen
        .spec
        .tables
        .iter()
        .map(|at| {
            let deps: Vec<&str> = at.features.iter().map(|f| f.name).collect();
            FunctionalDependency::new(&[at.fk], &deps)
        })
        .collect();
    let mut g = c.benchmark_group("decompose");
    g.sample_size(20);
    g.bench_function("decompose_star_movielens", |b| {
        b.iter(|| black_box(decompose_star(&wide, &fds).unwrap()))
    });
    g.bench_function("infer_single_fds_movielens", |b| {
        b.iter(|| black_box(infer_single_fds(&wide, 20)))
    });
    g.finish();
}

fn bench_csv(c: &mut Criterion) {
    let gen = walmart();
    let entity = gen.star.entity();
    let text = write_csv(entity, ',');
    let specs: Vec<(&str, ColumnSpec)> = entity
        .schema()
        .attributes()
        .iter()
        .map(|a| (a.name.as_str(), ColumnSpec::feature(&a.name)))
        .collect();
    let mut g = c.benchmark_group("csv");
    g.throughput(criterion::Throughput::Bytes(text.len() as u64));
    g.bench_function("write", |b| b.iter(|| black_box(write_csv(entity, ','))));
    g.bench_function("read", |b| {
        b.iter(|| black_box(read_csv("Walmart", &text, &specs, ',').unwrap()))
    });
    g.finish();
}

fn bench_tree_and_skew(c: &mut Criterion) {
    let gen = movielens();
    let table = gen.star.materialize_all().unwrap();
    let data = Dataset::from_table(&table);
    let rows: Vec<usize> = (0..data.n_examples()).collect();
    let feats: Vec<usize> = (0..data.n_features()).collect();
    let mut g = c.benchmark_group("tree_and_skew");
    g.sample_size(10);
    g.bench_function("decision_tree_fit", |b| {
        let t = DecisionTree::default();
        b.iter(|| black_box(t.fit(&data, &rows, &feats)))
    });
    g.bench_function("skew_detector", |b| {
        let fk = data.feature(data.feature_index("UserID").unwrap());
        b.iter(|| {
            black_box(diagnose_skew(
                &fk.codes,
                fk.domain_size,
                data.labels(),
                data.n_classes(),
                &rows,
            ))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_advisor,
    bench_decompose,
    bench_csv,
    bench_tree_and_skew
);
criterion_main!(benches);
