//! Schema-discovery throughput: mining the bench-scale Walmart corpus
//! (raw CSVs, no manifest) end to end — sketches, FK-edge proposal,
//! factorized FD verification, manifest synthesis. The headline claim is
//! the subsystem's join-avoidance discipline: mining cost scales with
//! per-table bytes, never with the joined width, so discovery stays
//! cheap exactly where materialized profiling would blow up.
//!
//! A release run also emits `BENCH_discovery.json` at the repo root
//! with the end-to-end wall-clock and a parity gate (the advisor verdict
//! over the discovered star must equal the declared-metadata verdict —
//! the bench aborts rather than record numbers for a wrong answer).
//! `HAMLET_BENCH_QUICK=1` drops repetitions; emission is skipped under
//! `--test` (the shim runs bodies once, timings would be nonsense).

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_bench::walmart;
use hamlet_core::advisor::{advise, AdvisorConfig};
use hamlet_discovery::{discover_corpus, DiscoveryConfig};
use hamlet_experiments::discovery::corpus_of;
use hamlet_obs::atomic_write;

fn config() -> DiscoveryConfig {
    DiscoveryConfig {
        target: Some("SalesLevel".to_string()),
        ..DiscoveryConfig::default()
    }
}

fn bench_discovery(c: &mut Criterion) {
    let g = walmart();
    let corpus = corpus_of(&g.star);
    let cfg = config();
    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    group.bench_function("walmart_end_to_end", |b| {
        b.iter(|| {
            let d = discover_corpus(black_box(&corpus), &cfg).unwrap();
            black_box(d)
        })
    });
    group.finish();
}

/// Median-of-runs wall-clock of `f`, in seconds.
fn time_secs<T, F: FnMut() -> T>(mut f: F, reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Advisor verdicts keyed by FK column (table names change case across
/// the CSV round-trip; FK names do not).
fn verdicts(star: &hamlet_relational::StarSchema) -> Vec<(String, bool)> {
    let report = advise(star, star.n_s() / 2, &AdvisorConfig::default()).unwrap();
    let mut rows: Vec<(String, bool)> = report
        .joins
        .iter()
        .map(|j| (j.fk.clone(), j.avoid))
        .collect();
    rows.sort();
    rows
}

/// Emit BENCH_discovery.json at the repo root (hand-rolled JSON,
/// matching the other BENCH_*.json emitters).
fn emit_summary() {
    let quick = std::env::var("HAMLET_BENCH_QUICK").is_ok_and(|v| v == "1");
    let reps = if quick { 3 } else { 7 };
    let g = walmart();
    let corpus = corpus_of(&g.star);
    let cfg = config();

    // Parity gate: never record numbers for a wrong answer.
    let d = discover_corpus(&corpus, &cfg).unwrap();
    assert_eq!(
        d.report.accepted_fks().count(),
        g.star.k(),
        "discovery bench: edge recall broke"
    );
    let discovered_star = d
        .manifest
        .load_with(Path::new(""), |p| {
            corpus
                .get(&p.to_string_lossy().into_owned())
                .cloned()
                .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "missing"))
        })
        .unwrap();
    assert_eq!(
        verdicts(&g.star),
        verdicts(&discovered_star),
        "discovery bench: advisor parity broke"
    );

    let corpus_bytes: usize = corpus.values().map(String::len).sum();
    let end_to_end_s = time_secs(|| discover_corpus(&corpus, &cfg).unwrap(), reps);
    let doc = format!(
        "{{\n\"bench\": \"discovery\",\n\"dataset\": \"Walmart (bench scale)\",\n\
         \"model_family\": \"naive_bayes\",\n\
         \"tables\": {},\n\"corpus_bytes\": {corpus_bytes},\n\
         \"entity_rows\": {},\n\
         \"results\": [\n  {{\"stage\": \"end_to_end\", \"median_s\": {end_to_end_s:.4}, \
         \"mb_per_s\": {:.1}, \"edges_recovered\": {}, \"fds_verified\": {}, \
         \"advisor_parity\": \"exact\"}}\n]\n}}\n",
        corpus.len(),
        g.star.n_s(),
        corpus_bytes as f64 / 1e6 / end_to_end_s,
        d.report.accepted_fks().count(),
        d.report.accepted_fds().count(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_discovery.json");
    if let Err(e) = atomic_write(Path::new(path), doc.as_bytes()) {
        eprintln!("BENCH_discovery.json not written: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn bench_discovery_and_emit(c: &mut Criterion) {
    bench_discovery(c);
    if !std::env::args().any(|a| a == "--test") {
        emit_summary();
    }
}

criterion_group!(benches, bench_discovery_and_emit);
criterion_main!(benches);
