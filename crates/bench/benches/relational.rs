//! Relational substrate throughput: KFK hash joins and plan
//! materialization (JoinAll vs NoJoins) — the cost JoinOpt saves before
//! feature selection even starts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hamlet_bench::{movielens, walmart, yelp};
use hamlet_core::planner::{plan, PlanKind};
use hamlet_core::rules::TrRule;
use hamlet_relational::kfk_join;

fn bench_kfk_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("kfk_join");
    for (name, gen) in [
        ("Walmart", walmart()),
        ("Yelp", yelp()),
        ("MovieLens1M", movielens()),
    ] {
        let star = &gen.star;
        g.throughput(Throughput::Elements(star.n_s() as u64));
        g.bench_with_input(BenchmarkId::new("first_table", name), star, |b, star| {
            let at = &star.attributes()[0];
            b.iter(|| black_box(kfk_join(star.entity(), &at.fk, &at.table).unwrap()))
        });
    }
    g.finish();
}

fn bench_materialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("materialize");
    let gen = movielens();
    let star = &gen.star;
    let n_train = star.n_s() / 2;
    for kind in [
        PlanKind::JoinAll,
        PlanKind::JoinOpt,
        PlanKind::NoJoins,
        PlanKind::JoinAllNoFk,
    ] {
        let p = plan(star, kind, &TrRule::default(), n_train);
        g.bench_function(kind.name(), |b| {
            b.iter(|| black_box(p.materialize(star).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kfk_join, bench_materialize);
criterion_main!(benches);
