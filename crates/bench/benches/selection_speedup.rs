//! The sufficient-statistics engine's speedup claim: greedy wrapper
//! selection with Naive Bayes, seed path (serial, one full row-scanning
//! fit per candidate) vs [`hamlet_fs::SweepEngine`] (cached count
//! tables, O(1) candidate assembly, parallel sweeps).
//!
//! Besides the criterion groups (bench scale, so iterations stay tight),
//! a release run self-times the wrappers at Fig-7 scale with `Instant`
//! and emits `BENCH_selection.json` at the repo root: wall-clock per
//! wrapper × {uncached serial, cached serial, cached parallel} plus the
//! headline speedup. `HAMLET_BENCH_QUICK=1` drops the emission to bench
//! scale with fewer reps (the CI smoke mode); emission is skipped under
//! `--test` (the shim runs bench bodies once, which would record
//! nonsense timings).

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_bench::{walmart, BENCH_SEED};
use hamlet_core::planner::{plan, PlanKind};
use hamlet_core::rules::TrRule;
use hamlet_datagen::realistic::DatasetSpec;
use hamlet_experiments::{prepare_plan, PreparedPlan};
use hamlet_fs::{reference, Method, SelectionContext, SelectionResult, SweepEngine};
use hamlet_ml::naive_bayes::NaiveBayes;
use hamlet_obs::atomic_write;

/// JoinAll on Walmart: the widest input (entity features + both FKs +
/// both attribute tables), i.e. the shape where candidate sweeps are
/// most expensive.
fn prepared_join_all(scale: f64) -> PreparedPlan {
    let g = DatasetSpec::walmart().generate(scale, BENCH_SEED);
    let n_train = g.star.n_s() / 2;
    let p = plan(&g.star, PlanKind::JoinAll, &TrRule::default(), n_train);
    prepare_plan(&g.star, p, BENCH_SEED).expect("synthetic star materializes")
}

fn ctx_of<'a>(p: &'a PreparedPlan, nb: &'a NaiveBayes) -> SelectionContext<'a, NaiveBayes> {
    SelectionContext {
        data: &p.data,
        train: &p.split.train,
        validation: &p.split.validation,
        classifier: nb,
        metric: p.metric,
    }
}

fn bench_selection_speedup(c: &mut Criterion) {
    let nb = NaiveBayes::default();
    let g = walmart();
    let n_train = g.star.n_s() / 2;
    let p = plan(&g.star, PlanKind::JoinAll, &TrRule::default(), n_train);
    let prepared = prepare_plan(&g.star, p, BENCH_SEED).expect("synthetic star materializes");
    let candidates: Vec<usize> = (0..prepared.data.n_features()).collect();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut group = c.benchmark_group("selection_speedup");
    group.sample_size(10);
    for method in [Method::Forward, Method::Backward] {
        let ctx = ctx_of(&prepared, &nb);
        group.bench_function(format!("{}_uncached_serial", method.name()), |b| {
            b.iter(|| black_box(reference::run_method(method, &ctx, &candidates)))
        });
        group.bench_function(format!("{}_cached_serial", method.name()), |b| {
            b.iter(|| {
                let engine = SweepEngine::new(&ctx).with_threads(1);
                black_box(method.run_with(&engine, &candidates))
            })
        });
        group.bench_function(format!("{}_cached_parallel", method.name()), |b| {
            b.iter(|| {
                let engine = SweepEngine::new(&ctx).with_threads(threads);
                black_box(method.run_with(&engine, &candidates))
            })
        });
    }
    group.finish();
}

/// Median-of-runs wall-clock of `f`, in seconds, returning the last
/// result so the arms can be cross-checked for equality.
fn time_secs<F: FnMut() -> SelectionResult>(mut f: F, reps: usize) -> (f64, SelectionResult) {
    let mut out = None;
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            out = Some(black_box(f()));
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    (
        samples[samples.len() / 2],
        out.expect("at least one reptition ran"),
    )
}

/// Emit BENCH_selection.json at the repo root (hand-rolled JSON,
/// matching the other BENCH_*.json emitters).
fn emit_summary() {
    let quick = std::env::var("HAMLET_BENCH_QUICK").is_ok_and(|v| v == "1");
    // Fig-7 scale (HAMLET_SCALE default 0.1) for the committed numbers;
    // bench scale for the CI smoke run.
    let (scale, reps) = if quick { (0.01, 3) } else { (0.1, 3) };
    let prepared = prepared_join_all(scale);
    let nb = NaiveBayes::default();
    let ctx = ctx_of(&prepared, &nb);
    let candidates: Vec<usize> = (0..prepared.data.n_features()).collect();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut entries = Vec::new();
    for method in [Method::Forward, Method::Backward] {
        let (uncached_s, r_uncached) =
            time_secs(|| reference::run_method(method, &ctx, &candidates), reps);
        let (cached_serial_s, r_serial) = time_secs(
            || {
                let engine = SweepEngine::new(&ctx).with_threads(1);
                method.run_with(&engine, &candidates)
            },
            reps,
        );
        let (cached_parallel_s, r_parallel) = time_secs(
            || {
                let engine = SweepEngine::new(&ctx).with_threads(threads);
                method.run_with(&engine, &candidates)
            },
            reps,
        );
        assert_eq!(
            r_uncached,
            r_serial,
            "{}: cached path diverged",
            method.name()
        );
        assert_eq!(
            r_uncached,
            r_parallel,
            "{}: parallel path diverged",
            method.name()
        );
        entries.push(format!(
            "  {{\"method\": \"{}\", \"candidates\": {}, \"model_fits\": {}, \
             \"uncached_serial_s\": {:.4}, \"cached_serial_s\": {:.4}, \
             \"cached_parallel_s\": {:.4}, \"speedup_cached_parallel\": {:.2}}}",
            method.name(),
            candidates.len(),
            r_uncached.model_fits,
            uncached_s,
            cached_serial_s,
            cached_parallel_s,
            uncached_s / cached_parallel_s,
        ));
    }
    let doc = format!(
        "{{\n\"bench\": \"selection\",\n\"dataset\": \"Walmart (scale {scale}, JoinAll)\",\n\
         \"classifier\": \"NaiveBayes\",\n\"model_family\": \"naive_bayes\",\n\
         \"n_train\": {},\n\"threads\": {threads},\n\
         \"results\": [\n{}\n]\n}}\n",
        prepared.split.train.len(),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_selection.json");
    if let Err(e) = atomic_write(Path::new(path), doc.as_bytes()) {
        eprintln!("BENCH_selection.json not written: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn bench_selection_and_emit(c: &mut Criterion) {
    bench_selection_speedup(c);
    if !std::env::args().any(|a| a == "--test") {
        emit_summary();
    }
}

criterion_group!(benches, bench_selection_and_emit);
criterion_main!(benches);
