//! Factorized vs materialized tree training across tuple ratios, plus a
//! short gradient-boosting run.
//!
//! The criterion groups time CART both ways (materialized variants
//! include the join + `Dataset` copy, factorized variants include
//! building the `FactorizedView`, mirroring `benches/factorized.rs`)
//! and a small GBT fit. Every factorized arm is asserted bit-for-bit
//! equal to its materialized twin before timing starts, so a parity
//! regression fails the bench instead of producing a fast wrong number.
//!
//! A release run also self-times the same shapes with `Instant` and
//! emits `BENCH_trees.json` at the repo root. `HAMLET_BENCH_QUICK=1`
//! shrinks the emission to smoke scale (the CI mode); emission is
//! skipped under `--test` (the shim runs bench bodies once, which would
//! record nonsense timings).

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use hamlet_experiments::factorized::fanout_star;
use hamlet_factorized::FactorizedView;
use hamlet_ml::classifier::Classifier;
use hamlet_ml::dataset::Dataset;
use hamlet_ml::CodeSource;
use hamlet_obs::atomic_write;
use hamlet_trees::{fit_factorized_gbt, fit_factorized_tree, CartTree, Gbt};

const N_S: usize = 10_000;
const D_R: usize = 6;

fn bench_trees(c: &mut Criterion) {
    let cart = CartTree::default();
    let gbt = Gbt {
        rounds: 5,
        ..Gbt::default()
    };

    let mut g = c.benchmark_group("trees");
    g.sample_size(10);
    for ratio in [1usize, 10, 100] {
        let star = fanout_star(N_S, ratio, D_R, 42);
        let rows: Vec<usize> = (0..star.n_s()).collect();

        // Parity gate: never time a factorized path that drifted.
        {
            let wide = star.materialize_all().unwrap();
            let data = Dataset::from_table(&wide);
            let feats: Vec<usize> = (0..data.n_features()).collect();
            let view = FactorizedView::new(&star).unwrap();
            assert_eq!(
                cart.fit(&data, &rows, &feats),
                fit_factorized_tree(&view, &cart, &rows, &feats),
                "CART parity broke at ratio {ratio}"
            );
            assert_eq!(
                gbt.fit(&data, &rows, &feats),
                fit_factorized_gbt(&view, &gbt, &rows, &feats),
                "GBT parity broke at ratio {ratio}"
            );
        }

        g.bench_with_input(
            BenchmarkId::new("cart_materialized", ratio),
            &ratio,
            |b, _| {
                b.iter(|| {
                    let wide = star.materialize_all().unwrap();
                    let data = Dataset::from_table(&wide);
                    let feats: Vec<usize> = (0..data.n_features()).collect();
                    black_box(cart.fit(&data, &rows, &feats))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("cart_factorized", ratio),
            &ratio,
            |b, _| {
                b.iter(|| {
                    let view = FactorizedView::new(&star).unwrap();
                    let feats: Vec<usize> = (0..view.n_features()).collect();
                    black_box(fit_factorized_tree(&view, &cart, &rows, &feats))
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("gbt_factorized", ratio), &ratio, |b, _| {
            b.iter(|| {
                let view = FactorizedView::new(&star).unwrap();
                let feats: Vec<usize> = (0..view.n_features()).collect();
                black_box(fit_factorized_gbt(&view, &gbt, &rows, &feats))
            })
        });
    }
    g.finish();
}

/// Median-of-runs wall-clock of `f`, in seconds.
fn time_secs<T, F: FnMut() -> T>(mut f: F, reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Emit BENCH_trees.json at the repo root (hand-rolled JSON, matching
/// the other BENCH_*.json emitters).
fn emit_summary() {
    let quick = std::env::var("HAMLET_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (n_s, reps) = if quick { (2_000, 3) } else { (N_S, 3) };
    let cart = CartTree::default();
    let gbt = Gbt::from_env();

    let mut entries = Vec::new();
    for ratio in [1usize, 10, 100] {
        let star = fanout_star(n_s, ratio, D_R, 42);
        let rows: Vec<usize> = (0..star.n_s()).collect();

        let wide = star.materialize_all().unwrap();
        let data = Dataset::from_table(&wide);
        let feats: Vec<usize> = (0..data.n_features()).collect();
        let view = FactorizedView::new(&star).unwrap();
        assert_eq!(
            cart.fit(&data, &rows, &feats),
            fit_factorized_tree(&view, &cart, &rows, &feats),
            "CART parity broke at ratio {ratio}"
        );

        let cart_mat_s = time_secs(
            || {
                let wide = star.materialize_all().unwrap();
                let data = Dataset::from_table(&wide);
                let feats: Vec<usize> = (0..data.n_features()).collect();
                cart.fit(&data, &rows, &feats)
            },
            reps,
        );
        let cart_fac_s = time_secs(
            || {
                let view = FactorizedView::new(&star).unwrap();
                let feats: Vec<usize> = (0..view.n_features()).collect();
                fit_factorized_tree(&view, &cart, &rows, &feats)
            },
            reps,
        );
        let gbt_fac_s = time_secs(
            || {
                let view = FactorizedView::new(&star).unwrap();
                let feats: Vec<usize> = (0..view.n_features()).collect();
                fit_factorized_gbt(&view, &gbt, &rows, &feats)
            },
            reps,
        );
        entries.push(format!(
            "  {{\"tuple_ratio\": {ratio}, \"n_train\": {}, \
             \"cart_materialized_s\": {cart_mat_s:.4}, \
             \"cart_factorized_s\": {cart_fac_s:.4}, \
             \"gbt_factorized_s\": {gbt_fac_s:.4}, \
             \"cart_speedup_factorized\": {:.2}}}",
            rows.len(),
            cart_mat_s / cart_fac_s,
        ));
    }
    let doc = format!(
        "{{\n\"bench\": \"trees\",\n\"dataset\": \"fanout star (n_s {n_s}, d_r {D_R})\",\n\
         \"model_family\": \"gbt\",\n\"gbt_rounds\": {},\n\
         \"results\": [\n{}\n]\n}}\n",
        gbt.rounds,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trees.json");
    if let Err(e) = atomic_write(Path::new(path), doc.as_bytes()) {
        eprintln!("BENCH_trees.json not written: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn bench_trees_and_emit(c: &mut Criterion) {
    bench_trees(c);
    if !std::env::args().any(|a| a == "--test") {
        emit_summary();
    }
}

criterion_group!(benches, bench_trees_and_emit);
criterion_main!(benches);
