//! Serving-path latency: single-row and batch-1k scoring through the
//! artifact `Scorer` for Naive Bayes and logistic regression on the
//! bench-scale Walmart star (both joins avoided, so the served schema is
//! the entity table's own features plus the two revised FKs). The
//! summary pass additionally times the tree and GBT families.
//!
//! Besides the criterion groups, a release run self-times the same
//! shapes with `Instant` and emits `BENCH_serve.json` at the repo root
//! so CI and the docs can quote served-prediction latency without
//! parsing criterion output. Emission is skipped under `--test` (the
//! shim runs bench bodies once, which would record nonsense timings).

use std::path::Path;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_bench::walmart;
use hamlet_core::advisor::AdvisorConfig;
use hamlet_obs::atomic_write;
use hamlet_serve::{build_artifact, ModelKind, Scorer};

/// Build a scorer for one family over the bench Walmart star.
fn scorer_for(kind: ModelKind) -> Scorer {
    let g = walmart();
    let built = build_artifact(&g.star, kind, &AdvisorConfig::default(), "Walmart")
        .unwrap_or_else(|e| panic!("bench artifact build failed: {e}"));
    Scorer::new(built.artifact)
}

/// Deterministic in-domain rows drawn from the artifact's own schema.
fn rows_for(scorer: &Scorer, n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|r| {
            scorer
                .artifact()
                .features
                .iter()
                .enumerate()
                .map(|(f, def)| ((r * 31 + f * 7) % def.domain_size) as u32)
                .collect()
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");
    g.sample_size(20);
    for kind in [ModelKind::NaiveBayes, ModelKind::LogisticRegression] {
        let scorer = scorer_for(kind);
        let one = rows_for(&scorer, 1);
        let batch = rows_for(&scorer, 1000);

        g.bench_function(format!("single_row_{}", kind.name()), |b| {
            b.iter(|| {
                let preds = scorer.predict_codes(black_box(&one)).unwrap();
                black_box(preds)
            })
        });
        g.bench_function(format!("batch_1k_{}", kind.name()), |b| {
            b.iter(|| {
                let preds = scorer.predict_codes(black_box(&batch)).unwrap();
                black_box(preds)
            })
        });
    }
    g.finish();
}

/// Median-of-runs wall-clock for `predict_codes` over `rows`, in
/// microseconds.
fn time_micros(scorer: &Scorer, rows: &[Vec<u32>], reps: usize) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let preds = scorer.predict_codes(rows).unwrap();
            black_box(preds);
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Emit BENCH_serve.json at the repo root (hand-rolled JSON, matching
/// the other BENCH_*.json emitters).
fn emit_summary() {
    let mut entries = Vec::new();
    for kind in [
        ModelKind::NaiveBayes,
        ModelKind::LogisticRegression,
        ModelKind::Tree,
        ModelKind::Gbt,
    ] {
        let scorer = scorer_for(kind);
        let one = rows_for(&scorer, 1);
        let batch = rows_for(&scorer, 1000);
        // Warm up caches before timing.
        let _ = scorer.predict_codes(&batch);
        let single_us = time_micros(&scorer, &one, 200);
        let batch_us = time_micros(&scorer, &batch, 30);
        entries.push(format!(
            "  {{\"family\": \"{}\", \"n_features\": {}, \"single_row_us\": {:.3}, \
             \"batch_1k_us\": {:.1}, \"batch_rows_per_sec\": {:.0}}}",
            kind.name(),
            scorer.artifact().features.len(),
            single_us,
            batch_us,
            1000.0 / (batch_us / 1e6),
        ));
    }
    // Artifact load: mmap fast path (artifact::load) vs the buffered
    // read it falls back to, on the same NB artifact.
    let g = walmart();
    let built = build_artifact(
        &g.star,
        ModelKind::NaiveBayes,
        &AdvisorConfig::default(),
        "Walmart",
    )
    .unwrap_or_else(|e| panic!("bench artifact build failed: {e}"));
    let path = std::env::temp_dir().join("hamlet_bench_serve_artifact.json");
    hamlet_serve::artifact::save(&built.artifact, &path)
        .unwrap_or_else(|e| panic!("bench artifact save failed: {e}"));
    let mmap_us = {
        let mut samples: Vec<f64> = (0..200)
            .map(|_| {
                let t = Instant::now();
                black_box(hamlet_serve::artifact::load(&path).unwrap());
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    let buffered_us = {
        let mut samples: Vec<f64> = (0..200)
            .map(|_| {
                let t = Instant::now();
                let text = std::fs::read_to_string(&path).unwrap();
                black_box(hamlet_serve::artifact::from_json_str(&text).unwrap());
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    let artifact_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&path).ok();
    let doc = format!(
        "{{\n\"bench\": \"serve\",\n\"dataset\": \"Walmart (bench scale)\",\n\
         \"model_family\": \"mixed\",\n\"results\": [\n{}\n],\n\
         \"artifact_load\": {{\"artifact_bytes\": {artifact_bytes}, \
         \"mmap_us\": {mmap_us:.1}, \"buffered_read_us\": {buffered_us:.1}, \
         \"note\": \"load() mmaps on unix and verifies the checksum over the mapped bytes; \
         buffered_read_us is the fallback path it takes when mapping fails\"}}\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(e) = atomic_write(Path::new(path), doc.as_bytes()) {
        eprintln!("BENCH_serve.json not written: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

fn bench_serve_and_emit(c: &mut Criterion) {
    bench_serve(c);
    if !std::env::args().any(|a| a == "--test") {
        emit_summary();
    }
}

criterion_group!(benches, bench_serve_and_emit);
criterion_main!(benches);
