//! Decision-rule cost: the rules must be "fast" (Sec 1's desiderata) —
//! metadata-only, no data scans. Benches the ROR/TR primitives and the
//! full 15-table decision sweep (the work JoinOpt adds over JoinAll).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_bench::{BENCH_SCALE, BENCH_SEED};
use hamlet_core::planner::{join_stats, plan, PlanKind};
use hamlet_core::ror::{ror_tr_approximation, tuple_ratio, worst_case_ror};
use hamlet_core::rules::{DecisionRule, RorRule, TrRule};
use hamlet_core::vc::generalization_bound;
use hamlet_datagen::realistic::DatasetSpec;

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("rule_primitives");
    g.bench_function("worst_case_ror", |b| {
        b.iter(|| worst_case_ror(black_box(471_071), black_box(11_939), black_box(5), 0.1))
    });
    g.bench_function("tuple_ratio", |b| {
        b.iter(|| tuple_ratio(black_box(471_071), black_box(11_939)))
    });
    g.bench_function("ror_tr_approximation", |b| {
        b.iter(|| ror_tr_approximation(black_box(471_071), black_box(11_939), 0.1))
    });
    g.bench_function("generalization_bound", |b| {
        b.iter(|| generalization_bound(black_box(11_939), black_box(471_071), 0.1))
    });
    g.finish();
}

fn bench_decisions(c: &mut Criterion) {
    // Pre-generate all seven datasets once; the bench then measures only
    // the decision work (stat gathering + thresholding).
    let datasets: Vec<_> = DatasetSpec::all()
        .iter()
        .map(|s| s.generate(BENCH_SCALE, BENCH_SEED))
        .collect();
    let mut g = c.benchmark_group("rule_decisions");
    g.bench_function("all_15_tables_tr", |b| {
        let rule = TrRule::default();
        b.iter(|| {
            let mut avoided = 0;
            for d in &datasets {
                let n_train = d.star.n_s() / 2;
                for i in 0..d.star.k() {
                    let stats = join_stats(&d.star, i, n_train);
                    avoided += rule.decide(&stats).is_avoid() as usize;
                }
            }
            black_box(avoided)
        })
    });
    g.bench_function("all_15_tables_ror", |b| {
        let rule = RorRule::default();
        b.iter(|| {
            let mut avoided = 0;
            for d in &datasets {
                let n_train = d.star.n_s() / 2;
                for i in 0..d.star.k() {
                    let stats = join_stats(&d.star, i, n_train);
                    avoided += rule.decide(&stats).is_avoid() as usize;
                }
            }
            black_box(avoided)
        })
    });
    g.bench_function("join_opt_planning_walmart", |b| {
        let d = &datasets[0];
        b.iter(|| {
            black_box(plan(
                &d.star,
                PlanKind::JoinOpt,
                &TrRule::default(),
                d.star.n_s() / 2,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_primitives, bench_decisions);
criterion_main!(benches);
