//! One bench per paper figure: times the regeneration of each figure's
//! rows at micro replication / bench scale. These give a stable runtime
//! baseline for the whole reproduction harness; the full-fidelity runs
//! are the `hamlet-experiments` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hamlet_bench::{micro_mc, BENCH_SCALE, BENCH_SEED};
use hamlet_experiments as exp;

fn bench_sim_figures(c: &mut Criterion) {
    let opts = micro_mc();
    let mut g = c.benchmark_group("figures_simulation");
    g.sample_size(10);
    g.bench_function("fig3", |b| b.iter(|| black_box(exp::fig3::report(&opts))));
    g.bench_function("fig4", |b| b.iter(|| black_box(exp::fig4::report(&opts))));
    g.bench_function("fig10", |b| b.iter(|| black_box(exp::fig10::report(&opts))));
    g.bench_function("fig11", |b| b.iter(|| black_box(exp::fig11::report(&opts))));
    g.bench_function("fig12", |b| b.iter(|| black_box(exp::fig12::report(&opts))));
    g.bench_function("fig13", |b| b.iter(|| black_box(exp::fig13::report(&opts))));
    g.bench_function("tan_appendix", |b| {
        b.iter(|| black_box(exp::tan_appendix::report(1000, BENCH_SEED)))
    });
    g.finish();
}

fn bench_analytic_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_analytic");
    g.bench_function("fig5", |b| b.iter(|| black_box(exp::fig5::report(100_000))));
    g.bench_function("fig6", |b| {
        b.iter(|| black_box(exp::fig6::report(BENCH_SCALE)))
    });
    g.bench_function("fig8b", |b| {
        b.iter(|| black_box(exp::fig8::report_b(BENCH_SCALE, BENCH_SEED)))
    });
    g.finish();
}

fn bench_endtoend_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_endtoend");
    g.sample_size(10);
    g.bench_function("fig7", |b| {
        b.iter(|| black_box(exp::fig7::report(BENCH_SCALE, BENCH_SEED, false)))
    });
    g.bench_function("fig8a", |b| {
        b.iter(|| black_box(exp::fig8::report_a(BENCH_SCALE, BENCH_SEED)))
    });
    g.bench_function("fig8c", |b| {
        b.iter(|| black_box(exp::fig8::report_c(BENCH_SCALE, BENCH_SEED)))
    });
    g.bench_function("fig9", |b| {
        b.iter(|| black_box(exp::fig9::report(BENCH_SCALE, BENCH_SEED, 2)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sim_figures,
    bench_analytic_figures,
    bench_endtoend_figures
);
criterion_main!(benches);
