//! Figure 7(B): the feature-selection runtime claim. JoinOpt's input has
//! fewer candidate features on datasets whose joins are avoidable, so
//! every selection method runs faster — here measured as wall-clock per
//! (dataset, plan, method).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use hamlet_bench::{movielens, walmart, yelp, BENCH_SEED};
use hamlet_core::planner::{plan, PlanKind};
use hamlet_core::rules::TrRule;
use hamlet_experiments::{join_opt_plan, prepare_plan, PreparedPlan};
use hamlet_fs::{Method, SelectionContext};
use hamlet_ml::naive_bayes::NaiveBayes;

fn prepared(kind: PlanKind, gen: &hamlet_datagen::realistic::GeneratedDataset) -> PreparedPlan {
    let n_train = gen.star.n_s() / 2;
    let p = match kind {
        PlanKind::JoinOpt => join_opt_plan(&gen.star, BENCH_SEED),
        k => plan(&gen.star, k, &TrRule::default(), n_train),
    };
    prepare_plan(&gen.star, p, BENCH_SEED).expect("synthetic star materializes")
}

fn bench_selection(c: &mut Criterion) {
    let nb = NaiveBayes::default();
    for (name, gen) in [
        ("Walmart", walmart()),
        ("MovieLens1M", movielens()),
        ("Yelp", yelp()),
    ] {
        let join_all = prepared(PlanKind::JoinAll, &gen);
        let join_opt = prepared(PlanKind::JoinOpt, &gen);
        let mut g = c.benchmark_group(format!("fig7b_{name}"));
        g.sample_size(10);
        for method in [Method::Forward, Method::FilterMi, Method::FilterIgr] {
            for (plan_name, p) in [("JoinAll", &join_all), ("JoinOpt", &join_opt)] {
                let candidates: Vec<usize> = (0..p.data.n_features()).collect();
                g.bench_with_input(BenchmarkId::new(method.name(), plan_name), p, |b, p| {
                    let ctx = SelectionContext {
                        data: &p.data,
                        train: &p.split.train,
                        validation: &p.split.validation,
                        classifier: &nb,
                        metric: p.metric,
                    };
                    b.iter(|| black_box(method.run(&ctx, &candidates)))
                });
            }
        }
        g.finish();
    }
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
