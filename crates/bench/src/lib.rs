//! # hamlet-bench
//!
//! Criterion benchmarks for the "To Join or Not to Join?" reproduction.
//! Bench targets (see `benches/`):
//!
//! * `rules` — cost of the metadata-only decision rules (the paper's
//!   "fast" desideratum): worst-case ROR, tuple ratio, full 15-table
//!   decision sweep;
//! * `relational` — KFK join / materialization throughput per plan;
//! * `classifiers` — Naive Bayes, logistic regression, and TAN training
//!   throughput on joined data;
//! * `selection_fig7` — the Figure 7(B) runtime claim: feature-selection
//!   wall-clock JoinAll vs JoinOpt per method;
//! * `figures` — one bench per paper figure, timing the regeneration of
//!   its rows at micro replication (`fig3` ... `fig13`, `tan_appendix`).
//!
//! Shared fixtures live here so every bench measures the same shapes.

use hamlet_datagen::realistic::{DatasetSpec, GeneratedDataset};
use hamlet_experiments::MonteCarloOpts;

/// The scale used by benches: small enough for tight iterations, large
/// enough that tuple ratios keep their full-scale values.
pub const BENCH_SCALE: f64 = 0.01;

/// Fixed bench seed.
pub const BENCH_SEED: u64 = 1828; // the paper's tech-report number

/// Micro Monte-Carlo options for figure-regeneration benches.
pub fn micro_mc() -> MonteCarloOpts {
    MonteCarloOpts {
        train_sets: 4,
        repeats: 1,
        base_seed: BENCH_SEED,
    }
}

/// A bench-scale Walmart (both joins safe to avoid).
pub fn walmart() -> GeneratedDataset {
    DatasetSpec::walmart().generate(BENCH_SCALE, BENCH_SEED)
}

/// A bench-scale Yelp (no join safe to avoid).
pub fn yelp() -> GeneratedDataset {
    DatasetSpec::yelp().generate(BENCH_SCALE, BENCH_SEED)
}

/// A bench-scale MovieLens1M (hidden-FK signal, both joins avoidable).
pub fn movielens() -> GeneratedDataset {
    DatasetSpec::movielens().generate(BENCH_SCALE, BENCH_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_generate() {
        assert!(walmart().star.n_s() > 1000);
        assert!(yelp().star.k() == 2);
        assert!(movielens().star.n_s() > 5000);
        assert!(micro_mc().train_sets > 0);
    }
}
