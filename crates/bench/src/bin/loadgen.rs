//! `loadgen` — open-loop HTTP load generator for the inference server.
//!
//! Drives configurable connection-level concurrency against a live
//! `hamlet serve` instance (or an in-process server it spawns itself
//! over the bench-scale Walmart Naive Bayes artifact) and reports
//! p50/p99/p999 request latency plus sustained throughput, per
//! connection mode:
//!
//! * `keepalive` — every connection is reused for all of its requests
//!   (the fleet path the keep-alive rework exists for);
//! * `oneshot`   — one request per connection, the pre-rework behavior,
//!   kept as the comparison baseline.
//!
//! With `--mode both` (the default) it runs both and reports the
//! keep-alive speedup, then merges a `"load"` section into
//! `BENCH_serve.json` next to the criterion-derived scoring latencies,
//! so CI and the docs can quote serving numbers from one file.
//!
//! Usage:
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--conns N] [--requests N] [--threads N]
//!         [--mode keepalive|oneshot|both] [--out FILE] [--no-emit]
//! ```
//!
//! Without `--addr` an in-process server is spawned on a free port with
//! `--threads` workers (so the comparison holds the server constant and
//! varies only the connection discipline).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hamlet_core::advisor::AdvisorConfig;
use hamlet_obs::json::{obj, Json};
use hamlet_serve::{build_artifact, ModelKind, Scorer, ServerConfig};

/// Everything a run needs, parsed from argv.
struct Opts {
    addr: Option<String>,
    conns: usize,
    requests: usize,
    threads: usize,
    mode: Mode,
    out: PathBuf,
    emit: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    KeepAlive,
    OneShot,
    Both,
}

fn usage() -> String {
    "usage: loadgen [--addr HOST:PORT] [--conns N] [--requests N] [--threads N] \
     [--mode keepalive|oneshot|both] [--out FILE] [--no-emit]"
        .to_string()
}

fn parse_opts() -> Result<Opts, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Result<Option<String>, String> {
        let mut found = None;
        let mut i = 0;
        while i < args.len() {
            if args[i] == name {
                let v = args
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .ok_or_else(|| format!("{name} requires a value\n{}", usage()))?;
                found = Some(v.clone());
                i += 2;
            } else {
                i += 1;
            }
        }
        Ok(found)
    };
    let num = |name: &str, default: usize| -> Result<usize, String> {
        match flag(name)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad {name} '{v}'")),
        }
    };
    let mode = match flag("--mode")?.as_deref() {
        None | Some("both") => Mode::Both,
        Some("keepalive") => Mode::KeepAlive,
        Some("oneshot") => Mode::OneShot,
        Some(other) => return Err(format!("bad --mode '{other}'\n{}", usage())),
    };
    let conns = num("--conns", 8)?;
    let requests = num("--requests", 200)?;
    if conns == 0 || requests == 0 {
        return Err("--conns and --requests must be positive".into());
    }
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    Ok(Opts {
        addr: flag("--addr")?,
        conns,
        requests,
        threads: num("--threads", 4)?.max(1),
        mode,
        out: flag("--out")?
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(default_out)),
        emit: !args.iter().any(|a| a == "--no-emit"),
    })
}

/// Deterministic in-domain single-row request bodies drawn from the
/// artifact schema (same generator as the serve bench).
fn bodies_for(scorer: &Scorer, n: usize) -> Vec<String> {
    (0..n)
        .map(|r| {
            let codes: Vec<String> = scorer
                .artifact()
                .features
                .iter()
                .enumerate()
                .map(|(f, def)| (((r * 31 + f * 7) % def.domain_size) as u32).to_string())
                .collect();
            format!("[[{}]]", codes.join(","))
        })
        .collect()
}

/// Reads exactly one framed response (head + `Content-Length` body);
/// returns the status code. Never waits for EOF, so it works on
/// keep-alive connections.
fn read_one_response(s: &mut TcpStream, scratch: &mut Vec<u8>) -> Result<u16, String> {
    scratch.clear();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(p) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            break p;
        }
        match s.read(&mut chunk) {
            Ok(0) => return Err("connection closed before the response head".into()),
            Ok(n) => scratch.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    };
    let head = String::from_utf8_lossy(&scratch[..head_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("unparseable status line: {head}"))?;
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            if name.eq_ignore_ascii_case("content-length") {
                value.trim().parse().ok()
            } else {
                None
            }
        })
        .unwrap_or(0);
    let total = head_end + 4 + content_length;
    while scratch.len() < total {
        match s.read(&mut chunk) {
            Ok(0) => return Err("connection closed mid-body".into()),
            Ok(n) => scratch.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
    Ok(status)
}

/// Per-mode aggregate over every request of every connection.
struct ModeReport {
    mode: &'static str,
    requests: usize,
    errors: usize,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    throughput_rps: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

/// Runs one mode: `conns` client threads, `requests` requests each.
fn run_mode(
    addr: &str,
    mode: &'static str,
    conns: usize,
    requests: usize,
    bodies: &Arc<Vec<String>>,
) -> Result<ModeReport, String> {
    let keep_alive = mode == "keepalive";
    let wall = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.to_string();
            let bodies = Arc::clone(bodies);
            std::thread::spawn(move || -> Result<(Vec<f64>, usize), String> {
                let mut latencies = Vec::with_capacity(requests);
                let mut errors = 0usize;
                let mut scratch = Vec::with_capacity(4096);
                let connect = || -> Result<TcpStream, String> {
                    let s = TcpStream::connect(&addr).map_err(|e| format!("connect: {e}"))?;
                    let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
                    let _ = s.set_nodelay(true);
                    Ok(s)
                };
                let mut stream = if keep_alive { Some(connect()?) } else { None };
                for r in 0..requests {
                    let body = &bodies[(c * requests + r) % bodies.len()];
                    let connection = if keep_alive { "keep-alive" } else { "close" };
                    let raw = format!(
                        "POST /predict HTTP/1.1\r\nHost: loadgen\r\nConnection: {connection}\r\n\
                         Content-Length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let t = Instant::now();
                    let status = if keep_alive {
                        let s = stream.as_mut().ok_or("no stream")?;
                        s.write_all(raw.as_bytes())
                            .map_err(|e| format!("write: {e}"))?;
                        read_one_response(s, &mut scratch)?
                    } else {
                        let mut s = connect()?;
                        s.write_all(raw.as_bytes())
                            .map_err(|e| format!("write: {e}"))?;
                        let status = read_one_response(&mut s, &mut scratch)?;
                        drop(s);
                        status
                    };
                    latencies.push(t.elapsed().as_secs_f64() * 1e6);
                    if status != 200 {
                        errors += 1;
                    }
                }
                Ok((latencies, errors))
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(conns * requests);
    let mut errors = 0usize;
    for w in workers {
        let (l, e) = w
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        latencies.extend(l);
        errors += e;
    }
    let elapsed = wall.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(ModeReport {
        mode,
        requests: latencies.len(),
        errors,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        throughput_rps: latencies.len() as f64 / elapsed,
    })
}

impl ModeReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("mode", Json::Str(self.mode.into())),
            ("requests", Json::Num(self.requests as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("p50_us", Json::Num(round1(self.p50_us))),
            ("p99_us", Json::Num(round1(self.p99_us))),
            ("p999_us", Json::Num(round1(self.p999_us))),
            ("throughput_rps", Json::Num(round1(self.throughput_rps))),
        ])
    }

    fn render_line(&self) -> String {
        format!(
            "{:>9}: {} requests ({} errors), p50 {:.0}µs, p99 {:.0}µs, p999 {:.0}µs, {:.0} req/s",
            self.mode,
            self.requests,
            self.errors,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.throughput_rps
        )
    }
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Merges the `"load"` section into BENCH_serve.json, preserving the
/// criterion-derived fields and one-key-per-line top-level layout.
fn merge_into_bench_json(path: &Path, load: Json) -> Result<(), String> {
    let mut members: Vec<(String, Json)> = match std::fs::read_to_string(path) {
        Ok(text) => match Json::parse(&text) {
            Ok(Json::Obj(members)) => members,
            _ => vec![
                ("bench".to_string(), Json::Str("serve".into())),
                ("results".to_string(), Json::Arr(vec![])),
            ],
        },
        Err(_) => vec![
            ("bench".to_string(), Json::Str("serve".into())),
            ("results".to_string(), Json::Arr(vec![])),
        ],
    };
    members.retain(|(k, _)| k != "load");
    members.push(("load".to_string(), load));

    let mut out = String::from("{\n");
    for (i, (k, v)) in members.iter().enumerate() {
        let rendered = match v {
            // Arrays of objects (the results table) keep one entry per line.
            Json::Arr(items)
                if items.iter().all(|j| matches!(j, Json::Obj(_))) && !items.is_empty() =>
            {
                let lines: Vec<String> = items.iter().map(|j| format!("  {j}")).collect();
                format!("[\n{}\n]", lines.join(",\n"))
            }
            other => other.to_string(),
        };
        out.push_str(&format!("\"{k}\": {rendered}"));
        if i + 1 < members.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
    hamlet_obs::atomic_write(path, out.as_bytes())
        .map_err(|e| format!("write {}: {e}", path.display()))
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&opts) {
        eprintln!("loadgen: {e}");
        std::process::exit(1);
    }
}

fn run(opts: &Opts) -> Result<(), String> {
    // The request bodies come from the bench Walmart NB artifact either
    // way; against an external server they exercise whatever model is
    // mounted at /predict (positional rows must match its arity).
    let g = hamlet_bench::walmart();
    let built = build_artifact(
        &g.star,
        ModelKind::NaiveBayes,
        &AdvisorConfig::default(),
        "Walmart",
    )
    .map_err(|e| format!("bench artifact build failed: {e}"))?;
    let scorer = Scorer::new(built.artifact);
    let bodies = Arc::new(bodies_for(&scorer, 64));

    // Spawn an in-process server unless one was pointed at.
    let (addr, handle) = match &opts.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let handle = hamlet_serve::start(
                scorer,
                ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    threads: opts.threads,
                    queue_capacity: 1024,
                    ..ServerConfig::default()
                },
            )
            .map_err(|e| format!("cannot start in-process server: {e}"))?;
            eprintln!(
                "spawned in-process Walmart NB server on 127.0.0.1:{} ({} workers)",
                handle.port(),
                opts.threads
            );
            (format!("127.0.0.1:{}", handle.port()), Some(handle))
        }
    };

    let modes: &[&'static str] = match opts.mode {
        Mode::KeepAlive => &["keepalive"],
        Mode::OneShot => &["oneshot"],
        Mode::Both => &["keepalive", "oneshot"],
    };
    let mut reports = Vec::new();
    for mode in modes {
        let report = run_mode(&addr, mode, opts.conns, opts.requests, &bodies)?;
        eprintln!("{}", report.render_line());
        reports.push(report);
    }

    if let Some(handle) = handle {
        handle.stop();
        handle
            .join()
            .map_err(|e| format!("in-process server failed: {e}"))?;
    }

    let speedup = match (
        reports.iter().find(|r| r.mode == "keepalive"),
        reports.iter().find(|r| r.mode == "oneshot"),
    ) {
        (Some(ka), Some(os)) if os.throughput_rps > 0.0 => {
            let s = ka.throughput_rps / os.throughput_rps;
            eprintln!("keep-alive speedup over one-request-per-connection: {s:.1}x");
            Some(s)
        }
        _ => None,
    };

    if opts.emit {
        let mut load = vec![
            ("connections", Json::Num(opts.conns as f64)),
            ("requests_per_connection", Json::Num(opts.requests as f64)),
            (
                "modes",
                Json::Arr(reports.iter().map(ModeReport::to_json).collect()),
            ),
        ];
        if let Some(s) = speedup {
            load.push(("keepalive_speedup", Json::Num(round1(s))));
        }
        merge_into_bench_json(&opts.out, obj(load))?;
        eprintln!("merged load results into {}", opts.out.display());
    }
    Ok(())
}
