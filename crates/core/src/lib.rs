//! # hamlet-core
//!
//! The core contribution of *"To Join or Not to Join? Thinking Twice
//! about Joins before Feature Selection"* (Kumar, Naughton, Patel, Zhu —
//! SIGMOD 2016): decide **a priori**, from schema-level metadata alone,
//! whether a key–foreign-key join can be *avoided safely* before feature
//! selection — i.e. whether the foreign features `X_R` can be dropped and
//! the foreign key used as their representative without blowing up test
//! error.
//!
//! * [`vc`] — VC dimensions over nominal features and the Thm 3.2
//!   generalization bound;
//! * [`ror`] — the Risk Of Representation: exact (oracle) and the
//!   computable worst-case upper bound, plus the tuple ratio and its
//!   relationship to the ROR;
//! * [`rules`] — the thresholded [`RorRule`] and [`TrRule`] with the
//!   open-FK-domain and malign-skew guards;
//! * [`planner`] — JoinAll / JoinOpt / NoJoins / JoinAllNoFK plans over a
//!   [`hamlet_relational::StarSchema`].
//!
//! ```
//! use hamlet_core::rules::{DecisionRule, JoinStats, TrRule, RorRule};
//!
//! // Walmart's Stores table: ~210k training rows, 45 stores.
//! let stats = JoinStats {
//!     n_train: 210_785,
//!     n_r: 45,
//!     q_r_star: 2,
//!     fk_closed: true,
//!     target_entropy_bits: 2.1,
//! };
//! assert!(TrRule::default().decide(&stats).is_avoid());
//! assert!(RorRule::default().decide(&stats).is_avoid());
//! ```

pub mod advisor;
pub mod family;
pub mod hypothesis;
pub mod multiclass;
pub mod planner;
pub mod ror;
pub mod rules;
pub mod skew;
pub mod tuning;
pub mod vc;

pub use advisor::{advise, AdvisorConfig, AdvisorError, AdvisorReport, JoinAdvice};
pub use family::{ModelFamily, ThresholdSource, TREE_RHO, TREE_TAU};
pub use hypothesis::{check_prop_3_3, fk_partition, partition_by, xr_partition, RowPartition};
pub use multiclass::{graph_dimension_bound, multiclass_worst_case_ror, natarajan_dimension_bound};
pub use planner::{
    explicit_plan, join_stats, plan, ExecStrategy, JoinPlan, PlanKind, TableDecision,
};
pub use ror::{
    exact_ror, is_safe_to_avoid, ror_tr_approximation, tuple_ratio, worst_case_ror, OracleRor,
    DEFAULT_DELTA,
};
pub use rules::{
    Decision, DecisionRule, JoinReason, JoinStats, RorRule, TrRule, DEFAULT_RHO, DEFAULT_TAU,
    RELAXED_RHO, RELAXED_TAU, SKEW_GUARD_ENTROPY_BITS,
};
pub use skew::{diagnose_skew, SkewReport, MALIGN_RETENTION_FLOOR};
pub use tuning::{tune_rules, tune_threshold, SafeSide, TuningPoint};
pub use vc::{fk_vc_dimension, generalization_bound, linear_vc_dimension, variance_gap_term};
