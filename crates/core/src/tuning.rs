//! Threshold tuning from simulation measurements (Sec 4.2, "Tuning the
//! Thresholds").
//!
//! The thresholds `rho` (ROR) and `tau` (TR) "need to be tuned only once
//! per ML model (more precisely, once per VC dimension expression)": run
//! the simulation sweep, plot the error increase of avoiding the join
//! against each statistic, and pick the threshold at the conservative
//! frontier for the application's error tolerance. This module is that
//! procedure as an API, so a user bringing a new model class (new VC
//! expression, new tolerance) can re-tune without re-implementing it.

/// One measurement: a rule statistic and the observed error increase
/// caused by avoiding the join at that configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningPoint {
    /// The rule statistic (ROR or TR) at the configuration.
    pub statistic: f64,
    /// `NoJoin - UseAll` test error (the asymmetric difference of Fig 4).
    pub error_increase: f64,
}

/// Direction of safety for a statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeSide {
    /// Lower statistic = safer (the ROR: avoid iff `stat <= threshold`).
    Low,
    /// Higher statistic = safer (the TR: avoid iff `stat >= threshold`).
    High,
}

/// Finds the most permissive threshold that keeps every point on its
/// safe side within `tolerance`:
///
/// * [`SafeSide::Low`] — the largest `t` such that all points with
///   `statistic <= t` have `error_increase <= tolerance`;
/// * [`SafeSide::High`] — the smallest `t` such that all points with
///   `statistic >= t` have `error_increase <= tolerance`.
///
/// Returns `None` when no threshold admits any point (even the safest
/// configuration exceeds the tolerance).
pub fn tune_threshold(points: &[TuningPoint], tolerance: f64, side: SafeSide) -> Option<f64> {
    // Simulation sweeps can carry NaN statistics (e.g. a degenerate
    // configuration whose ROR divides by zero). A NaN statistic cannot
    // anchor a threshold, so such points are dropped up front; a NaN
    // *error_increase* is kept and counts as unsafe (`NaN <= tolerance`
    // is false), which conservatively stops the frontier.
    let mut sorted: Vec<&TuningPoint> = points.iter().filter(|p| !p.statistic.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    // Sort unsafe-before-safe within a tied statistic so a tie between a
    // safe and an unsafe point stops the frontier *before* the tie: the
    // returned region must be uniformly safe, thresholds inclusive.
    let safe = |p: &TuningPoint| p.error_increase <= tolerance;
    match side {
        SafeSide::Low => {
            sorted.sort_by(|a, b| {
                a.statistic
                    .partial_cmp(&b.statistic)
                    // Total after the NaN filter; Equal is unreachable.
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| safe(a).cmp(&safe(b))) // unsafe first on ties
            });
            let mut best = None;
            for p in sorted {
                if safe(p) {
                    best = Some(p.statistic);
                } else {
                    break;
                }
            }
            best
        }
        SafeSide::High => {
            sorted.sort_by(|a, b| {
                b.statistic
                    .partial_cmp(&a.statistic)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| safe(a).cmp(&safe(b)))
            });
            let mut best = None;
            for p in sorted {
                if safe(p) {
                    best = Some(p.statistic);
                } else {
                    break;
                }
            }
            best
        }
    }
}

/// Tunes both thresholds at once from a sweep where each configuration
/// carries both statistics. Returns `(rho, tau)`.
pub fn tune_rules(
    ror_points: &[TuningPoint],
    tr_points: &[TuningPoint],
    tolerance: f64,
) -> (Option<f64>, Option<f64>) {
    (
        tune_threshold(ror_points, tolerance, SafeSide::Low),
        tune_threshold(tr_points, tolerance, SafeSide::High),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(pairs: &[(f64, f64)]) -> Vec<TuningPoint> {
        pairs
            .iter()
            .map(|&(statistic, error_increase)| TuningPoint {
                statistic,
                error_increase,
            })
            .collect()
    }

    #[test]
    fn low_side_frontier() {
        let points = pts(&[(1.0, 0.0), (2.0, 0.0005), (3.0, 0.01), (4.0, 0.05)]);
        assert_eq!(tune_threshold(&points, 0.001, SafeSide::Low), Some(2.0));
        assert_eq!(tune_threshold(&points, 0.02, SafeSide::Low), Some(3.0));
        assert_eq!(tune_threshold(&points, 0.1, SafeSide::Low), Some(4.0));
    }

    #[test]
    fn high_side_frontier() {
        let points = pts(&[(100.0, 0.0), (50.0, 0.0005), (10.0, 0.01), (5.0, 0.05)]);
        assert_eq!(tune_threshold(&points, 0.001, SafeSide::High), Some(50.0));
        assert_eq!(tune_threshold(&points, 0.02, SafeSide::High), Some(10.0));
    }

    #[test]
    fn no_safe_point_returns_none() {
        let points = pts(&[(1.0, 0.5), (2.0, 0.6)]);
        assert_eq!(tune_threshold(&points, 0.001, SafeSide::Low), None);
        assert_eq!(tune_threshold(&points, 0.001, SafeSide::High), None);
        assert_eq!(tune_threshold(&[], 0.001, SafeSide::Low), None);
    }

    #[test]
    fn frontier_stops_at_first_violation() {
        // A safe point *beyond* an unsafe one must not extend the
        // threshold (conservatism: the region must be uniformly safe).
        let points = pts(&[(1.0, 0.0), (2.0, 0.05), (3.0, 0.0)]);
        assert_eq!(tune_threshold(&points, 0.001, SafeSide::Low), Some(1.0));
    }

    #[test]
    fn tied_statistics_with_mixed_safety_stop_before_the_tie() {
        // A safe and an unsafe point share statistic 2.0: the region
        // "stat <= threshold" must exclude them both.
        let points = pts(&[(1.0, 0.0), (2.0, 0.0), (2.0, 0.9)]);
        assert_eq!(tune_threshold(&points, 0.001, SafeSide::Low), Some(1.0));
        let high = pts(&[(100.0, 0.0), (50.0, 0.0), (50.0, 0.9)]);
        assert_eq!(tune_threshold(&high, 0.001, SafeSide::High), Some(100.0));
    }

    #[test]
    fn nan_points_do_not_panic_and_do_not_anchor() {
        // Regression: a NaN statistic used to abort via `.expect("finite")`.
        let points = pts(&[(1.0, 0.0), (f64::NAN, 0.0), (2.0, 0.0005), (3.0, 0.05)]);
        assert_eq!(tune_threshold(&points, 0.001, SafeSide::Low), Some(2.0));
        // Descending from 3.0 hits an unsafe point first: no threshold.
        assert_eq!(tune_threshold(&points, 0.001, SafeSide::High), None);
        // A NaN error increase is conservatively unsafe, not a panic.
        let nan_err = pts(&[(1.0, 0.0), (2.0, f64::NAN), (3.0, 0.0)]);
        assert_eq!(tune_threshold(&nan_err, 0.001, SafeSide::Low), Some(1.0));
        // All-NaN statistics: nothing to anchor a threshold on.
        let all_nan = pts(&[(f64::NAN, 0.0), (f64::NAN, 0.0)]);
        assert_eq!(tune_threshold(&all_nan, 0.001, SafeSide::Low), None);
        assert_eq!(tune_threshold(&all_nan, 0.001, SafeSide::High), None);
    }

    #[test]
    fn tune_both_rules() {
        let ror = pts(&[(1.0, 0.0), (3.0, 0.01)]);
        let tr = pts(&[(100.0, 0.0), (5.0, 0.01)]);
        let (rho, tau) = tune_rules(&ror, &tr, 0.001);
        assert_eq!(rho, Some(1.0));
        assert_eq!(tau, Some(100.0));
    }
}
