//! Classifier families and per-family join-avoidance thresholds.
//!
//! The paper tuned `(rho, tau)` on Naive Bayes simulations and argued
//! the conclusions carry over to other *linear-capacity* models (Sec
//! 4.4, logistic regression and TAN reuse the same thresholds). The
//! follow-up "Are KFK Joins Safe to Avoid when Learning High-Capacity
//! Classifiers?" (arXiv 1704.00485) shows the story changes for trees:
//! a high-capacity learner can exploit fine FK partitions that a linear
//! model cannot, so the foreign key is a *riskier* representative of
//! the foreign features and the avoidance thresholds must be more
//! conservative. [`ModelFamily`] names the family, and the per-family
//! accessors return the thresholds the advisor should quote —
//! Monte-Carlo re-tuned for the tree families
//! (`hamlet_experiments::family` reproduces the tuning), paper defaults
//! for the linear ones.

use crate::ror::DEFAULT_DELTA;
use crate::rules::{RorRule, TrRule, DEFAULT_RHO, DEFAULT_TAU};

/// Tuple-ratio threshold for tree-based families (CART, GBT), from the
/// Monte-Carlo revalidation over the simulation grid
/// (`hamlet_experiments::family::revalidate_family`): trees keep
/// overfitting the raw FK at tuple ratios where Naive Bayes has long
/// converged, so `tau` doubles relative to the paper's 20.
pub const TREE_TAU: f64 = 40.0;

/// Worst-case-ROR threshold for tree-based families, from the same
/// revalidation: the safety margin shrinks from the paper's 2.6.
pub const TREE_RHO: f64 = 1.8;

/// Where a quoted `(rho, tau)` pair comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThresholdSource {
    /// The paper's Sec 4.2 simulation-tuned defaults (Naive Bayes).
    PaperDefault,
    /// Re-tuned by this workspace's per-family Monte-Carlo revalidation.
    MonteCarloRetuned,
}

impl ThresholdSource {
    /// Human-readable provenance, as printed by the advisor CLI.
    pub fn describe(self) -> &'static str {
        match self {
            Self::PaperDefault => "paper defaults, Sec 4.2",
            Self::MonteCarloRetuned => "Monte-Carlo re-tuned",
        }
    }
}

impl std::fmt::Display for ThresholdSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// A classifier family the advisor can tailor its thresholds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Naive Bayes — the family the paper tuned on.
    NaiveBayes,
    /// Logistic regression (L1/L2): linear capacity, paper thresholds.
    LogisticRegression,
    /// Tree-augmented Naive Bayes: still linear-ish capacity.
    Tan,
    /// CART decision tree: high capacity, conservative thresholds.
    DecisionTree,
    /// Gradient-boosted trees: high capacity, conservative thresholds.
    Gbt,
}

impl ModelFamily {
    /// Every family, in stable display order.
    pub const ALL: [ModelFamily; 5] = [
        ModelFamily::NaiveBayes,
        ModelFamily::LogisticRegression,
        ModelFamily::Tan,
        ModelFamily::DecisionTree,
        ModelFamily::Gbt,
    ];

    /// Canonical name (the `--family` / artifact string).
    pub fn name(self) -> &'static str {
        match self {
            Self::NaiveBayes => "naive_bayes",
            Self::LogisticRegression => "logistic_regression",
            Self::Tan => "tan",
            Self::DecisionTree => "tree",
            Self::Gbt => "gbt",
        }
    }

    /// Parses a canonical name (accepts the common short aliases).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "naive_bayes" | "nb" => Some(Self::NaiveBayes),
            "logistic_regression" | "logreg" => Some(Self::LogisticRegression),
            "tan" => Some(Self::Tan),
            "tree" | "cart" => Some(Self::DecisionTree),
            "gbt" | "boosted" => Some(Self::Gbt),
            _ => None,
        }
    }

    /// Whether the family is tree-based (high capacity — the regime
    /// where arXiv 1704.00485 applies).
    pub fn is_tree_based(self) -> bool {
        matches!(self, Self::DecisionTree | Self::Gbt)
    }

    /// The tuple-ratio threshold `tau` the advisor quotes for this
    /// family.
    pub fn tau(self) -> f64 {
        if self.is_tree_based() {
            TREE_TAU
        } else {
            DEFAULT_TAU
        }
    }

    /// The worst-case-ROR threshold `rho` the advisor quotes for this
    /// family.
    pub fn rho(self) -> f64 {
        if self.is_tree_based() {
            TREE_RHO
        } else {
            DEFAULT_RHO
        }
    }

    /// Provenance of this family's `(rho, tau)`.
    pub fn threshold_source(self) -> ThresholdSource {
        if self.is_tree_based() {
            ThresholdSource::MonteCarloRetuned
        } else {
            ThresholdSource::PaperDefault
        }
    }

    /// The family-tuned TR rule.
    pub fn tr_rule(self) -> TrRule {
        TrRule::with_tau(self.tau())
    }

    /// The family-tuned ROR rule.
    pub fn ror_rule(self) -> RorRule {
        RorRule {
            rho: self.rho(),
            delta: DEFAULT_DELTA,
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for fam in ModelFamily::ALL {
            assert_eq!(ModelFamily::parse(fam.name()), Some(fam));
        }
        assert_eq!(ModelFamily::parse("nb"), Some(ModelFamily::NaiveBayes));
        assert_eq!(ModelFamily::parse("cart"), Some(ModelFamily::DecisionTree));
        assert_eq!(ModelFamily::parse("bogus"), None);
    }

    #[test]
    fn tree_families_are_more_conservative() {
        for fam in ModelFamily::ALL {
            if fam.is_tree_based() {
                assert!(fam.tau() > ModelFamily::NaiveBayes.tau());
                assert!(fam.rho() < ModelFamily::NaiveBayes.rho());
                assert_eq!(fam.threshold_source(), ThresholdSource::MonteCarloRetuned);
            } else {
                assert_eq!(fam.tau(), DEFAULT_TAU);
                assert_eq!(fam.rho(), DEFAULT_RHO);
                assert_eq!(fam.threshold_source(), ThresholdSource::PaperDefault);
            }
        }
    }

    #[test]
    fn family_rules_carry_the_thresholds() {
        let tr = ModelFamily::Gbt.tr_rule();
        assert_eq!(tr.tau, TREE_TAU);
        let ror = ModelFamily::DecisionTree.ror_rule();
        assert_eq!(ror.rho, TREE_RHO);
        assert_eq!(ror.delta, DEFAULT_DELTA);
    }
}
