//! Hypothesis spaces as partitions — Proposition 3.3, executable.
//!
//! Sec 3.2 defines the restriction of the function universe `H_X` to a
//! feature subset `Z`: the functions constant on rows that agree on `Z`.
//! Such a restriction is fully described by the **partition** of the
//! observable feature vectors into `Z`-equivalence classes:
//! `|H_Z| = |D_Y| ^ (#classes)`, and `H_Z ⊆ H_Z'` iff the `Z'`-partition
//! **refines** the `Z`-partition.
//!
//! Over a fixed attribute table `R` the observable vectors are one per
//! FK value, so Prop 3.3's `H_X = H_FK ⊇ H_XR` reduces to two partition
//! facts this module computes and the tests verify on arbitrary
//! instances:
//!
//! * the FK-partition is discrete (every FK value its own class), hence
//!   it refines everything — `H_X = H_FK`;
//! * the `X_R`-partition groups FK values sharing an `X_R` row, so the
//!   FK-partition refines it — `H_XR ⊆ H_FK`, with equality iff all
//!   `X_R` rows are distinct.

use std::collections::HashMap;

use hamlet_relational::{Result, Role, Table};

/// A partition of an attribute table's rows (equivalently, of the FK
/// domain values present in `R`): `class_of[row] = class id` with class
/// ids dense from 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    class_of: Vec<usize>,
    n_classes: usize,
}

impl RowPartition {
    /// Class id per row.
    pub fn class_of(&self) -> &[usize] {
        &self.class_of
    }

    /// Number of equivalence classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// `log2 |H_Z|` for a binary target: one free bit per class.
    pub fn log2_hypothesis_count(&self) -> usize {
        self.n_classes
    }

    /// Whether `self` refines `other`: every class of `self` lies inside
    /// one class of `other`. (Refinement = the finer partition can
    /// express every function the coarser one can: `H_other ⊆ H_self`.)
    pub fn refines(&self, other: &RowPartition) -> bool {
        assert_eq!(
            self.class_of.len(),
            other.class_of.len(),
            "partitions must cover the same rows"
        );
        let mut image: HashMap<usize, usize> = HashMap::new();
        for (&mine, &theirs) in self.class_of.iter().zip(&other.class_of) {
            match image.entry(mine) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(theirs);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != theirs {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Partitions the rows of `attr` by the joint value of the named
/// attributes (empty set = one class; the primary key = discrete
/// partition). An unknown attribute name is a typed
/// [`RelationalError::UnknownAttribute`](hamlet_relational::RelationalError::UnknownAttribute)
/// — user schemas reach this path, so it must not panic.
pub fn partition_by(attr: &Table, attributes: &[&str]) -> Result<RowPartition> {
    let cols: Vec<_> = attributes
        .iter()
        .map(|a| attr.column_by_name(a))
        .collect::<Result<_>>()?;
    let mut class_ids: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut class_of = Vec::with_capacity(attr.n_rows());
    for row in 0..attr.n_rows() {
        let key: Vec<u32> = cols.iter().map(|c| c.get(row)).collect();
        let next = class_ids.len();
        let id = *class_ids.entry(key).or_insert(next);
        class_of.push(id);
    }
    Ok(RowPartition {
        class_of,
        n_classes: class_ids.len(),
    })
}

/// The FK partition (discrete: one class per row of `R`). A table
/// without a primary key is a typed
/// [`RelationalError::MissingRole`](hamlet_relational::RelationalError::MissingRole).
pub fn fk_partition(attr: &Table) -> Result<RowPartition> {
    let pk = attr.schema().primary_key().ok_or_else(|| {
        hamlet_relational::RelationalError::MissingRole {
            table: attr.name().to_string(),
            role: "primary key",
        }
    })?;
    let name = attr.schema().attributes()[pk].name.clone();
    partition_by(attr, &[&name])
}

/// The `X_R` partition (grouping FK values with identical foreign
/// features).
pub fn xr_partition(attr: &Table) -> Result<RowPartition> {
    let names: Vec<String> = attr
        .schema()
        .attributes()
        .iter()
        .filter(|a| a.role == Role::Feature)
        .map(|a| a.name.clone())
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    partition_by(attr, &refs)
}

/// Proposition 3.3, checked on an instance: returns
/// `(fk_refines_xr, spaces_equal)` — the first must always be true; the
/// second holds iff all `X_R` rows are distinct ("all tuples in R have
/// distinct values of X_R").
pub fn check_prop_3_3(attr: &Table) -> Result<(bool, bool)> {
    let fk = fk_partition(attr)?;
    let xr = xr_partition(attr)?;
    let refines = fk.refines(&xr);
    let equal = refines && fk.n_classes() == xr.n_classes();
    Ok((refines, equal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_relational::{Domain, RelationalError, TableBuilder};

    fn attr_table(xr: &[(u32, u32)]) -> Table {
        let n = xr.len();
        TableBuilder::new("R")
            .primary_key(
                "rid",
                Domain::indexed("rid", n).shared(),
                (0..n as u32).collect(),
            )
            .feature(
                "a",
                Domain::indexed("a", 4).shared(),
                xr.iter().map(|&(a, _)| a).collect(),
            )
            .feature(
                "b",
                Domain::indexed("b", 4).shared(),
                xr.iter().map(|&(_, b)| b).collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn fk_partition_is_discrete() {
        let r = attr_table(&[(0, 0), (0, 0), (1, 2)]);
        let p = fk_partition(&r).unwrap();
        assert_eq!(p.n_classes(), 3);
        assert_eq!(p.class_of(), &[0, 1, 2]);
    }

    #[test]
    fn xr_partition_groups_duplicates() {
        let r = attr_table(&[(0, 0), (0, 0), (1, 2), (0, 0)]);
        let p = xr_partition(&r).unwrap();
        assert_eq!(p.n_classes(), 2);
        assert_eq!(p.class_of(), &[0, 0, 1, 0]);
    }

    #[test]
    fn prop_3_3_holds_with_duplicates() {
        let r = attr_table(&[(0, 0), (0, 0), (1, 2)]);
        let (refines, equal) = check_prop_3_3(&r).unwrap();
        assert!(refines, "H_XR ⊆ H_FK must always hold");
        assert!(!equal, "duplicate X_R rows -> strict containment");
        // The hypothesis-space sizes witness the strictness.
        assert!(
            xr_partition(&r).unwrap().log2_hypothesis_count()
                < fk_partition(&r).unwrap().log2_hypothesis_count()
        );
    }

    #[test]
    fn prop_3_3_equality_iff_distinct_rows() {
        let r = attr_table(&[(0, 0), (1, 2), (3, 1)]);
        let (refines, equal) = check_prop_3_3(&r).unwrap();
        assert!(refines);
        assert!(equal, "distinct X_R rows -> H_XR = H_FK");
    }

    #[test]
    fn refinement_is_a_partial_order() {
        let r = attr_table(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let by_a = partition_by(&r, &["a"]).unwrap();
        let by_ab = partition_by(&r, &["a", "b"]).unwrap();
        let trivial = partition_by(&r, &[]).unwrap();
        // Finer refines coarser…
        assert!(by_ab.refines(&by_a));
        assert!(by_a.refines(&trivial));
        assert!(by_ab.refines(&trivial));
        // …but not the other way (these are strict here).
        assert!(!by_a.refines(&by_ab));
        assert!(!trivial.refines(&by_a));
        // Reflexivity.
        assert!(by_a.refines(&by_a));
    }

    #[test]
    fn single_feature_restriction_is_coarser_than_joint() {
        // The "oracle told us to use X_r alone" case of Sec 3.2:
        // H_{X_r} ⊆ H_{X_R} ⊆ H_FK, witnessed by class counts.
        let r = attr_table(&[(0, 0), (0, 1), (1, 0), (1, 1), (0, 0)]);
        let lone = partition_by(&r, &["a"]).unwrap();
        let joint = xr_partition(&r).unwrap();
        let fk = fk_partition(&r).unwrap();
        assert!(joint.refines(&lone));
        assert!(fk.refines(&joint));
        assert!(lone.n_classes() <= joint.n_classes());
        assert!(joint.n_classes() <= fk.n_classes());
    }

    #[test]
    fn unknown_attribute_is_a_typed_error() {
        let r = attr_table(&[(0, 0)]);
        let err = partition_by(&r, &["nope"]).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::UnknownAttribute { ref table, ref attribute }
                if table == "R" && attribute == "nope"
        ));
    }

    #[test]
    fn missing_primary_key_is_a_typed_error_not_a_panic() {
        // A user-supplied "attribute table" with no primary key used to
        // abort the process via `.expect`; it is now a typed error.
        let r = TableBuilder::new("NoPk")
            .feature("a", Domain::indexed("a", 2).shared(), vec![0, 1])
            .build()
            .unwrap();
        let err = fk_partition(&r).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::MissingRole { ref table, role: "primary key" } if table == "NoPk"
        ));
        assert!(check_prop_3_3(&r).is_err());
    }

    #[test]
    #[should_panic(expected = "same rows")]
    fn mismatched_partitions_panic() {
        let r1 = attr_table(&[(0, 0)]);
        let r2 = attr_table(&[(0, 0), (1, 1)]);
        let _ = fk_partition(&r1)
            .unwrap()
            .refines(&fk_partition(&r2).unwrap());
    }
}
