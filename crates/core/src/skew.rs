//! Foreign-key skew detection (appendix D).
//!
//! The default guard in [`crate::rules`] is the conservative `H(Y)`
//! check. Appendix D notes a sharper option: "it is possible to detect
//! malign skews using `H(FK|Y)`". This module implements both signals
//! over actual columns, so an analyst (or the ablation experiment) can
//! compare the conservative guard with the targeted detector:
//!
//! * **benign** skew — `P(FK)` is skewed but every class spreads over
//!   many FK values; `H(FK | Y = y)` stays close to `H(FK)` for all `y`;
//! * **malign** skew — some (typically rare) class concentrates on a
//!   handful of FK values ("the needle"); for that class
//!   `H(FK | Y = y)` collapses, so `min_y H(FK|Y=y) / H(FK)` drops.

use hamlet_ml::info::{conditional_entropy, entropy, entropy_of_counts};

/// Skew diagnostics for one foreign key against the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewReport {
    /// `H(Y)` in bits.
    pub h_y: f64,
    /// `H(FK)` in bits.
    pub h_fk: f64,
    /// `H(FK | Y)` in bits (averaged over classes).
    pub h_fk_given_y: f64,
    /// `min_y H(FK | Y = y) / H(FK)` — the malign-skew signal (low means
    /// some class sits on very few FK values).
    pub retention: f64,
}

/// Default retention floor below which skew is classified malign: the
/// needle-and-thread distributions of Fig 13(B) fall well under this,
/// while Zipf skews (benign) and ordinary informative FKs stay above it.
pub const MALIGN_RETENTION_FLOOR: f64 = 0.5;

/// Computes skew diagnostics for a foreign-key column and a label column
/// over the given rows.
pub fn diagnose_skew(
    fk_codes: &[u32],
    fk_domain: usize,
    y_codes: &[u32],
    n_classes: usize,
    rows: &[usize],
) -> SkewReport {
    let h_y = entropy(y_codes, n_classes, rows);
    let h_fk = entropy(fk_codes, fk_domain, rows);
    let h_fk_given_y = conditional_entropy(fk_codes, fk_domain, y_codes, n_classes, rows);

    // Per-class conditional entropy H(FK | Y = y).
    let mut per_class = vec![vec![0u64; fk_domain]; n_classes];
    for &r in rows {
        per_class[y_codes[r] as usize][fk_codes[r] as usize] += 1;
    }
    let min_h = per_class
        .iter()
        .filter(|counts| counts.iter().any(|&c| c > 0))
        .map(|counts| entropy_of_counts(counts))
        .fold(f64::INFINITY, f64::min);
    let retention = if h_fk > 0.0 && min_h.is_finite() {
        min_h / h_fk
    } else {
        1.0
    };
    SkewReport {
        h_y,
        h_fk,
        h_fk_given_y,
        retention,
    }
}

impl SkewReport {
    /// Whether the skew is malign under the targeted detector.
    pub fn is_malign(&self, retention_floor: f64) -> bool {
        self.retention < retention_floor
    }

    /// Whether the paper's conservative guard would fire
    /// (`H(Y) < 0.5` bits).
    pub fn conservative_guard_fires(&self) -> bool {
        self.h_y < crate::rules::SKEW_GUARD_ENTROPY_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Needle-and-thread: FK 0 carries half the mass and is the only FK
    /// with label 0; the rest share label 1.
    fn malign_instance(n: usize, n_fk: usize) -> (Vec<u32>, Vec<u32>) {
        let mut fk = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            if i % 2 == 0 {
                fk.push(0);
                y.push(0);
            } else {
                fk.push(1 + ((i / 2) % (n_fk - 1)) as u32);
                y.push(1);
            }
        }
        (fk, y)
    }

    /// Zipf-ish benign skew: FK mass is skewed but labels alternate
    /// independently of FK.
    fn benign_instance(n: usize, n_fk: usize) -> (Vec<u32>, Vec<u32>) {
        let mut fk = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            // Roughly geometric FK mass.
            let mut v = 0;
            let mut m = i % 16;
            while m > 0 && v + 1 < n_fk {
                v += 1;
                m /= 2;
            }
            fk.push(v as u32);
            y.push((i % 2) as u32);
        }
        (fk, y)
    }

    #[test]
    fn malign_skew_detected() {
        let (fk, y) = malign_instance(4000, 41);
        let rows: Vec<usize> = (0..4000).collect();
        let r = diagnose_skew(&fk, 41, &y, 2, &rows);
        assert!(
            r.is_malign(MALIGN_RETENTION_FLOOR),
            "retention {} should be malign",
            r.retention
        );
        // The conservative guard does NOT fire here: H(Y) = 1 bit.
        assert!(!r.conservative_guard_fires());
    }

    #[test]
    fn benign_skew_not_flagged() {
        let (fk, y) = benign_instance(4000, 41);
        let rows: Vec<usize> = (0..4000).collect();
        let r = diagnose_skew(&fk, 41, &y, 2, &rows);
        assert!(
            !r.is_malign(MALIGN_RETENTION_FLOOR),
            "retention {} should be benign",
            r.retention
        );
    }

    #[test]
    fn uniform_fk_has_full_retention() {
        let fk: Vec<u32> = (0..1000u32).map(|i| i % 10).collect();
        let y: Vec<u32> = (0..1000u32).map(|i| (i / 10) % 2).collect();
        let rows: Vec<usize> = (0..1000).collect();
        let r = diagnose_skew(&fk, 10, &y, 2, &rows);
        assert!(
            (r.retention - 1.0).abs() < 0.01,
            "retention {}",
            r.retention
        );
        assert!((r.h_fk - (10f64).log2()).abs() < 0.01);
    }

    #[test]
    fn constant_fk_degenerate_case() {
        let fk = vec![0u32; 100];
        let y: Vec<u32> = (0..100u32).map(|i| i % 2).collect();
        let rows: Vec<usize> = (0..100).collect();
        let r = diagnose_skew(&fk, 5, &y, 2, &rows);
        assert_eq!(r.retention, 1.0); // H(FK)=0 -> defined as benign
        assert!(!r.is_malign(MALIGN_RETENTION_FLOOR));
    }
}
