//! VC dimensions of classifiers over nominal features, and the
//! generalization bound of Theorem 3.2.
//!
//! The paper recodes nominal features to numeric space with the binary
//! vector representation (`|D_F| - 1` dimensions per feature; Sec 3.2).
//! With that recoding, "the VC dimension of Naive Bayes (or logistic
//! regression) on a set X of nominal features is `1 + sum_F (|D_F| - 1)`".
//! If `FK` alone is used, "the maximum VC dimension for any classifier is
//! `|D_FK|`".

/// VC dimension of a "linear" classifier (Naive Bayes, logistic
/// regression) over nominal features with the given domain sizes:
/// `1 + sum_F (|D_F| - 1)`.
pub fn linear_vc_dimension(domain_sizes: &[usize]) -> usize {
    1 + domain_sizes
        .iter()
        .map(|&d| d.saturating_sub(1))
        .sum::<usize>()
}

/// VC dimension of any classifier that uses the foreign key alone:
/// `|D_FK|` (one behaviour per FK value).
pub fn fk_vc_dimension(fk_domain: usize) -> usize {
    fk_domain
}

/// The generalization bound of Theorem 3.2 (Shalev-Shwartz & Ben-David,
/// p. 51): with probability at least `1 - delta`,
///
/// ```text
/// |test error - train error| <= (4 + sqrt(v ln(2en/v))) / (delta sqrt(2n))
/// ```
///
/// Natural logarithm throughout. Requires `n > v`; returns `None`
/// otherwise (the bound is vacuous there).
pub fn generalization_bound(v: usize, n: usize, delta: f64) -> Option<f64> {
    if n <= v || v == 0 || !(0.0..=1.0).contains(&delta) || delta == 0.0 {
        return None;
    }
    let v = v as f64;
    let n = n as f64;
    let num = 4.0 + (v * (2.0 * std::f64::consts::E * n / v).ln()).sqrt();
    Some(num / (delta * (2.0 * n).sqrt()))
}

/// The variance-gap term `sqrt(v ln(2en/v)) / (delta sqrt(2n))` without
/// the additive constant — the building block of the ROR (Sec 4.2).
pub fn variance_gap_term(v: usize, n: usize, delta: f64) -> f64 {
    if v == 0 {
        return 0.0;
    }
    let v = v as f64;
    let n = n as f64;
    (v * (2.0 * std::f64::consts::E * n / v).ln()).sqrt() / (delta * (2.0 * n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_vc_matches_paper_formula() {
        // Two booleans and one 4-valued feature: 1 + 1 + 1 + 3 = 6.
        assert_eq!(linear_vc_dimension(&[2, 2, 4]), 6);
        // Empty feature set: intercept only.
        assert_eq!(linear_vc_dimension(&[]), 1);
        // Degenerate single-value feature adds nothing.
        assert_eq!(linear_vc_dimension(&[1]), 1);
    }

    #[test]
    fn fk_vc_is_domain_size() {
        assert_eq!(fk_vc_dimension(100), 100);
    }

    #[test]
    fn fk_dominates_distinct_xr_values() {
        // |D_FK| >= r implies VC(FK) >= VC(any classifier on X_R in R).
        let d_fk = 1000;
        let r = 37; // distinct X_R combinations actually in R
        assert!(fk_vc_dimension(d_fk) >= r);
    }

    #[test]
    fn bound_decreases_with_n() {
        let b1 = generalization_bound(10, 100, 0.1).unwrap();
        let b2 = generalization_bound(10, 10_000, 0.1).unwrap();
        assert!(b2 < b1);
    }

    #[test]
    fn bound_increases_with_v() {
        let b1 = generalization_bound(10, 10_000, 0.1).unwrap();
        let b2 = generalization_bound(1_000, 10_000, 0.1).unwrap();
        assert!(b2 > b1);
    }

    #[test]
    fn bound_requires_n_greater_than_v() {
        assert!(generalization_bound(100, 100, 0.1).is_none());
        assert!(generalization_bound(100, 99, 0.1).is_none());
        assert!(generalization_bound(100, 101, 0.1).is_some());
    }

    #[test]
    fn bound_rejects_bad_delta() {
        assert!(generalization_bound(10, 100, 0.0).is_none());
        assert!(generalization_bound(10, 100, 1.5).is_none());
    }

    #[test]
    fn gap_term_monotone_in_v_for_v_below_2en() {
        let n = 10_000;
        let mut prev = 0.0;
        for v in [1usize, 10, 100, 1_000, 5_000] {
            let g = variance_gap_term(v, n, 0.1);
            assert!(g > prev, "gap term should grow with v (v={v})");
            prev = g;
        }
    }

    #[test]
    fn gap_term_zero_for_empty_model() {
        assert_eq!(variance_gap_term(0, 100, 0.1), 0.0);
    }

    #[test]
    fn hand_computed_bound() {
        // v=2, n=200, delta=0.1:
        // sqrt(2 * ln(2e*200/2)) = sqrt(2 * ln(543.66)) = sqrt(2*6.2984)
        let v = 2usize;
        let n = 200usize;
        let inner: f64 = 2.0 * (2.0 * std::f64::consts::E * 100.0).ln();
        let expect = (4.0 + inner.sqrt()) / (0.1 * (400.0f64).sqrt());
        let got = generalization_bound(v, n, 0.1).unwrap();
        assert!((got - expect).abs() < 1e-12);
    }
}
