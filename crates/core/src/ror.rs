//! The Risk Of Representation (ROR) and the tuple ratio (TR).
//!
//! Sec 4.2. The ROR quantifies the *extra* risk, in terms of the
//! VC-dimension generalization bound (Thm 3.2), of using `FK` as a
//! representative of the foreign features `X_R` (avoiding the join)
//! instead of letting feature selection use `X_R`:
//!
//! ```text
//! ROR = [ sqrt(v_Yes ln(2en/v_Yes)) - sqrt(v_No ln(2en/v_No)) ] / (delta sqrt(2n)) + Δbias
//! ```
//!
//! The exact ROR needs an oracle (`U_S`, `U_R`, `Δbias` are unknowable a
//! priori), so the paper derives the computable **worst-case ROR** by
//! (1) dropping `Δbias <= 0`, (2) maximizing over `q_S` (at 0), and
//! (3) maximizing over `q_No` (at `q_R* = min_F |D_F|`):
//!
//! ```text
//! ROR <= [ sqrt(|D_FK| ln(2en/|D_FK|)) - sqrt(q_R* ln(2en/q_R*)) ] / (delta sqrt(2n))
//! ```
//!
//! The **tuple ratio** `TR = n_S / n_R` is a conservative simplification:
//! when `|D_FK| >> q_R*`, `ROR ≈ sqrt(ln(2e n_S/n_R)) / (delta sqrt(2)) * TR^{-1/2}`.

use crate::vc::variance_gap_term;

/// Failure probability used throughout the paper (footnote 8).
pub const DEFAULT_DELTA: f64 = 0.1;

/// Inputs for an exact (oracle) ROR computation — available only in
/// simulations where the true distribution is known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleRor {
    /// VC dimension of the hypothetical best classifier that avoids the
    /// join (uses `FK` as representative): `q_S + |D_FK|`.
    pub v_yes: usize,
    /// VC dimension of the best classifier that performs the join:
    /// `q_S < v_No <= q_S + q_R`.
    pub v_no: usize,
    /// Difference in bias (avoid minus join); `<= 0` by Prop 3.3.
    pub delta_bias: f64,
}

/// Exact ROR given oracle knowledge (Sec 4.2 display equation).
pub fn exact_ror(oracle: OracleRor, n: usize, delta: f64) -> f64 {
    variance_gap_term(oracle.v_yes, n, delta) - variance_gap_term(oracle.v_no, n, delta)
        + oracle.delta_bias
}

/// The computable **worst-case ROR** (Sec 4.2, final inequality).
///
/// * `n` — number of training examples;
/// * `fk_domain` — `|D_FK|` (equals `n_R` under the closed-domain
///   assumption);
/// * `q_r_star` — `min_{F in X_R} |D_F|`;
/// * `delta` — failure probability.
pub fn worst_case_ror(n: usize, fk_domain: usize, q_r_star: usize, delta: f64) -> f64 {
    variance_gap_term(fk_domain, n, delta) - variance_gap_term(q_r_star.min(fk_domain), n, delta)
}

/// The tuple ratio `TR = n_S / n_R` (Sec 4.2).
pub fn tuple_ratio(n: usize, n_r: usize) -> f64 {
    assert!(n_r > 0, "attribute table must be non-empty");
    n as f64 / n_r as f64
}

/// The paper's closed-form approximation of the worst-case ROR when
/// `|D_FK| >> q_R*`:
/// `ROR ≈ (1/sqrt(TR)) * sqrt(ln(2e n/n_r)) / (delta sqrt(2))`.
pub fn ror_tr_approximation(n: usize, n_r: usize, delta: f64) -> f64 {
    let tr = tuple_ratio(n, n_r);
    let log_term = (2.0 * std::f64::consts::E * n as f64 / n_r as f64).ln();
    (1.0 / tr.sqrt()) * log_term.sqrt() / (delta * 2.0f64.sqrt())
}

/// Definition 4.3: the join is `(delta, epsilon)`-safe to avoid iff the
/// ROR with the given `delta` is no larger than `epsilon`.
pub fn is_safe_to_avoid(ror: f64, epsilon: f64) -> bool {
    ror <= epsilon
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_ror_zero_when_domains_equal() {
        // q_R* = |D_FK| -> the two gap terms cancel (Fig 5's "low ROR" case).
        let r = worst_case_ror(10_000, 500, 500, 0.1);
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn worst_case_ror_grows_with_fk_domain() {
        let n = 100_000;
        let r1 = worst_case_ror(n, 100, 2, 0.1);
        let r2 = worst_case_ror(n, 10_000, 2, 0.1);
        assert!(r2 > r1);
    }

    #[test]
    fn worst_case_ror_shrinks_with_n() {
        let r1 = worst_case_ror(10_000, 1_000, 2, 0.1);
        let r2 = worst_case_ror(1_000_000, 1_000, 2, 0.1);
        assert!(r2 < r1);
    }

    #[test]
    fn worst_case_ror_nonnegative() {
        for &(n, d, q) in &[
            (1_000usize, 100usize, 2usize),
            (5_000, 50, 50),
            (100, 99, 3),
        ] {
            assert!(worst_case_ror(n, d, q, 0.1) >= -1e-12, "({n},{d},{q})");
        }
    }

    #[test]
    fn exact_ror_below_worst_case() {
        // Oracle with q_S > 0 and q_No > q_R* must not exceed the worst case.
        let n = 50_000;
        let fk = 2_000;
        let q_s = 10;
        let q_no = 40; // actual joint distinct values used
        let oracle = OracleRor {
            v_yes: q_s + fk,
            v_no: q_s + q_no,
            delta_bias: 0.0,
        };
        let exact = exact_ror(oracle, n, 0.1);
        let worst = worst_case_ror(n, fk, 4, 0.1); // q_R* = 4 <= q_no
        assert!(exact <= worst + 1e-9, "exact {exact} > worst {worst}");
    }

    #[test]
    fn negative_delta_bias_reduces_exact_ror() {
        let oracle0 = OracleRor {
            v_yes: 1_000,
            v_no: 10,
            delta_bias: 0.0,
        };
        let oracle_neg = OracleRor {
            delta_bias: -0.05,
            ..oracle0
        };
        let n = 10_000;
        assert!(exact_ror(oracle_neg, n, 0.1) < exact_ror(oracle0, n, 0.1));
    }

    #[test]
    fn tuple_ratio_basic() {
        assert_eq!(tuple_ratio(1_000, 50), 20.0);
        assert_eq!(tuple_ratio(10, 100), 0.1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn tuple_ratio_zero_nr_panics() {
        tuple_ratio(10, 0);
    }

    #[test]
    fn tr_approximation_tracks_worst_case() {
        // When |D_FK| >> q_R*, the approximation should be close to the
        // worst-case ROR (within the dropped subtractive term).
        let n = 100_000;
        let n_r = 2_000;
        let exact = worst_case_ror(n, n_r, 2, 0.1);
        let approx = ror_tr_approximation(n, n_r, 0.1);
        assert!(approx >= exact, "approximation must be conservative");
        assert!(
            (approx - exact) / approx < 0.25,
            "approximation too loose: {approx} vs {exact}"
        );
    }

    #[test]
    fn ror_approximately_linear_in_inverse_sqrt_tr() {
        // Fig 4(C): correlation between ROR and 1/sqrt(TR) should be very
        // high across a parameter sweep.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &n in &[500usize, 1_000, 2_000, 4_000, 8_000] {
            for &n_r in &[10usize, 20, 40, 100, 200] {
                if n <= n_r {
                    continue;
                }
                xs.push(1.0 / tuple_ratio(n, n_r).sqrt());
                ys.push(worst_case_ror(n, n_r, 2, 0.1));
            }
        }
        let r = pearson(&xs, &ys);
        assert!(r > 0.95, "Pearson correlation too low: {r}");
    }

    #[test]
    fn safety_definition() {
        assert!(is_safe_to_avoid(2.4, 2.5));
        assert!(is_safe_to_avoid(2.5, 2.5));
        assert!(!is_safe_to_avoid(2.6, 2.5));
    }

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }
}
