//! Join-avoidance decision rules.
//!
//! Sec 4.2: the **ROR rule** (avoid the join with `R` if the worst-case
//! ROR computed from `FK` and `q_R*` is at most `rho`) and the simpler
//! **TR rule** (avoid if `n_S / n_R >= tau`), plus the appendix-D
//! conservatism guard against malign foreign-key skew (`H(Y) < 0.5` bits
//! means do not avoid).
//!
//! Thresholds are tuned once per VC-dimension expression from the
//! simulation study (Sec 4.2 "Tuning the Thresholds"); both rules are
//! conservative by construction — they may miss opportunities but should
//! not avoid a join whose avoidance blows up the error.

use crate::ror::{tuple_ratio, worst_case_ror, DEFAULT_DELTA};

/// Default ROR threshold `rho` tuned from our Figure 4 reproduction with
/// error tolerance 0.001 (the paper reports 2.5 from its simulation; our
/// Monte-Carlo replication count differs, see DESIGN.md §4).
pub const DEFAULT_RHO: f64 = 2.6;

/// Default TR threshold `tau` tuned from the simulation study (paper: 20).
pub const DEFAULT_TAU: f64 = 20.0;

/// Thresholds for the higher error tolerance of 0.01 discussed in
/// Sec 5.2.2 (paper: `tau = 10`, `rho = 4.2`).
pub const RELAXED_RHO: f64 = 4.2;
/// See [`RELAXED_RHO`].
pub const RELAXED_TAU: f64 = 10.0;

/// Target-entropy floor (bits) below which the skew guard refuses to
/// avoid any join — appendix D: "we just check H(Y), and if it is too low
/// (say, below 0.5, which corresponds roughly to a 90%:10% split), we do
/// not avoid the join".
pub const SKEW_GUARD_ENTROPY_BITS: f64 = 0.5;

/// Schema-level facts about one candidate join, gathered without
/// touching the foreign features' *data* (the TR rule does not even need
/// `q_r_star`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinStats {
    /// Number of training examples `n` (the paper's Thm 3.2 `n`; under
    /// the 50/25/25 protocol this is half of `n_S`).
    pub n_train: usize,
    /// `n_R = |D_FK|` — attribute-table row count.
    pub n_r: usize,
    /// `q_R* = min_{F in X_R} |D_F|`, needed only by the ROR rule.
    pub q_r_star: usize,
    /// Whether the FK's domain is closed w.r.t. the prediction task; an
    /// open-domain FK cannot act as a representative at all.
    pub fk_closed: bool,
    /// Empirical target entropy `H(Y)` in bits (skew guard input).
    pub target_entropy_bits: f64,
}

/// Why a rule decided a join must be performed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinReason {
    /// The FK domain is open; `FK` cannot represent `X_R`.
    OpenFkDomain,
    /// `H(Y)` is below the skew-guard floor (malign-skew conservatism).
    SkewGuard {
        /// Observed `H(Y)` in bits.
        entropy_bits: f64,
    },
    /// The rule's statistic crossed its threshold on the unsafe side.
    Threshold {
        /// The computed statistic (ROR or TR).
        value: f64,
        /// The threshold it was compared against.
        threshold: f64,
    },
}

/// A rule's verdict for one candidate join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// The join is predicted safe to avoid; the statistic is attached for
    /// reporting (ROR value or TR value).
    Avoid {
        /// The computed statistic.
        value: f64,
    },
    /// The join should be performed.
    Join(JoinReason),
}

impl Decision {
    /// Whether the verdict is "safe to avoid".
    pub fn is_avoid(&self) -> bool {
        matches!(self, Decision::Avoid { .. })
    }
}

/// A decision rule: predicts, a priori and per attribute table, whether
/// the join is safe to avoid.
pub trait DecisionRule {
    /// Evaluates the rule's statistic (lower-is-safer for ROR,
    /// higher-is-safer for TR; see [`DecisionRule::decide`] for the
    /// thresholded verdict).
    fn statistic(&self, stats: &JoinStats) -> f64;

    /// The thresholded verdict, including the open-domain and skew
    /// guards shared by both rules.
    fn decide(&self, stats: &JoinStats) -> Decision;

    /// Rule name for reports.
    fn name(&self) -> &'static str;
}

/// Shared guards: open FK domains and malign-skew conservatism.
fn guard(stats: &JoinStats) -> Option<JoinReason> {
    if !stats.fk_closed {
        return Some(JoinReason::OpenFkDomain);
    }
    if stats.target_entropy_bits < SKEW_GUARD_ENTROPY_BITS {
        return Some(JoinReason::SkewGuard {
            entropy_bits: stats.target_entropy_bits,
        });
    }
    None
}

/// The worst-case-ROR rule: avoid iff `ROR <= rho`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RorRule {
    /// Threshold `rho`.
    pub rho: f64,
    /// Failure probability `delta` (folded into the ROR; footnote 8).
    pub delta: f64,
}

impl Default for RorRule {
    fn default() -> Self {
        Self {
            rho: DEFAULT_RHO,
            delta: DEFAULT_DELTA,
        }
    }
}

impl RorRule {
    /// A rule with threshold `rho` and the default `delta = 0.1`.
    pub fn with_rho(rho: f64) -> Self {
        Self {
            rho,
            ..Self::default()
        }
    }
}

impl DecisionRule for RorRule {
    fn statistic(&self, stats: &JoinStats) -> f64 {
        worst_case_ror(stats.n_train, stats.n_r, stats.q_r_star, self.delta)
    }

    fn decide(&self, stats: &JoinStats) -> Decision {
        if let Some(reason) = guard(stats) {
            return Decision::Join(reason);
        }
        let ror = self.statistic(stats);
        if ror <= self.rho {
            Decision::Avoid { value: ror }
        } else {
            Decision::Join(JoinReason::Threshold {
                value: ror,
                threshold: self.rho,
            })
        }
    }

    fn name(&self) -> &'static str {
        "ROR rule"
    }
}

/// The tuple-ratio rule: avoid iff `TR = n_train / n_R >= tau`. Needs
/// nothing beyond the table sizes — "this enables us to ignore the join
/// without even looking at R" (Sec 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrRule {
    /// Threshold `tau`.
    pub tau: f64,
}

impl Default for TrRule {
    fn default() -> Self {
        Self { tau: DEFAULT_TAU }
    }
}

impl TrRule {
    /// A rule with threshold `tau`.
    pub fn with_tau(tau: f64) -> Self {
        Self { tau }
    }
}

impl DecisionRule for TrRule {
    fn statistic(&self, stats: &JoinStats) -> f64 {
        tuple_ratio(stats.n_train, stats.n_r)
    }

    fn decide(&self, stats: &JoinStats) -> Decision {
        if let Some(reason) = guard(stats) {
            return Decision::Join(reason);
        }
        let tr = self.statistic(stats);
        if tr >= self.tau {
            Decision::Avoid { value: tr }
        } else {
            Decision::Join(JoinReason::Threshold {
                value: tr,
                threshold: self.tau,
            })
        }
    }

    fn name(&self) -> &'static str {
        "TR rule"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(n_train: usize, n_r: usize, q_r_star: usize) -> JoinStats {
        JoinStats {
            n_train,
            n_r,
            q_r_star,
            fk_closed: true,
            target_entropy_bits: 1.0,
        }
    }

    #[test]
    fn tr_rule_thresholds() {
        let rule = TrRule::default();
        // TR = 100_000 / 1_000 = 100 >= 20 -> avoid.
        assert!(rule.decide(&stats(100_000, 1_000, 2)).is_avoid());
        // TR = 5_000 / 1_000 = 5 < 20 -> join.
        let d = rule.decide(&stats(5_000, 1_000, 2));
        assert!(matches!(
            d,
            Decision::Join(JoinReason::Threshold { value, threshold })
                if (value - 5.0).abs() < 1e-12 && threshold == DEFAULT_TAU
        ));
    }

    #[test]
    fn ror_rule_thresholds() {
        let rule = RorRule::default();
        // Large n, small FK domain: tiny ROR -> avoid.
        assert!(rule.decide(&stats(500_000, 100, 2)).is_avoid());
        // Small n, huge FK domain: large ROR -> join.
        let d = rule.decide(&stats(5_000, 4_000, 2));
        assert!(matches!(d, Decision::Join(JoinReason::Threshold { .. })));
    }

    #[test]
    fn open_fk_forces_join_for_both_rules() {
        let mut s = stats(1_000_000, 10, 2);
        s.fk_closed = false;
        assert!(matches!(
            TrRule::default().decide(&s),
            Decision::Join(JoinReason::OpenFkDomain)
        ));
        assert!(matches!(
            RorRule::default().decide(&s),
            Decision::Join(JoinReason::OpenFkDomain)
        ));
    }

    #[test]
    fn skew_guard_forces_join() {
        let mut s = stats(1_000_000, 10, 2);
        s.target_entropy_bits = 0.3;
        assert!(matches!(
            TrRule::default().decide(&s),
            Decision::Join(JoinReason::SkewGuard { entropy_bits }) if entropy_bits == 0.3
        ));
        assert!(matches!(
            RorRule::default().decide(&s),
            Decision::Join(JoinReason::SkewGuard { .. })
        ));
    }

    #[test]
    fn relaxed_thresholds_avoid_more() {
        // A borderline case: unsafe at default thresholds, safe at the
        // relaxed (tolerance 0.01) thresholds.
        let s = stats(33_000, 3_200, 7); // Flights-like: TR ~ 10.3
        assert!(!TrRule::default().decide(&s).is_avoid());
        assert!(TrRule::with_tau(RELAXED_TAU).decide(&s).is_avoid());
        assert!(!RorRule::default().decide(&s).is_avoid());
        assert!(RorRule::with_rho(RELAXED_RHO).decide(&s).is_avoid());
    }

    #[test]
    fn rules_agree_on_clear_cases() {
        // Very safe and very unsafe cases should agree across rules.
        for (s, expect) in [
            (stats(500_000, 50, 2), true),
            (stats(10_000, 9_000, 2), false),
        ] {
            assert_eq!(TrRule::default().decide(&s).is_avoid(), expect);
            assert_eq!(RorRule::default().decide(&s).is_avoid(), expect);
        }
    }

    #[test]
    fn statistic_exposed_for_reporting() {
        let s = stats(40_000, 2_000, 5);
        assert!((TrRule::default().statistic(&s) - 20.0).abs() < 1e-12);
        assert!(RorRule::default().statistic(&s) > 0.0);
        assert_eq!(TrRule::default().name(), "TR rule");
        assert_eq!(RorRule::default().name(), "ROR rule");
    }
}
