//! Join-avoidance planning over a star schema.
//!
//! Turns a [`DecisionRule`] into the end-to-end comparisons of Sec 5:
//!
//! * **JoinAll** — "joins all base tables" (the state of the practice);
//! * **JoinOpt** — "joins only those base tables predicted by the rule to
//!   be not safe to avoid";
//! * **NoJoins** — the naive opposite: avoid every join and let the FKs
//!   represent all foreign features (Fig 8A);
//! * **JoinAllNoFK** — join everything but drop all foreign keys a
//!   priori, the "uninterpretable FK" habit Sec 5.2.3 shows to be
//!   catastrophic.

use hamlet_ml::info::entropy_of_counts;
use hamlet_relational::{Result, StarSchema, Table};

use crate::rules::{Decision, DecisionRule, JoinStats};

/// The four plans compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Join every attribute table.
    JoinAll,
    /// Join only tables the decision rule deems unsafe to avoid.
    JoinOpt,
    /// Avoid every join.
    NoJoins,
    /// Join every attribute table, then drop all foreign keys.
    JoinAllNoFk,
}

impl PlanKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::JoinAll => "JoinAll",
            PlanKind::JoinOpt => "JoinOpt",
            PlanKind::NoJoins => "NoJoins",
            PlanKind::JoinAllNoFk => "JoinAllNoFK",
        }
    }
}

/// How one candidate join is *executed*, orthogonal to whether its
/// features enter the model.
///
/// The paper's axis is logical (does `X_R` reach feature selection at
/// all?); this axis is physical. A join that is not safe to avoid can
/// still skip materialization: because the KFK join is a pure fan-out
/// (`FK` functionally determines every `X_R`), a trainer can resolve
/// `X_R[row] = R.X_R[R.index(S.FK[row])]` on the fly, touching
/// `O(n_S + n_R)` memory instead of the `O(n_S × d_R)` copy the
/// materialized wide table costs (see `hamlet_factorized`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStrategy {
    /// Physically build the wide table (`kfk_join`), then train on it.
    Materialize,
    /// Keep the star schema; train through FK indirection with zero
    /// join materialization.
    Factorize,
    /// Do not execute the join at all — the FK column represents the
    /// foreign features (the paper's "avoid" verdict).
    AvoidJoin,
}

impl ExecStrategy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ExecStrategy::Materialize => "materialize",
            ExecStrategy::Factorize => "factorize",
            ExecStrategy::AvoidJoin => "avoid",
        }
    }

    /// Inverse of [`ExecStrategy::name`] — used when advisor decisions
    /// round-trip through serialized model artifacts.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "materialize" => Some(ExecStrategy::Materialize),
            "factorize" => Some(ExecStrategy::Factorize),
            "avoid" => Some(ExecStrategy::AvoidJoin),
            _ => None,
        }
    }
}

/// The rule's verdict for one attribute table, with its inputs, for
/// reporting (Fig 8B prints exactly these).
#[derive(Debug, Clone, PartialEq)]
pub struct TableDecision {
    /// Attribute-table name.
    pub table: String,
    /// Foreign key in the entity table.
    pub fk: String,
    /// The schema-level statistics the rule consumed.
    pub stats: JoinStats,
    /// The verdict.
    pub decision: Decision,
}

/// A resolved plan: which attribute tables to join and whether to drop
/// the foreign keys afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    /// Which plan produced this.
    pub kind: PlanKind,
    /// Positions (into `star.attributes()`) of tables to join.
    pub joined: Vec<usize>,
    /// How each retained join executes, parallel to `joined`. Entries
    /// are [`ExecStrategy::Materialize`] or [`ExecStrategy::Factorize`];
    /// avoided tables simply do not appear.
    pub strategies: Vec<ExecStrategy>,
    /// Whether to drop all FK columns after joining.
    pub drop_fks: bool,
    /// Per-table rule verdicts (populated for `JoinOpt`; empty for the
    /// fixed plans).
    pub decisions: Vec<TableDecision>,
}

impl JoinPlan {
    /// Positions of the attribute tables *avoided* by this plan.
    pub fn avoided(&self, star: &StarSchema) -> Vec<usize> {
        (0..star.k()).filter(|i| !self.joined.contains(i)).collect()
    }

    /// How attribute table `i` executes under this plan:
    /// [`ExecStrategy::AvoidJoin`] when it is not retained, otherwise
    /// its entry in `strategies`.
    pub fn strategy_for(&self, i: usize) -> ExecStrategy {
        match self.joined.iter().position(|&j| j == i) {
            Some(p) => self.strategies[p],
            None => ExecStrategy::AvoidJoin,
        }
    }

    /// Returns the plan with every retained join switched to
    /// `strategy`. Panics on [`ExecStrategy::AvoidJoin`]: which joins
    /// to avoid is the *logical* decision this plan already encodes.
    pub fn with_strategy(mut self, strategy: ExecStrategy) -> Self {
        assert!(
            strategy != ExecStrategy::AvoidJoin,
            "use the decision rules to choose avoided joins, not with_strategy"
        );
        for s in &mut self.strategies {
            *s = strategy;
        }
        self
    }

    /// Positions of retained joins executed by materialization.
    pub fn materialized_set(&self) -> Vec<usize> {
        self.joined
            .iter()
            .zip(&self.strategies)
            .filter(|&(_, &s)| s == ExecStrategy::Materialize)
            .map(|(&i, _)| i)
            .collect()
    }

    /// Positions of retained joins executed factorized (resolved
    /// through `hamlet_factorized::FactorizedView`, never joined).
    pub fn factorized_set(&self) -> Vec<usize> {
        self.joined
            .iter()
            .zip(&self.strategies)
            .filter(|&(_, &s)| s == ExecStrategy::Factorize)
            .map(|(&i, _)| i)
            .collect()
    }

    /// Materializes the plan into a single table ready for
    /// `hamlet_ml::Dataset::from_table`.
    ///
    /// Only joins marked [`ExecStrategy::Materialize`] are physically
    /// executed; `Factorize` joins are left to the factorized trainer,
    /// which reads them through the star schema directly.
    pub fn materialize(&self, star: &StarSchema) -> Result<Table> {
        let t = star.materialize(&self.materialized_set())?;
        if self.drop_fks {
            let fk_names: Vec<String> = star.attributes().iter().map(|at| at.fk.clone()).collect();
            let fk_refs: Vec<&str> = fk_names.iter().map(String::as_str).collect();
            t.drop_attributes(&fk_refs)
        } else {
            Ok(t)
        }
    }
}

/// Gathers the rule inputs for attribute table `i` of `star`.
///
/// `n_train` is the number of *training* examples the downstream model
/// will see (half of `n_S` under the 50/25/25 protocol); the entropy
/// guard uses the entity table's full target histogram.
pub fn join_stats(star: &StarSchema, i: usize, n_train: usize) -> JoinStats {
    let at = &star.attributes()[i];
    let target_entropy_bits = star
        .entity()
        .target_column()
        .map(|c| entropy_of_counts(&c.histogram()))
        .unwrap_or(f64::INFINITY);
    JoinStats {
        n_train,
        n_r: at.n_rows(),
        q_r_star: at.min_feature_domain().unwrap_or(1),
        fk_closed: star.fk_closed(i),
        target_entropy_bits,
    }
}

/// Builds a plan of the given kind. For [`PlanKind::JoinOpt`] the rule is
/// consulted per attribute table (independently, as in Sec 4.2
/// "Multiple Attribute Tables"); the other kinds ignore the rule.
pub fn plan<R: DecisionRule>(
    star: &StarSchema,
    kind: PlanKind,
    rule: &R,
    n_train: usize,
) -> JoinPlan {
    match kind {
        PlanKind::JoinAll => JoinPlan {
            kind,
            joined: (0..star.k()).collect(),
            strategies: vec![ExecStrategy::Materialize; star.k()],
            drop_fks: false,
            decisions: Vec::new(),
        },
        PlanKind::NoJoins => JoinPlan {
            kind,
            joined: Vec::new(),
            strategies: Vec::new(),
            drop_fks: false,
            decisions: Vec::new(),
        },
        PlanKind::JoinAllNoFk => JoinPlan {
            kind,
            joined: (0..star.k()).collect(),
            strategies: vec![ExecStrategy::Materialize; star.k()],
            drop_fks: true,
            decisions: Vec::new(),
        },
        PlanKind::JoinOpt => {
            let mut joined = Vec::new();
            let mut decisions = Vec::new();
            for i in 0..star.k() {
                let stats = join_stats(star, i, n_train);
                let decision = rule.decide(&stats);
                if !decision.is_avoid() {
                    joined.push(i);
                }
                decisions.push(TableDecision {
                    table: star.attributes()[i].table.name().to_string(),
                    fk: star.attributes()[i].fk.clone(),
                    stats,
                    decision,
                });
            }
            let strategies = vec![ExecStrategy::Materialize; joined.len()];
            JoinPlan {
                kind,
                joined,
                strategies,
                drop_fks: false,
                decisions,
            }
        }
    }
}

/// Builds a plan that joins exactly the listed attribute tables — used by
/// the robustness study (Fig 8A), which sweeps the whole plan lattice.
pub fn explicit_plan(join_set: &[usize]) -> JoinPlan {
    JoinPlan {
        kind: PlanKind::JoinOpt,
        joined: join_set.to_vec(),
        strategies: vec![ExecStrategy::Materialize; join_set.len()],
        drop_fks: false,
        decisions: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::TrRule;
    use hamlet_relational::{AttributeTable, Domain, StarSchema, TableBuilder};

    /// Star with two attribute tables: R0 tiny (safe to avoid at TR>=20),
    /// R1 large relative to n_S (not safe).
    fn star(n_s: usize) -> StarSchema {
        let n_r0 = 4usize;
        let n_r1 = n_s / 2; // TR = n_train/n_r1 = 1 -> never safe
        let rid0 = Domain::indexed("R0ID", n_r0).shared();
        let rid1 = Domain::indexed("R1ID", n_r1).shared();
        let r0 = TableBuilder::new("R0")
            .primary_key("R0ID", rid0.clone(), (0..n_r0 as u32).collect())
            .feature(
                "a0",
                Domain::boolean("a0").shared(),
                (0..n_r0 as u32).map(|i| i % 2).collect(),
            )
            .build()
            .unwrap();
        let r1 = TableBuilder::new("R1")
            .primary_key("R1ID", rid1.clone(), (0..n_r1 as u32).collect())
            .feature(
                "a1",
                Domain::indexed("a1", 3).shared(),
                (0..n_r1 as u32).map(|i| i % 3).collect(),
            )
            .build()
            .unwrap();
        let s = TableBuilder::new("S")
            .target(
                "y",
                Domain::boolean("y").shared(),
                (0..n_s as u32).map(|i| i % 2).collect(),
            )
            .feature(
                "xs",
                Domain::boolean("xs").shared(),
                (0..n_s as u32).map(|i| (i / 2) % 2).collect(),
            )
            .foreign_key(
                "fk0",
                "R0",
                rid0,
                (0..n_s as u32).map(|i| i % n_r0 as u32).collect(),
            )
            .foreign_key(
                "fk1",
                "R1",
                rid1,
                (0..n_s as u32).map(|i| i % n_r1 as u32).collect(),
            )
            .build()
            .unwrap();
        StarSchema::new(
            s,
            vec![
                AttributeTable {
                    fk: "fk0".into(),
                    table: r0,
                },
                AttributeTable {
                    fk: "fk1".into(),
                    table: r1,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn join_all_joins_everything() {
        let st = star(400);
        let p = plan(&st, PlanKind::JoinAll, &TrRule::default(), 200);
        assert_eq!(p.joined, vec![0, 1]);
        let t = p.materialize(&st).unwrap();
        assert!(t.schema().index_of("a0").is_some());
        assert!(t.schema().index_of("a1").is_some());
        assert!(t.schema().index_of("fk0").is_some());
    }

    #[test]
    fn no_joins_keeps_fks_only() {
        let st = star(400);
        let p = plan(&st, PlanKind::NoJoins, &TrRule::default(), 200);
        assert!(p.joined.is_empty());
        let t = p.materialize(&st).unwrap();
        assert!(t.schema().index_of("a0").is_none());
        assert!(t.schema().index_of("fk0").is_some());
        assert_eq!(p.avoided(&st), vec![0, 1]);
    }

    #[test]
    fn join_all_no_fk_drops_fks() {
        let st = star(400);
        let p = plan(&st, PlanKind::JoinAllNoFk, &TrRule::default(), 200);
        let t = p.materialize(&st).unwrap();
        assert!(t.schema().index_of("fk0").is_none());
        assert!(t.schema().index_of("fk1").is_none());
        assert!(t.schema().index_of("a0").is_some());
        assert!(t.schema().index_of("a1").is_some());
    }

    #[test]
    fn join_opt_follows_rule() {
        let st = star(400);
        let p = plan(&st, PlanKind::JoinOpt, &TrRule::default(), 200);
        // R0: TR = 200/4 = 50 >= 20 -> avoided. R1: TR = 1 -> joined.
        assert_eq!(p.joined, vec![1]);
        assert_eq!(p.decisions.len(), 2);
        assert!(p.decisions[0].decision.is_avoid());
        assert!(!p.decisions[1].decision.is_avoid());
        let t = p.materialize(&st).unwrap();
        assert!(t.schema().index_of("a0").is_none());
        assert!(t.schema().index_of("a1").is_some());
    }

    #[test]
    fn join_stats_reads_catalog() {
        let st = star(400);
        let s0 = join_stats(&st, 0, 200);
        assert_eq!(s0.n_r, 4);
        assert_eq!(s0.q_r_star, 2);
        assert!(s0.fk_closed);
        assert!((s0.target_entropy_bits - 1.0).abs() < 1e-9); // balanced y
    }

    #[test]
    fn explicit_plan_joins_exact_set() {
        let st = star(400);
        let p = explicit_plan(&[1]);
        let t = p.materialize(&st).unwrap();
        assert!(t.schema().index_of("a0").is_none());
        assert!(t.schema().index_of("a1").is_some());
    }

    #[test]
    fn plans_default_to_materialize() {
        let st = star(400);
        let p = plan(&st, PlanKind::JoinAll, &TrRule::default(), 200);
        assert_eq!(p.strategies, vec![ExecStrategy::Materialize; 2]);
        assert_eq!(p.materialized_set(), vec![0, 1]);
        assert!(p.factorized_set().is_empty());
        assert_eq!(p.strategy_for(0), ExecStrategy::Materialize);
    }

    #[test]
    fn with_strategy_switches_retained_joins() {
        let st = star(400);
        let p = plan(&st, PlanKind::JoinOpt, &TrRule::default(), 200)
            .with_strategy(ExecStrategy::Factorize);
        // R0 avoided, R1 retained -> factorized.
        assert_eq!(p.strategy_for(0), ExecStrategy::AvoidJoin);
        assert_eq!(p.strategy_for(1), ExecStrategy::Factorize);
        assert_eq!(p.factorized_set(), vec![1]);
        // Factorize joins are *not* materialized: the wide table only
        // carries the entity columns and FKs.
        let t = p.materialize(&st).unwrap();
        assert!(t.schema().index_of("a1").is_none());
        assert!(t.schema().index_of("fk1").is_some());
    }

    #[test]
    #[should_panic(expected = "avoided joins")]
    fn with_strategy_rejects_avoid() {
        let _ = explicit_plan(&[0]).with_strategy(ExecStrategy::AvoidJoin);
    }

    #[test]
    fn exec_strategy_names() {
        assert_eq!(ExecStrategy::Materialize.name(), "materialize");
        assert_eq!(ExecStrategy::Factorize.name(), "factorize");
        assert_eq!(ExecStrategy::AvoidJoin.name(), "avoid");
    }

    #[test]
    fn plan_kind_names() {
        assert_eq!(PlanKind::JoinAll.name(), "JoinAll");
        assert_eq!(PlanKind::JoinOpt.name(), "JoinOpt");
        assert_eq!(PlanKind::NoJoins.name(), "NoJoins");
        assert_eq!(PlanKind::JoinAllNoFk.name(), "JoinAllNoFK");
    }
}
