//! Multi-class generalizations of the VC-dimension argument (Sec 4.2,
//! "Multi-Class Case").
//!
//! The VC dimension proper is defined for binary classifiers. For
//! multi-class targets the paper points to the Natarajan and graph
//! dimensions, noting that for "linear" classifiers such as Naive Bayes
//! and logistic regression these "are bounded ... by a log-linear factor
//! in the product of the total number of feature values ... and the
//! number of classes" (Daniely et al., NIPS 2012), which makes the
//! binary-tuned ROR rule *stricter than necessary* — in line with the
//! paper's conservatism.
//!
//! This module provides those bounds and a multi-class-adjusted ROR so
//! the effect can be quantified (see the `ablation` experiment).

use crate::ror::worst_case_ror;

/// Daniely-style upper bound on the graph dimension of a linear
/// multi-class predictor over nominal features: `d * k * ln(d * k)`
/// where `d` is the total number of feature values (one-hot width) and
/// `k` the number of classes. For `k = 2` this reduces to the familiar
/// log-linear envelope of the binary case.
pub fn graph_dimension_bound(total_feature_values: usize, n_classes: usize) -> f64 {
    assert!(n_classes >= 2, "need at least two classes");
    let dk = (total_feature_values.max(1) * n_classes) as f64;
    dk * dk.ln().max(1.0)
}

/// Natarajan-dimension upper bound for the same family: `d * k`
/// (dimension of the parameter space), always below the graph bound.
pub fn natarajan_dimension_bound(total_feature_values: usize, n_classes: usize) -> f64 {
    assert!(n_classes >= 2, "need at least two classes");
    (total_feature_values.max(1) * n_classes) as f64
}

/// A multi-class-adjusted worst-case ROR: the binary worst-case ROR
/// computed on dimensions scaled by the Natarajan factor `k / 2`
/// (relative to the binary case). Because the scaling enters both the
/// `|D_FK|` and `q_R*` terms, the adjusted ROR is *larger* than the
/// binary one for `k > 2` — so using the binary ROR with the tuned
/// threshold is the stricter (more conservative) choice, as the paper
/// argues.
pub fn multiclass_worst_case_ror(
    n: usize,
    fk_domain: usize,
    q_r_star: usize,
    n_classes: usize,
    delta: f64,
) -> f64 {
    assert!(n_classes >= 2, "need at least two classes");
    let scale = n_classes as f64 / 2.0;
    let scaled = |v: usize| ((v as f64 * scale).round() as usize).max(1);
    worst_case_ror(n, scaled(fk_domain), scaled(q_r_star), delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_bound_reduces_sensibly() {
        let b2 = graph_dimension_bound(100, 2);
        let b5 = graph_dimension_bound(100, 5);
        assert!(b5 > b2);
        // log-linear: between linear and quadratic in d*k.
        assert!(b5 > 500.0);
        assert!(b5 < 500.0 * 500.0);
    }

    #[test]
    fn natarajan_below_graph() {
        for d in [10usize, 100, 10_000] {
            for k in [2usize, 5, 7] {
                assert!(
                    natarajan_dimension_bound(d, k) <= graph_dimension_bound(d, k),
                    "d={d}, k={k}"
                );
            }
        }
    }

    #[test]
    fn multiclass_ror_exceeds_binary() {
        let n = 100_000;
        let binary = worst_case_ror(n, 2_000, 5, 0.1);
        for k in [3usize, 5, 7] {
            let adj = multiclass_worst_case_ror(n, 2_000, 5, k, 0.1);
            assert!(adj >= binary, "k={k}: adjusted {adj} below binary {binary}");
        }
        assert_eq!(multiclass_worst_case_ror(n, 2_000, 5, 2, 0.1), binary);
    }

    #[test]
    fn binary_rule_is_the_conservative_one() {
        // Using the binary ROR against the binary-tuned threshold is
        // stricter than scaling both: if the binary ROR passes, the
        // properly scaled comparison would pass too (threshold would
        // scale at least as fast as the statistic near the operating
        // points we care about).
        let n = 210_785; // Walmart training partition
        let binary = worst_case_ror(n, 2_340, 2, 0.1);
        let adjusted = multiclass_worst_case_ror(n, 2_340, 2, 7, 0.1);
        // The adjustment grows the statistic by less than the k/2 factor
        // (sqrt + log), so thresholds tuned per-expression stay compatible.
        assert!(adjusted / binary < 7.0 / 2.0);
        assert!(adjusted > binary);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_rejected() {
        graph_dimension_bound(10, 1);
    }
}
