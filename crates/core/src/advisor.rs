//! The join advisor: the paper's results packaged as the API an analyst
//! would actually call.
//!
//! Sec 5.4: "analysts often join all tables almost by instinct. Our work
//! shows that this might lead to much poorer performance without much
//! accuracy gain. ... we think it is possible for such systems to
//! integrate our decision rules for avoiding joins either as new
//! optimizations or as 'suggestions' for analysts." [`advise`] produces
//! those suggestions: per-join statistics, both rules' verdicts with
//! plain-language explanations, skew diagnostics, and the recommended
//! plan.

use hamlet_relational::{Role, StarSchema};

use crate::family::{ModelFamily, ThresholdSource};
use crate::planner::{join_stats, ExecStrategy, JoinPlan, PlanKind};
use crate::rules::{Decision, DecisionRule, JoinReason, JoinStats, RorRule, TrRule};
use crate::skew::{diagnose_skew, SkewReport, MALIGN_RETENTION_FLOOR};

/// Advisor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvisorConfig {
    /// The classifier family the thresholds were tuned for. The rules
    /// below stay authoritative for the decisions; the family names
    /// which tuning the report should quote. Defaults to Naive Bayes —
    /// the family the paper tuned `(rho, tau)` on.
    pub family: ModelFamily,
    /// Provenance of the thresholds in `tr`/`ror` (paper default vs.
    /// Monte-Carlo re-tuned), quoted alongside them in every report.
    pub threshold_source: ThresholdSource,
    /// TR rule to consult.
    pub tr: TrRule,
    /// ROR rule to consult.
    pub ror: RorRule,
    /// Whether to run the targeted `H(FK|Y)` skew detector (a data scan
    /// over the FK and label columns; the rules themselves stay
    /// metadata-only).
    pub check_skew: bool,
    /// Whether joins that are *not* safe to avoid should be recommended
    /// for factorized execution ([`ExecStrategy::Factorize`]) rather
    /// than materialization.
    ///
    /// Factorize gives exactly JoinAll's accuracy (the trainer sees the
    /// same codes, resolved through the FK instead of copied) at close
    /// to NoJoins' memory: the `n_S × d_R` wide-table cells per join are
    /// never allocated. Prefer it whenever the downstream trainer can
    /// consume a `hamlet_ml::CodeSource` — i.e. all trainers in this
    /// workspace. Materialize only remains useful for tooling that
    /// needs an actual flat table (CSV export, third-party libraries).
    pub recommend_factorize: bool,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        Self {
            family: ModelFamily::NaiveBayes,
            threshold_source: ThresholdSource::PaperDefault,
            tr: TrRule::default(),
            ror: RorRule::default(),
            check_skew: true,
            recommend_factorize: false,
        }
    }
}

impl AdvisorConfig {
    /// The configuration for a classifier family: its tuned `(rho, tau)`
    /// (Monte-Carlo re-tuned for the tree families, paper defaults for
    /// the linear ones) with the usual skew guard.
    pub fn for_family(family: ModelFamily) -> Self {
        Self {
            family,
            threshold_source: family.threshold_source(),
            tr: family.tr_rule(),
            ror: family.ror_rule(),
            ..Self::default()
        }
    }
}

/// The advisor's verdict for one candidate join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinAdvice {
    /// Attribute-table name.
    pub table: String,
    /// Foreign key in the entity table.
    pub fk: String,
    /// The statistics the rules consumed.
    pub stats: JoinStats,
    /// TR rule verdict.
    pub tr_decision: Decision,
    /// ROR rule verdict.
    pub ror_decision: Decision,
    /// Skew diagnostics, when requested.
    pub skew: Option<SkewReport>,
    /// Final recommendation: avoid only if *both* rules say avoid and no
    /// malign skew was detected (belt-and-braces conservatism).
    pub avoid: bool,
    /// How the join should execute: `AvoidJoin` when `avoid` is set,
    /// otherwise `Factorize` or `Materialize` per
    /// [`AdvisorConfig::recommend_factorize`].
    pub strategy: ExecStrategy,
    /// Wide-table cells (`n_S × d_R`) that skipping materialization
    /// saves — the memory argument for `Factorize` (and `AvoidJoin`).
    pub cells_saved: u64,
    /// Plain-language explanation of the recommendation.
    pub explanation: String,
}

/// A full advisory report for a star schema.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvisorReport {
    /// Number of training examples assumed by the rules.
    pub n_train: usize,
    /// The classifier family the quoted thresholds were tuned for.
    pub family: ModelFamily,
    /// Provenance of the thresholds (paper default vs. re-tuned).
    pub threshold_source: ThresholdSource,
    /// The worst-case-ROR threshold the verdicts used.
    pub rho: f64,
    /// The tuple-ratio threshold the verdicts used.
    pub tau: f64,
    /// Per-join advice, in catalog order.
    pub joins: Vec<JoinAdvice>,
}

impl AdvisorReport {
    /// The plan implementing the recommendations, including how each
    /// retained join executes.
    pub fn plan(&self) -> JoinPlan {
        let mut joined = Vec::new();
        let mut strategies = Vec::new();
        for (i, j) in self.joins.iter().enumerate() {
            if !j.avoid {
                joined.push(i);
                strategies.push(j.strategy);
            }
        }
        JoinPlan {
            kind: PlanKind::JoinOpt,
            joined,
            strategies,
            drop_fks: false,
            decisions: Vec::new(),
        }
    }

    /// Number of joins recommended for avoidance.
    pub fn avoided_count(&self) -> usize {
        self.joins.iter().filter(|j| j.avoid).count()
    }

    /// Renders the report as a Markdown table (for READMEs, PR
    /// descriptions, notebooks).
    pub fn render_markdown(&self) -> String {
        let mut out = format!(
            "### Join advisory (n_train = {})\n\n_Family {}: rho = {:.2}, tau = {:.1} ({})_\n\n| Table | FK | TR | ROR | Verdict | Why |\n|---|---|---|---|---|---|\n",
            self.n_train, self.family, self.rho, self.tau, self.threshold_source
        );
        for j in &self.joins {
            let tr = j.n_train_over_n_r();
            let ror = match &j.ror_decision {
                Decision::Avoid { value } => format!("{value:.2}"),
                Decision::Join(_) => "-".to_string(),
            };
            out.push_str(&format!(
                "| {} | {} | {:.1} | {} | **{}** | {} |\n",
                j.table,
                j.fk,
                tr,
                ror,
                match j.strategy {
                    ExecStrategy::AvoidJoin => "avoid",
                    ExecStrategy::Factorize => "factorize",
                    ExecStrategy::Materialize => "join",
                },
                j.explanation.replace('|', "\\|")
            ));
        }
        out
    }

    /// Renders the report as readable text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Join advisory (n_train = {}): avoid {} of {} joins\n\
             Model family {}: thresholds rho = {:.2}, tau = {:.1} ({})\n",
            self.n_train,
            self.avoided_count(),
            self.joins.len(),
            self.family,
            self.rho,
            self.tau,
            self.threshold_source
        );
        for j in &self.joins {
            out.push_str(&format!(
                "- {} (via {}): {} — {}\n",
                j.table,
                j.fk,
                match j.strategy {
                    ExecStrategy::AvoidJoin => "AVOID the join",
                    ExecStrategy::Factorize => "FACTORIZE the join",
                    ExecStrategy::Materialize => "PERFORM the join",
                },
                j.explanation
            ));
        }
        out
    }
}

fn explain(decision: &Decision, rule_name: &str) -> String {
    match decision {
        Decision::Avoid { value } => {
            format!("{rule_name} statistic {value:.2} is on the safe side")
        }
        Decision::Join(JoinReason::OpenFkDomain) => {
            "the foreign key's domain is open, so it cannot represent the foreign features"
                .to_string()
        }
        Decision::Join(JoinReason::SkewGuard { entropy_bits }) => format!(
            "the target is heavily skewed (H(Y) = {entropy_bits:.2} bits), so conservatism wins"
        ),
        Decision::Join(JoinReason::Threshold { value, threshold }) => format!(
            "{rule_name} statistic {value:.2} crosses its threshold {threshold:.2}: \
             the foreign key would risk overfitting"
        ),
    }
}

impl JoinAdvice {
    /// The tuple ratio implied by this advice's stats.
    pub fn n_train_over_n_r(&self) -> f64 {
        self.stats.n_train as f64 / self.stats.n_r as f64
    }
}

/// A typed advisor failure.
///
/// [`StarSchema`] construction validates that every attribute table's
/// foreign key names a real FK column of the entity table, so a valid
/// catalog never produces these; the advisor still propagates a typed
/// error instead of asserting so that a catalog mutated or deserialized
/// through some future path degrades loudly but safely (the workspace
/// no-panic contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdvisorError {
    /// An attribute table's declared FK column was not found in the
    /// entity table's schema.
    UnknownForeignKey {
        /// The attribute table whose join was being advised.
        table: String,
        /// The missing FK column name.
        fk: String,
    },
}

impl std::fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvisorError::UnknownForeignKey { table, fk } => write!(
                f,
                "attribute table '{table}' declares foreign key '{fk}', \
                 but the entity table has no such column"
            ),
        }
    }
}

impl std::error::Error for AdvisorError {}

/// Produces advice for every candidate join of `star`, assuming the
/// model will train on `n_train` examples.
///
/// Each verdict now carries an [`ExecStrategy`]. The lattice of options
/// for one candidate join, best to worst along each axis:
///
/// * **AvoidJoin** (the paper's contribution) wins outright when the
///   rules say the FK can represent `X_R`: smallest feature-selection
///   input, no join cost, no accuracy risk.
/// * **Factorize** beats **Materialize** (JoinAll's execution) whenever
///   the join must be kept and the trainer consumes a
///   [`hamlet_ml::CodeSource`]: the model is identical, but the
///   `n_S × d_R` wide-table cells are never allocated — decisive at
///   high tuple ratio `n_S/n_R`, where the wide table repeats each `R`
///   row many times. It beats **NoJoins** on accuracy for unsafe joins
///   by definition: NoJoins drops `X_R` precisely when the rules say
///   that risks overfitting the raw FK.
/// * **Materialize** remains only for consumers that need a physical
///   flat table (CSV export, external tools) — or when repeated row
///   scans must be cache-linear and memory is free.
pub fn advise(
    star: &StarSchema,
    n_train: usize,
    config: &AdvisorConfig,
) -> Result<AdvisorReport, AdvisorError> {
    let mut joins = Vec::with_capacity(star.k());
    for i in 0..star.k() {
        let at = &star.attributes()[i];
        let stats = join_stats(star, i, n_train);
        let tr_decision = config.tr.decide(&stats);
        let ror_decision = config.ror.decide(&stats);

        let skew = if config.check_skew {
            let fk_pos = star.entity().schema().index_of(&at.fk).ok_or_else(|| {
                AdvisorError::UnknownForeignKey {
                    table: at.table.name().to_string(),
                    fk: at.fk.clone(),
                }
            })?;
            debug_assert!(matches!(
                star.entity().schema().attributes()[fk_pos].role,
                Role::ForeignKey { .. }
            ));
            star.entity().target_column().map(|y| {
                let fk = star.entity().column(fk_pos);
                let rows: Vec<usize> = (0..star.n_s()).collect();
                diagnose_skew(
                    fk.codes(),
                    fk.domain().size(),
                    y.codes(),
                    y.domain().size(),
                    &rows,
                )
            })
        } else {
            None
        };
        let malign = skew
            .as_ref()
            .map(|s| s.is_malign(MALIGN_RETENTION_FLOOR))
            .unwrap_or(false);

        let both_avoid = tr_decision.is_avoid() && ror_decision.is_avoid();
        let avoid = both_avoid && !malign;
        let cells_saved = star.n_s() as u64 * at.n_features() as u64;
        let strategy = if avoid {
            ExecStrategy::AvoidJoin
        } else if config.recommend_factorize {
            ExecStrategy::Factorize
        } else {
            ExecStrategy::Materialize
        };
        let mut explanation = if avoid {
            format!(
                "TR = {:.1} and ROR = {:.2} both say the FK can safely represent the {} foreign feature(s); \
                 skipping the join shrinks the feature-selection input",
                config.tr.statistic(&stats),
                config.ror.statistic(&stats),
                at.n_features()
            )
        } else if both_avoid && malign {
            let retention = skew.as_ref().map(|s| s.retention).unwrap_or(1.0);
            format!(
                "the rules pass, but H(FK|Y) retention {retention:.2} flags malign foreign-key skew — join to be safe"
            )
        } else if !tr_decision.is_avoid() {
            explain(&tr_decision, "TR")
        } else {
            explain(&ror_decision, "ROR")
        };
        if strategy == ExecStrategy::Factorize {
            explanation.push_str(&format!(
                "; execute it factorized — train through the foreign key instead of \
                 copying the wide table, saving about {cells_saved} cells \
                 (n_S = {} × d_R = {})",
                star.n_s(),
                at.n_features()
            ));
        }

        joins.push(JoinAdvice {
            table: at.table.name().to_string(),
            fk: at.fk.clone(),
            stats,
            tr_decision,
            ror_decision,
            skew,
            avoid,
            strategy,
            cells_saved,
            explanation,
        });
    }
    Ok(AdvisorReport {
        n_train,
        family: config.family,
        threshold_source: config.threshold_source,
        rho: config.ror.rho,
        tau: config.tr.tau,
        joins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_relational::{AttributeTable, Domain, TableBuilder};

    fn star(n_s: usize, n_r: usize, malign: bool) -> StarSchema {
        let rid = Domain::indexed("fk", n_r).shared();
        let r = TableBuilder::new("R")
            .primary_key("fk", rid.clone(), (0..n_r as u32).collect())
            .feature(
                "a",
                Domain::indexed("a", 3).shared(),
                (0..n_r as u32).map(|i| i % 3).collect(),
            )
            .build()
            .unwrap();
        let fk: Vec<u32>;
        let y: Vec<u32>;
        if malign {
            // Needle: FK 0 carries half the rows and the only label-0 mass.
            fk = (0..n_s as u32)
                .map(|i| {
                    if i % 2 == 0 {
                        0
                    } else {
                        1 + (i / 2) % (n_r as u32 - 1)
                    }
                })
                .collect();
            y = (0..n_s as u32).map(|i| (i % 2 != 0) as u32).collect();
        } else {
            fk = (0..n_s as u32).map(|i| i % n_r as u32).collect();
            y = (0..n_s as u32).map(|i| (i / n_r as u32) % 2).collect();
        }
        let s = TableBuilder::new("S")
            .target("y", Domain::boolean("y").shared(), y)
            .foreign_key("fk", "R", rid, fk)
            .build()
            .unwrap();
        StarSchema::new(
            s,
            vec![AttributeTable {
                fk: "fk".into(),
                table: r,
            }],
        )
        .unwrap()
    }

    #[test]
    fn advises_avoid_on_safe_join() {
        let st = star(4000, 20, false);
        let report = advise(&st, 2000, &AdvisorConfig::default()).unwrap();
        assert_eq!(report.joins.len(), 1);
        let j = &report.joins[0];
        assert!(j.avoid, "{}", j.explanation);
        assert!(j.tr_decision.is_avoid());
        assert!(j.ror_decision.is_avoid());
        assert!(j.explanation.contains("TR ="));
        assert_eq!(report.avoided_count(), 1);
        assert!(report.plan().joined.is_empty());
    }

    #[test]
    fn advises_join_on_small_tuple_ratio() {
        let st = star(400, 200, false);
        let report = advise(&st, 200, &AdvisorConfig::default()).unwrap();
        let j = &report.joins[0];
        assert!(!j.avoid);
        assert!(j.explanation.contains("threshold"), "{}", j.explanation);
        assert_eq!(report.plan().joined, vec![0]);
    }

    #[test]
    fn malign_skew_overrides_passing_rules() {
        // TR = 2000/20 = 100 passes, but the needle distribution is malign.
        let st = star(4000, 20, true);
        let report = advise(&st, 2000, &AdvisorConfig::default()).unwrap();
        let j = &report.joins[0];
        assert!(j.tr_decision.is_avoid());
        assert!(!j.avoid, "malign skew must force the join");
        assert!(j.explanation.contains("malign"), "{}", j.explanation);
        // With the detector off, the rules' verdict stands.
        let lax = AdvisorConfig {
            check_skew: false,
            ..Default::default()
        };
        assert!(advise(&st, 2000, &lax).unwrap().joins[0].avoid);
    }

    #[test]
    fn recommend_factorize_targets_unsafe_joins_only() {
        // 400 rows, n_r = 200: TR = 1 -> the join must be kept.
        let st = star(400, 200, false);
        let config = AdvisorConfig {
            recommend_factorize: true,
            ..Default::default()
        };
        let report = advise(&st, 200, &config).unwrap();
        let j = &report.joins[0];
        assert!(!j.avoid);
        assert_eq!(j.strategy, ExecStrategy::Factorize);
        assert_eq!(j.cells_saved, 400); // n_S = 400, d_R = 1
        assert!(j.explanation.contains("factorized"), "{}", j.explanation);
        assert!(j.explanation.contains("400 cells"), "{}", j.explanation);
        let plan = report.plan();
        assert_eq!(plan.factorized_set(), vec![0]);
        assert!(plan.materialized_set().is_empty());
        // A safe-to-avoid join stays avoided; factorization never
        // overrides the logical verdict.
        let safe = advise(&star(4000, 20, false), 2000, &config).unwrap();
        assert!(safe.joins[0].avoid);
        assert_eq!(safe.joins[0].strategy, ExecStrategy::AvoidJoin);
        assert!(safe.plan().joined.is_empty());
    }

    #[test]
    fn factorize_renders_in_reports() {
        let st = star(400, 200, false);
        let config = AdvisorConfig {
            recommend_factorize: true,
            ..Default::default()
        };
        let report = advise(&st, 200, &config).unwrap();
        assert!(report.render().contains("FACTORIZE the join"));
        assert!(report.render_markdown().contains("**factorize**"));
    }

    #[test]
    fn markdown_rendering() {
        let st = star(4000, 20, false);
        let md = advise(&st, 2000, &AdvisorConfig::default())
            .unwrap()
            .render_markdown();
        assert!(md.starts_with("### Join advisory"));
        assert!(md.contains("_Family naive_bayes: rho = 2.60, tau = 20.0 (paper defaults"));
        assert!(md.contains("| R | fk |"));
        assert!(md.contains("**avoid**"));
        assert_eq!(md.lines().count(), 7); // title, family line, header x3, 1 row, spacing
    }

    #[test]
    fn family_config_changes_the_verdict_and_the_report() {
        use crate::family::{ModelFamily, ThresholdSource};
        // TR = 1500/50 = 30: safe for Naive Bayes (tau 20), unsafe for
        // trees (tau 40) — the qualitative finding of arXiv 1704.00485.
        let st = star(3000, 50, false);
        let nb = advise(&st, 1500, &AdvisorConfig::default()).unwrap();
        assert!(nb.joins[0].avoid);
        let tree = advise(
            &st,
            1500,
            &AdvisorConfig::for_family(ModelFamily::DecisionTree),
        )
        .unwrap();
        assert!(
            !tree.joins[0].avoid,
            "tree thresholds must keep the join: {}",
            tree.joins[0].explanation
        );
        assert_eq!(tree.family, ModelFamily::DecisionTree);
        assert_eq!(tree.threshold_source, ThresholdSource::MonteCarloRetuned);
        let text = tree.render();
        assert!(
            text.contains("Model family tree") && text.contains("Monte-Carlo re-tuned"),
            "{text}"
        );
    }

    #[test]
    fn render_mentions_each_table() {
        let st = star(4000, 20, false);
        let text = advise(&st, 2000, &AdvisorConfig::default())
            .unwrap()
            .render();
        assert!(text.contains("R (via fk)"));
        assert!(text.contains("AVOID"));
    }
}
