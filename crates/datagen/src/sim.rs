//! Monte-Carlo simulation worlds (Sec 4.1, appendix D).
//!
//! A [`SimWorld`] is one *true distribution* `P(Y, X)` over a two-table
//! star schema `S(SID, Y, X_S, FK)` ⋈ `R(RID, X_R)` with all-boolean
//! features. The attribute table `R` is fixed per world ("since R is fixed
//! in our setting", Sec 3.2); entity samples are drawn i.i.d. from the
//! world. Three scenarios are implemented:
//!
//! * [`Scenario::LoneForeignFeature`] — the paper's key worst case: the
//!   target depends on a single `X_r ∈ X_R` through
//!   `P(Y=0|X_r=0) = P(Y=1|X_r=1) = p`;
//! * [`Scenario::AllFeatures`] — all of `X_S` and `X_R` matter (majority
//!   concept, appendix D / Fig 11);
//! * [`Scenario::EntityAndFk`] — only `X_S` and a hidden per-RID bit
//!   matter (the third scenario the paper mentions).
//!
//! Every sample comes with the exact conditional `P(Y | x)` per row, which
//! the bias/variance decomposition needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hamlet_relational::{AttributeTable, Domain, StarSchema, Table, TableBuilder};

use crate::skew::{FkSampler, FkSkew};

/// Which features participate in the true distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// A lone `X_r ∈ X_R` (feature `xr0`) carries all signal.
    LoneForeignFeature,
    /// All of `X_S ∪ X_R` carry signal (majority vote).
    AllFeatures,
    /// `X_S` plus a latent per-FK bit carry signal; `X_R` is pure noise.
    EntityAndFk,
}

/// Parameters of a simulation world.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// True-distribution scenario.
    pub scenario: Scenario,
    /// Number of entity-table features `d_S` (boolean).
    pub d_s: usize,
    /// Number of attribute-table features `d_R` (boolean).
    pub d_r: usize,
    /// Attribute-table rows `n_R = |D_FK|`.
    pub n_r: usize,
    /// Label-noise probability `p` (Fig 3 uses `p = 0.1`).
    pub p: f64,
    /// Foreign-key distribution.
    pub skew: FkSkew,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            scenario: Scenario::LoneForeignFeature,
            d_s: 2,
            d_r: 4,
            n_r: 40,
            p: 0.1,
            skew: FkSkew::Uniform,
        }
    }
}

impl SimulationConfig {
    /// Fixes the attribute table and latents, producing a world from
    /// which entity samples can be drawn.
    pub fn build_world(&self, seed: u64) -> SimWorld {
        assert!(self.d_r >= 1, "need at least one foreign feature");
        assert!((0.0..=1.0).contains(&self.p), "p must be a probability");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_0000);

        // X_R assignment per RID. Feature 0 is the designated X_r.
        let mut xr: Vec<Vec<u32>> = (0..self.d_r)
            .map(|_| (0..self.n_r).map(|_| rng.gen_range(0..2u32)).collect())
            .collect();
        if matches!(self.skew, FkSkew::NeedleAndThread { .. })
            && self.scenario == Scenario::LoneForeignFeature
        {
            // Appendix D: the needle FK value is associated with one X_r
            // value, all thread values with the other.
            for (rid, v) in xr[0].iter_mut().enumerate() {
                *v = if rid == 0 { 0 } else { 1 };
            }
        }

        // Scenario-3 latent bit per RID.
        let g: Vec<u32> = (0..self.n_r).map(|_| rng.gen_range(0..2u32)).collect();

        let rid_domain = Domain::indexed("FK", self.n_r).shared();
        let mut builder = TableBuilder::new("R").primary_key(
            "RID",
            rid_domain.clone(),
            (0..self.n_r as u32).collect(),
        );
        for (j, col) in xr.iter().enumerate() {
            builder = builder.feature(
                &format!("xr{j}"),
                Domain::boolean(format!("xr{j}")).shared(),
                col.clone(),
            );
        }
        let r_table = builder.build().expect("generated R table is valid");

        SimWorld {
            cfg: self.clone(),
            rid_domain_size: self.n_r,
            r_table,
            xr,
            g,
            sampler: FkSampler::new(&self.skew, self.n_r),
        }
    }
}

/// A fixed true distribution; see module docs.
#[derive(Debug, Clone)]
pub struct SimWorld {
    cfg: SimulationConfig,
    rid_domain_size: usize,
    r_table: Table,
    /// `xr[j][rid]` — value of foreign feature `j` for RID `rid`.
    xr: Vec<Vec<u32>>,
    /// Scenario-3 latent bit per RID.
    g: Vec<u32>,
    sampler: FkSampler,
}

/// One i.i.d. sample from a [`SimWorld`]: the star schema plus the exact
/// conditional `P(Y = y | x)` for every entity row.
#[derive(Debug, Clone)]
pub struct SimSample {
    /// The two-table schema (entity + the world's fixed `R`).
    pub star: StarSchema,
    /// `cond[i][y] = P(Y = y | x_i)` under the true distribution.
    pub cond: Vec<Vec<f64>>,
}

impl SimWorld {
    /// The configuration this world was built from.
    pub fn config(&self) -> &SimulationConfig {
        &self.cfg
    }

    /// The fixed attribute table.
    pub fn r_table(&self) -> &Table {
        &self.r_table
    }

    /// `P(Y = 1 | fk, x_s)` under the true distribution.
    pub fn conditional(&self, fk: u32, xs: &[u32]) -> f64 {
        let p = self.cfg.p;
        match self.cfg.scenario {
            Scenario::LoneForeignFeature => {
                // P(Y=1|Xr=1) = p ; P(Y=0|Xr=0) = p -> P(Y=1|Xr=0) = 1-p.
                if self.xr[0][fk as usize] == 1 {
                    p
                } else {
                    1.0 - p
                }
            }
            Scenario::AllFeatures => {
                let ones: u32 = xs.iter().sum::<u32>()
                    + self.xr.iter().map(|col| col[fk as usize]).sum::<u32>();
                let total = (self.cfg.d_s + self.cfg.d_r) as u32;
                let base = u32::from(2 * ones >= total);
                if base == 1 {
                    1.0 - p
                } else {
                    p
                }
            }
            Scenario::EntityAndFk => {
                let ones: u32 = xs.iter().sum::<u32>() + self.g[fk as usize];
                let total = (self.cfg.d_s + 1) as u32;
                let base = u32::from(2 * ones >= total);
                if base == 1 {
                    1.0 - p
                } else {
                    p
                }
            }
        }
    }

    /// Draws an entity table of `n` labeled examples and wraps it with
    /// the world's attribute table into a validated star schema.
    pub fn sample(&self, n: usize, seed: u64) -> SimSample {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE17A_0001);
        let mut fk_codes = Vec::with_capacity(n);
        let mut xs_cols: Vec<Vec<u32>> = vec![Vec::with_capacity(n); self.cfg.d_s];
        let mut y_codes = Vec::with_capacity(n);
        let mut cond = Vec::with_capacity(n);
        let mut xs_row = vec![0u32; self.cfg.d_s];

        for _ in 0..n {
            let fk = self.sampler.sample(&mut rng);
            for v in xs_row.iter_mut() {
                *v = rng.gen_range(0..2u32);
            }
            let p1 = self.conditional(fk, &xs_row);
            let y = u32::from(rng.gen::<f64>() < p1);
            fk_codes.push(fk);
            for (col, &v) in xs_cols.iter_mut().zip(xs_row.iter()) {
                col.push(v);
            }
            y_codes.push(y);
            cond.push(vec![1.0 - p1, p1]);
        }

        let mut builder = TableBuilder::new("S")
            .primary_key(
                "SID",
                Domain::indexed("SID", n).shared(),
                (0..n as u32).collect(),
            )
            .target("Y", Domain::boolean("Y").shared(), y_codes);
        for (i, col) in xs_cols.into_iter().enumerate() {
            builder = builder.feature(
                &format!("xs{i}"),
                Domain::boolean(format!("xs{i}")).shared(),
                col,
            );
        }
        builder = builder.foreign_key(
            "FK",
            "R",
            Domain::indexed("FK", self.rid_domain_size).shared(),
            fk_codes,
        );
        let entity = builder.build().expect("generated entity table is valid");
        let star = StarSchema::new(
            entity,
            vec![AttributeTable {
                fk: "FK".into(),
                table: self.r_table.clone(),
            }],
        )
        .expect("generated star schema is valid");

        SimSample { star, cond }
    }

    /// Names of the entity features `X_S`.
    pub fn xs_names(&self) -> Vec<String> {
        (0..self.cfg.d_s).map(|i| format!("xs{i}")).collect()
    }

    /// Names of the foreign features `X_R`.
    pub fn xr_names(&self) -> Vec<String> {
        (0..self.cfg.d_r).map(|j| format!("xr{j}")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(scenario: Scenario) -> SimWorld {
        SimulationConfig {
            scenario,
            d_s: 2,
            d_r: 3,
            n_r: 10,
            p: 0.1,
            skew: FkSkew::Uniform,
        }
        .build_world(7)
    }

    #[test]
    fn r_table_shape() {
        let w = world(Scenario::LoneForeignFeature);
        assert_eq!(w.r_table().n_rows(), 10);
        assert_eq!(w.r_table().schema().features().len(), 3);
    }

    #[test]
    fn sample_shape_and_validity() {
        let w = world(Scenario::LoneForeignFeature);
        let s = w.sample(500, 1);
        assert_eq!(s.star.n_s(), 500);
        assert_eq!(s.cond.len(), 500);
        assert_eq!(s.star.d_s(), 2);
        assert_eq!(s.star.k(), 1);
        // Full join materializes.
        let t = s.star.materialize_all().unwrap();
        assert_eq!(t.n_rows(), 500);
        assert!(t.schema().index_of("xr0").is_some());
    }

    #[test]
    fn scenario1_conditional_follows_xr() {
        let w = world(Scenario::LoneForeignFeature);
        for fk in 0..10u32 {
            let c = w.conditional(fk, &[0, 0]);
            let xr0 = w.r_table().column_by_name("xr0").unwrap();
            // RIDs are stored in order 0..n_r in the generated table.
            let expected = if xr0.codes()[fk as usize] == 1 {
                0.1
            } else {
                0.9
            };
            assert!((c - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn scenario1_ignores_xs() {
        let w = world(Scenario::LoneForeignFeature);
        assert_eq!(w.conditional(3, &[0, 0]), w.conditional(3, &[1, 1]));
    }

    #[test]
    fn scenario2_uses_all_features() {
        let w = world(Scenario::AllFeatures);
        // All-zero xs with an all-zero X_R rid (if any) -> base 0 -> p.
        // Rather than rely on a specific rid, verify monotonicity: adding
        // ones never decreases P(Y=1).
        for fk in 0..10u32 {
            let lo = w.conditional(fk, &[0, 0]);
            let hi = w.conditional(fk, &[1, 1]);
            assert!(hi >= lo);
        }
    }

    #[test]
    fn scenario3_depends_on_latent_not_xr() {
        let w = world(Scenario::EntityAndFk);
        // Two rids with the same latent bit must give identical conditionals.
        let g0 = w.g[0];
        if let Some(other) = (1..10).find(|&r| w.g[r] == g0) {
            assert_eq!(
                w.conditional(0, &[1, 0]),
                w.conditional(other as u32, &[1, 0])
            );
        }
    }

    #[test]
    fn labels_match_conditionals_statistically() {
        let w = world(Scenario::LoneForeignFeature);
        let s = w.sample(20_000, 3);
        let t = s.star.materialize_all().unwrap();
        let y = t.column_by_name("Y").unwrap();
        let xr0 = t.column_by_name("xr0").unwrap();
        // Empirical P(Y=1 | xr0=1) should be near p = 0.1.
        let (mut n1, mut y1) = (0usize, 0usize);
        for i in 0..t.n_rows() {
            if xr0.get(i) == 1 {
                n1 += 1;
                y1 += (y.get(i) == 1) as usize;
            }
        }
        let emp = y1 as f64 / n1 as f64;
        assert!((emp - 0.1).abs() < 0.02, "empirical P(Y=1|xr=1) = {emp}");
    }

    #[test]
    fn needle_skew_pins_xr_assignment() {
        let w = SimulationConfig {
            scenario: Scenario::LoneForeignFeature,
            d_s: 1,
            d_r: 2,
            n_r: 6,
            p: 0.1,
            skew: FkSkew::NeedleAndThread { needle_prob: 0.5 },
        }
        .build_world(11);
        let xr0 = w.r_table().column_by_name("xr0").unwrap();
        assert_eq!(xr0.codes()[0], 0);
        assert!(xr0.codes()[1..].iter().all(|&v| v == 1));
    }

    #[test]
    fn deterministic_given_seeds() {
        let cfg = SimulationConfig::default();
        let w1 = cfg.build_world(5);
        let w2 = cfg.build_world(5);
        let a = w1.sample(100, 9);
        let b = w2.sample(100, 9);
        assert_eq!(
            a.star.entity().column_by_name("Y").unwrap().codes(),
            b.star.entity().column_by_name("Y").unwrap().codes()
        );
        assert_eq!(a.cond, b.cond);
    }

    #[test]
    fn name_helpers() {
        let w = world(Scenario::AllFeatures);
        assert_eq!(w.xs_names(), vec!["xs0", "xs1"]);
        assert_eq!(w.xr_names(), vec!["xr0", "xr1", "xr2"]);
    }
}
