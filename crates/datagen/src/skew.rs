//! Foreign-key skew models (appendix D).
//!
//! The paper's decision rules assume non-skewed FKs; appendix D studies
//! two skew families: **benign** Zipfian skew and the **malign**
//! "needle-and-thread" distribution where one FK value carries probability
//! mass `p` and is associated with one `X_r` (hence one `Y`) value while
//! the remaining `1 - p` is spread uniformly over FK values associated
//! with the other value.

use rand::Rng;

/// A distribution over foreign-key codes `0..n`.
#[derive(Debug, Clone, PartialEq)]
pub enum FkSkew {
    /// Uniform over all FK values (the paper's default assumption).
    Uniform,
    /// Zipfian with the given exponent: `P(k) ∝ 1/(k+1)^s` — the benign
    /// skew of Fig 13(A), "often used in the database literature".
    Zipf {
        /// Skew exponent `s > 0`.
        exponent: f64,
    },
    /// Needle-and-thread (Fig 13(B)): FK value 0 has mass `needle_prob`;
    /// the rest share `1 - needle_prob` uniformly.
    NeedleAndThread {
        /// Probability mass of the needle value.
        needle_prob: f64,
    },
}

/// A sampler for FK codes with a precomputed cumulative table.
#[derive(Debug, Clone)]
pub struct FkSampler {
    cumulative: Vec<f64>,
}

impl FkSampler {
    /// Builds a sampler over `n` FK values with the given skew.
    ///
    /// # Panics
    /// Panics on `n == 0`, non-positive Zipf exponent, or a needle
    /// probability outside `(0, 1)`.
    pub fn new(skew: &FkSkew, n: usize) -> Self {
        assert!(n > 0, "need at least one FK value");
        let probs: Vec<f64> = match skew {
            FkSkew::Uniform => vec![1.0 / n as f64; n],
            FkSkew::Zipf { exponent } => {
                assert!(*exponent > 0.0, "Zipf exponent must be positive");
                let raw: Vec<f64> = (0..n)
                    .map(|k| 1.0 / ((k + 1) as f64).powf(*exponent))
                    .collect();
                let z: f64 = raw.iter().sum();
                raw.into_iter().map(|p| p / z).collect()
            }
            FkSkew::NeedleAndThread { needle_prob } => {
                assert!(
                    *needle_prob > 0.0 && *needle_prob < 1.0,
                    "needle probability must be in (0, 1)"
                );
                if n == 1 {
                    vec![1.0]
                } else {
                    let rest = (1.0 - needle_prob) / (n - 1) as f64;
                    let mut p = vec![rest; n];
                    p[0] = *needle_prob;
                    p
                }
            }
        };
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in probs {
            acc += p;
            cumulative.push(acc);
        }
        // Guard against rounding: the last entry must cover 1.0.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self { cumulative }
    }

    /// Number of FK values.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Probability of FK code `k`.
    pub fn prob(&self, k: usize) -> f64 {
        let lo = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        self.cumulative[k] - lo
    }

    /// Draws one FK code.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        // Binary search for the first cumulative >= u.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => i as u32,
            Err(i) => i.min(self.cumulative.len() - 1) as u32,
        }
    }

    /// Draws `count` FK codes.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<u32> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(samples: &[u32], n: usize) -> Vec<usize> {
        let mut h = vec![0usize; n];
        for &s in samples {
            h[s as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let s = FkSampler::new(&FkSkew::Uniform, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let h = histogram(&s.sample_many(&mut rng, 100_000), 10);
        for &c in &h {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "bin count {c}");
        }
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let s = FkSampler::new(&FkSkew::Zipf { exponent: 2.0 }, 8);
        for k in 1..8 {
            assert!(s.prob(k) < s.prob(k - 1));
        }
        // P(0) for s=2, n=8: 1 / sum(1/k^2) ~ 1/1.5274.
        assert!((s.prob(0) - 0.6547).abs() < 0.01);
    }

    #[test]
    fn needle_mass_matches() {
        let s = FkSampler::new(&FkSkew::NeedleAndThread { needle_prob: 0.5 }, 41);
        assert!((s.prob(0) - 0.5).abs() < 1e-12);
        assert!((s.prob(1) - 0.5 / 40.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(2);
        let h = histogram(&s.sample_many(&mut rng, 50_000), 41);
        assert!((h[0] as f64 - 25_000.0).abs() < 800.0);
    }

    #[test]
    fn probs_sum_to_one() {
        for skew in [
            FkSkew::Uniform,
            FkSkew::Zipf { exponent: 1.0 },
            FkSkew::NeedleAndThread { needle_prob: 0.3 },
        ] {
            let s = FkSampler::new(&skew, 17);
            let total: f64 = (0..17).map(|k| s.prob(k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "{skew:?}");
        }
    }

    #[test]
    fn samples_in_range() {
        let s = FkSampler::new(&FkSkew::Zipf { exponent: 1.5 }, 5);
        let mut rng = StdRng::seed_from_u64(3);
        for v in s.sample_many(&mut rng, 10_000) {
            assert!(v < 5);
        }
    }

    #[test]
    fn single_value_domain() {
        let s = FkSampler::new(&FkSkew::NeedleAndThread { needle_prob: 0.9 }, 1);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(s.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one FK value")]
    fn zero_domain_panics() {
        FkSampler::new(&FkSkew::Uniform, 0);
    }

    #[test]
    #[should_panic(expected = "needle probability")]
    fn bad_needle_panics() {
        FkSampler::new(&FkSkew::NeedleAndThread { needle_prob: 1.0 }, 5);
    }
}
