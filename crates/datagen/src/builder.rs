//! Fluent builder for custom synthetic star schemas.
//!
//! [`crate::realistic`] ships the paper's seven datasets; this builder
//! exposes the same generator — planted Gaussian-score concepts over a
//! configurable star schema — for user-defined scenarios: new tuple
//! ratios, new signal placements (entity / hidden-FK / visible-foreign),
//! new class counts. Useful for stress-testing the decision rules on
//! shapes the paper never measured.
//!
//! ```
//! use hamlet_datagen::builder::SyntheticStarBuilder;
//!
//! let generated = SyntheticStarBuilder::new("Custom", 3, 20_000)
//!     .noise(0.8)
//!     .entity_feature("device", 6, 0.5)
//!     .attribute_table("Sellers", "SellerID", 200, |t| {
//!         t.hidden_weight(0.7)
//!             .feature("Region", 12)
//!             .weighted_feature("Tier", 4, 0.3)
//!     })
//!     .attribute_table("Sessions", "SessionID", 10_000, |t| {
//!         t.open_domain().feature("Hour", 24)
//!     })
//!     .generate(42);
//! assert_eq!(generated.star.k(), 2);
//! ```

use crate::realistic::{AttrTableSpec, DatasetSpec, FeatureSpec, GeneratedDataset};

/// Builder for one attribute table.
#[derive(Debug, Clone)]
pub struct AttrTableBuilder {
    table: &'static str,
    fk: &'static str,
    n_rows: usize,
    features: Vec<FeatureSpec>,
    closed: bool,
    hidden_weight: f64,
    visible_weights: Vec<(usize, f64)>,
}

impl AttrTableBuilder {
    fn new(table: &'static str, fk: &'static str, n_rows: usize) -> Self {
        Self {
            table,
            fk,
            n_rows,
            features: Vec::new(),
            closed: true,
            hidden_weight: 0.0,
            visible_weights: Vec::new(),
        }
    }

    /// Adds a noise feature with the given domain size.
    pub fn feature(mut self, name: &'static str, domain: usize) -> Self {
        self.features.push(FeatureSpec { name, domain });
        self
    }

    /// Adds a feature that carries concept weight `w`.
    pub fn weighted_feature(mut self, name: &'static str, domain: usize, w: f64) -> Self {
        self.visible_weights.push((self.features.len(), w));
        self.features.push(FeatureSpec { name, domain });
        self
    }

    /// Sets the hidden per-row (identity) concept weight.
    pub fn hidden_weight(mut self, w: f64) -> Self {
        self.hidden_weight = w;
        self
    }

    /// Marks the referencing FK's domain as open (not a join-avoidance
    /// candidate).
    pub fn open_domain(mut self) -> Self {
        self.closed = false;
        self
    }

    fn build(self) -> AttrTableSpec {
        // A table whose signal is hidden-or-absent is avoidable whenever
        // the FK can be learned; visible signal makes that contingent on
        // the tuple ratio — the builder records the *structural* truth
        // (no visible signal => hindsight-safe), which the generator's
        // tests rely on. Users probing edge cases should assert on
        // measured errors, not this flag.
        let safe = self.visible_weights.is_empty();
        AttrTableSpec {
            table: self.table,
            fk: self.fk,
            n_rows: self.n_rows,
            features: self.features,
            closed: self.closed,
            hidden_weight: self.hidden_weight,
            visible_weights: self.visible_weights,
            safe_to_avoid_in_hindsight: safe,
        }
    }
}

/// Builder for a full synthetic star schema.
#[derive(Debug, Clone)]
pub struct SyntheticStarBuilder {
    spec: DatasetSpec,
}

impl SyntheticStarBuilder {
    /// Starts a dataset named `name` with `n_classes` target classes and
    /// `n_s` entity rows (at scale 1.0).
    pub fn new(name: &'static str, n_classes: usize, n_s: usize) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        assert!(n_s > 0, "need at least one row");
        Self {
            spec: DatasetSpec {
                name,
                n_classes,
                n_s,
                target: "Y",
                entity_features: Vec::new(),
                entity_weights: Vec::new(),
                tables: Vec::new(),
                noise: 1.0,
            },
        }
    }

    /// Sets the Gaussian score-noise standard deviation (default 1.0).
    pub fn noise(mut self, sd: f64) -> Self {
        assert!(sd >= 0.0, "noise must be nonnegative");
        self.spec.noise = sd;
        self
    }

    /// Adds an entity feature carrying concept weight `w` (0 for noise).
    pub fn entity_feature(mut self, name: &'static str, domain: usize, w: f64) -> Self {
        if w != 0.0 {
            self.spec
                .entity_weights
                .push((self.spec.entity_features.len(), w));
        }
        self.spec.entity_features.push(FeatureSpec { name, domain });
        self
    }

    /// Adds an attribute table configured by `f`.
    pub fn attribute_table<F>(
        mut self,
        table: &'static str,
        fk: &'static str,
        n_rows: usize,
        f: F,
    ) -> Self
    where
        F: FnOnce(AttrTableBuilder) -> AttrTableBuilder,
    {
        let builder = f(AttrTableBuilder::new(table, fk, n_rows));
        self.spec.tables.push(builder.build());
        self
    }

    /// The assembled spec (for inspection or Fig-6-style reporting).
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Generates the dataset at full scale.
    pub fn generate(&self, seed: u64) -> GeneratedDataset {
        self.spec.generate(1.0, seed)
    }

    /// Generates at a reduced scale (joint shrink of `n_S` and `n_Ri`).
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> GeneratedDataset {
        self.spec.generate(scale, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_core::advisor::{advise, AdvisorConfig};

    fn sample() -> SyntheticStarBuilder {
        SyntheticStarBuilder::new("Custom", 2, 10_000)
            .noise(0.8)
            .entity_feature("x", 4, 0.6)
            .entity_feature("noise", 8, 0.0)
            .attribute_table("Safe", "SafeID", 100, |t| {
                t.hidden_weight(0.5).feature("a", 3)
            })
            .attribute_table("Unsafe", "UnsafeID", 4_000, |t| {
                t.weighted_feature("quality", 9, 0.8)
            })
    }

    #[test]
    fn builder_shapes_spec() {
        let b = sample();
        let spec = b.spec();
        assert_eq!(spec.entity_features.len(), 2);
        assert_eq!(spec.entity_weights, vec![(0, 0.6)]);
        assert_eq!(spec.tables.len(), 2);
        assert!(spec.tables[0].safe_to_avoid_in_hindsight);
        assert!(!spec.tables[1].safe_to_avoid_in_hindsight);
        assert!((spec.tables[0].hidden_weight - 0.5).abs() < 1e-12);
        assert_eq!(spec.tables[1].visible_weights, vec![(0, 0.8)]);
    }

    #[test]
    fn generated_star_matches_builder() {
        let g = sample().generate(7);
        assert_eq!(g.star.n_s(), 10_000);
        assert_eq!(g.star.k(), 2);
        assert_eq!(g.star.attributes()[0].n_rows(), 100);
        assert_eq!(g.star.attributes()[1].n_rows(), 4_000);
        assert!(g.star.fk_closed(0));
    }

    #[test]
    fn advisor_sees_the_planted_structure() {
        let g = sample().generate(7);
        let report = advise(&g.star, 5_000, &AdvisorConfig::default()).unwrap();
        // Safe: TR = 5000/100 = 50 -> avoid. Unsafe: TR = 1.25 -> join.
        assert!(report.joins[0].avoid);
        assert!(!report.joins[1].avoid);
    }

    #[test]
    fn open_domain_flag_propagates() {
        let g = SyntheticStarBuilder::new("T", 2, 1_000)
            .attribute_table("Sessions", "SessionID", 100, |t| {
                t.open_domain().feature("h", 24)
            })
            .generate(3);
        assert!(!g.star.fk_closed(0));
    }

    #[test]
    fn scaled_generation_preserves_tr() {
        let b = sample();
        let full = b.generate(1);
        let small = b.generate_scaled(0.1, 1);
        let tr_full = full.star.n_s() as f64 / full.star.attributes()[1].n_rows() as f64;
        let tr_small = small.star.n_s() as f64 / small.star.attributes()[1].n_rows() as f64;
        assert!((tr_full - tr_small).abs() / tr_full < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_rejected() {
        SyntheticStarBuilder::new("T", 1, 10);
    }
}
