//! Synthetic analogs of the paper's seven real datasets (Sec 5, Fig 6).
//!
//! The originals (Kaggle / GroupLens / openflights / last.fm dumps) are
//! not redistributable here, so each dataset is synthesized with the
//! exact Figure 6 shape statistics — `#Y`, `(n_S, d_S)`, `k`, `k'`,
//! `(n_Ri, d_Ri)` — and a **planted ground truth** that reproduces the
//! paper's qualitative outcome for every join (see DESIGN.md §3).
//!
//! ## The planted concept
//!
//! The target is an equal-mass ordinal bucketing of a Gaussian score
//!
//! ```text
//! score = Σ w_e · value(X_S feature)                  (entity signal)
//!       + Σ_i [ w_hidden_i · hidden_i(FK_i)           (FK-identity signal)
//!             + Σ w_v · value(visible R_i feature) ]  (foreign-feature signal)
//!       + noise · N(0, 1)
//! ```
//!
//! where `value(·)` is the feature's uniformly distributed code scaled to
//! unit variance and `hidden_i(rid) ~ N(0,1)` is a per-row latent of the
//! attribute table that is *not recorded as a feature* (store/user/movie
//! identity effects). The three signal channels decide each join's fate:
//!
//! * **hidden-only** signal (Walmart, MovieLens1M, LastFM users): the FK
//!   is indispensable (dropping FKs is catastrophic, Fig 8C) but the join
//!   adds nothing — safe to avoid whenever `n_S/n_R` is large;
//! * **visible** signal with a *small* tuple ratio (Yelp, BookCrossing
//!   users): the FK-as-representative overfits, so avoiding the join
//!   blows up the error — exactly the paper's variance argument;
//! * **weak/no** signal (Flights airports, BookCrossing books, LastFM
//!   artists): avoidable in hindsight; a conservative rule may still say
//!   "join" (the paper's missed opportunities).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hamlet_relational::{AttributeDef, AttributeTable, Domain, StarSchema, TableBuilder};

use crate::stats::normal_quantile;

/// One feature's name and domain size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSpec {
    /// Attribute name (taken from the paper's schema listings).
    pub name: &'static str,
    /// Nominal domain size (numeric originals are pre-binned).
    pub domain: usize,
}

impl FeatureSpec {
    const fn new(name: &'static str, domain: usize) -> Self {
        Self { name, domain }
    }
}

/// Specification of one attribute table `R_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrTableSpec {
    /// Table name.
    pub table: &'static str,
    /// Foreign-key column name in the entity table.
    pub fk: &'static str,
    /// Full-scale row count `n_Ri` (Fig 6).
    pub n_rows: usize,
    /// Foreign features `X_Ri`.
    pub features: Vec<FeatureSpec>,
    /// Whether the FK domain is closed w.r.t. the prediction task (`k'`).
    pub closed: bool,
    /// Concept weight on the hidden per-RID latent.
    pub hidden_weight: f64,
    /// Concept weights on visible features: `(feature index, weight)`.
    pub visible_weights: Vec<(usize, f64)>,
    /// Ground truth: does avoiding this join leave the test error
    /// essentially unchanged? (Used by integration tests and the
    /// robustness experiment's expectations.)
    pub safe_to_avoid_in_hindsight: bool,
}

/// Specification of one full dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as in Fig 6.
    pub name: &'static str,
    /// Number of target classes `#Y`.
    pub n_classes: usize,
    /// Full-scale entity rows `n_S`.
    pub n_s: usize,
    /// Target attribute name.
    pub target: &'static str,
    /// Entity features `X_S`.
    pub entity_features: Vec<FeatureSpec>,
    /// Concept weights on entity features: `(feature index, weight)`.
    pub entity_weights: Vec<(usize, f64)>,
    /// Attribute tables `R_1..R_k`.
    pub tables: Vec<AttrTableSpec>,
    /// Standard deviation of the additive Gaussian score noise.
    pub noise: f64,
}

/// A generated dataset: the star schema plus its spec.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The validated star schema at the requested scale.
    pub star: StarSchema,
    /// The specification it was generated from.
    pub spec: DatasetSpec,
    /// The scale factor applied to `n_S` and every `n_Ri`.
    pub scale: f64,
}

impl DatasetSpec {
    /// All seven datasets in the paper's Figure 6 order.
    pub fn all() -> Vec<DatasetSpec> {
        vec![
            Self::walmart(),
            Self::expedia(),
            Self::flights(),
            Self::yelp(),
            Self::movielens(),
            Self::lastfm(),
            Self::bookcrossing(),
        ]
    }

    /// Looks a dataset up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        Self::all()
            .into_iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
    }

    /// Walmart (Fig 6 row 1): predict department-wise sales levels.
    /// Signal lives in `Dept` plus hidden store/indicator identity —
    /// both joins are safe to avoid; dropping FKs is catastrophic.
    pub fn walmart() -> DatasetSpec {
        DatasetSpec {
            name: "Walmart",
            n_classes: 7,
            n_s: 421_570,
            target: "SalesLevel",
            entity_features: vec![FeatureSpec::new("Dept", 81)],
            entity_weights: vec![(0, 1.0)],
            tables: vec![
                AttrTableSpec {
                    table: "Indicators",
                    fk: "IndicatorID",
                    n_rows: 2_340,
                    features: vec![
                        FeatureSpec::new("TempAvg", 16),
                        FeatureSpec::new("TempStdev", 16),
                        FeatureSpec::new("CPIAvg", 16),
                        FeatureSpec::new("CPIStdev", 16),
                        FeatureSpec::new("FuelPriceAvg", 16),
                        FeatureSpec::new("FuelPriceStdev", 16),
                        FeatureSpec::new("UnempRateAvg", 16),
                        FeatureSpec::new("UnempRateStdev", 16),
                        FeatureSpec::new("IsHoliday", 2),
                    ],
                    closed: true,
                    hidden_weight: 0.8,
                    visible_weights: vec![],
                    safe_to_avoid_in_hindsight: true,
                },
                AttrTableSpec {
                    table: "Stores",
                    fk: "StoreID",
                    n_rows: 45,
                    features: vec![FeatureSpec::new("Type", 4), FeatureSpec::new("Size", 10)],
                    closed: true,
                    hidden_weight: 0.8,
                    visible_weights: vec![],
                    safe_to_avoid_in_hindsight: true,
                },
            ],
            noise: 0.8,
        }
    }

    /// Expedia (row 2): predict high hotel rank. Hotel signal is mostly
    /// hotel identity (HotelID-representable, join avoidable); search
    /// features matter but `SearchID` has an open domain, so that join is
    /// mandatory.
    pub fn expedia() -> DatasetSpec {
        DatasetSpec {
            name: "Expedia",
            n_classes: 2,
            n_s: 942_142,
            target: "Position",
            entity_features: vec![
                FeatureSpec::new("Score1", 16),
                FeatureSpec::new("Score2", 16),
                FeatureSpec::new("LogHistoricalPrice", 16),
                FeatureSpec::new("PriceUSD", 16),
                FeatureSpec::new("PromoFlag", 2),
                FeatureSpec::new("OrigDestDistance", 16),
            ],
            entity_weights: vec![(1, 0.8)],
            tables: vec![
                AttrTableSpec {
                    table: "Hotels",
                    fk: "HotelID",
                    n_rows: 11_939,
                    features: vec![
                        FeatureSpec::new("Country", 150),
                        FeatureSpec::new("Stars", 5),
                        FeatureSpec::new("ReviewScore", 16),
                        FeatureSpec::new("BookingUSDAvg", 16),
                        FeatureSpec::new("BookingUSDStdev", 16),
                        FeatureSpec::new("BookingCount", 16),
                        FeatureSpec::new("BrandBool", 2),
                        FeatureSpec::new("ClickCount", 16),
                    ],
                    closed: true,
                    hidden_weight: 0.7,
                    visible_weights: vec![(1, 0.4)],
                    safe_to_avoid_in_hindsight: true,
                },
                AttrTableSpec {
                    table: "Searches",
                    fk: "SearchID",
                    n_rows: 37_021,
                    features: vec![
                        FeatureSpec::new("Year", 3),
                        FeatureSpec::new("Month", 12),
                        FeatureSpec::new("WeekOfYear", 52),
                        FeatureSpec::new("TimeOfDay", 24),
                        FeatureSpec::new("VisitorCountry", 150),
                        FeatureSpec::new("SearchDest", 100),
                        FeatureSpec::new("LengthOfStay", 16),
                        FeatureSpec::new("ChildrenCount", 5),
                        FeatureSpec::new("AdultsCount", 5),
                        FeatureSpec::new("RoomCount", 4),
                        FeatureSpec::new("SiteID", 20),
                        FeatureSpec::new("BookingWindow", 16),
                        FeatureSpec::new("SatNightBool", 2),
                        FeatureSpec::new("RandomBool", 2),
                    ],
                    closed: false, // SearchID's domain is open (Sec 5)
                    hidden_weight: 0.0,
                    visible_weights: vec![(13, 0.6), (11, 0.4), (0, 0.3)],
                    safe_to_avoid_in_hindsight: false,
                },
            ],
            noise: 0.9,
        }
    }

    /// Flights (row 3): predict codeshare. Signal lives in airline
    /// features (AirlineID-representable) and entity equipment flags;
    /// airport features carry only a weak signal, so all three joins are
    /// avoidable in hindsight — but the rules conservatively keep the two
    /// airport joins (the paper's missed opportunities).
    pub fn flights() -> DatasetSpec {
        let airport_features = |prefix: &'static str| {
            vec![
                FeatureSpec::new(leak(format!("{prefix}City")), 2_000),
                FeatureSpec::new(leak(format!("{prefix}Country")), 200),
                FeatureSpec::new(leak(format!("{prefix}DST")), 7),
                FeatureSpec::new(leak(format!("{prefix}TimeZone")), 25),
                FeatureSpec::new(leak(format!("{prefix}Longitude")), 16),
                FeatureSpec::new(leak(format!("{prefix}Latitude")), 16),
            ]
        };
        DatasetSpec {
            name: "Flights",
            n_classes: 2,
            n_s: 66_548,
            target: "CodeShare",
            entity_features: (1..=20)
                .map(|i| FeatureSpec::new(leak(format!("Equipment{i}")), 2))
                .collect(),
            entity_weights: vec![(0, 0.5), (1, 0.4)],
            tables: vec![
                AttrTableSpec {
                    table: "Airlines",
                    fk: "AirlineID",
                    n_rows: 540,
                    features: vec![
                        FeatureSpec::new("AirCountry", 100),
                        FeatureSpec::new("Active", 2),
                        FeatureSpec::new("NameWords", 8),
                        FeatureSpec::new("NameHasAir", 2),
                        FeatureSpec::new("NameHasAirlines", 2),
                    ],
                    closed: true,
                    hidden_weight: 0.0,
                    visible_weights: vec![(1, 0.8), (0, 0.4)],
                    safe_to_avoid_in_hindsight: true,
                },
                AttrTableSpec {
                    table: "SrcAirports",
                    fk: "SrcAirportID",
                    n_rows: 3_182,
                    features: airport_features("Src"),
                    closed: true,
                    hidden_weight: 0.0,
                    visible_weights: vec![(1, 0.15)],
                    safe_to_avoid_in_hindsight: true,
                },
                AttrTableSpec {
                    table: "DestAirports",
                    fk: "DestAirportID",
                    n_rows: 3_182,
                    features: airport_features("Dest"),
                    closed: true,
                    hidden_weight: 0.0,
                    visible_weights: vec![(1, 0.15)],
                    safe_to_avoid_in_hindsight: true,
                },
            ],
            noise: 0.9,
        }
    }

    /// Yelp (row 4): predict business ratings. Strong *visible* user and
    /// business quality signals with small tuple ratios: neither join is
    /// safe to avoid — avoiding either blows up the error (Fig 8A).
    pub fn yelp() -> DatasetSpec {
        let mut business_features = vec![
            FeatureSpec::new("BusinessStars", 9),
            FeatureSpec::new("BusinessReviewCount", 16),
            FeatureSpec::new("Latitude", 16),
            FeatureSpec::new("Longitude", 16),
            FeatureSpec::new("City", 300),
            FeatureSpec::new("State", 30),
        ];
        for i in 1..=5 {
            business_features.push(FeatureSpec::new(leak(format!("WeekdayCheckins{i}")), 8));
        }
        for i in 1..=5 {
            business_features.push(FeatureSpec::new(leak(format!("WeekendCheckins{i}")), 8));
        }
        for i in 1..=15 {
            business_features.push(FeatureSpec::new(leak(format!("Category{i}")), 30));
        }
        business_features.push(FeatureSpec::new("IsOpen", 2));
        DatasetSpec {
            name: "Yelp",
            n_classes: 5,
            n_s: 215_879,
            target: "Stars",
            entity_features: vec![],
            entity_weights: vec![],
            tables: vec![
                AttrTableSpec {
                    table: "Businesses",
                    fk: "BusinessID",
                    n_rows: 11_537,
                    features: business_features,
                    closed: true,
                    hidden_weight: 0.3,
                    visible_weights: vec![(0, 1.0)],
                    safe_to_avoid_in_hindsight: false,
                },
                AttrTableSpec {
                    table: "Users",
                    fk: "UserID",
                    n_rows: 43_873,
                    features: vec![
                        FeatureSpec::new("Gender", 2),
                        FeatureSpec::new("UserStars", 9),
                        FeatureSpec::new("UserReviewCount", 16),
                        FeatureSpec::new("VotesUseful", 16),
                        FeatureSpec::new("VotesFunny", 16),
                        FeatureSpec::new("VotesCool", 16),
                    ],
                    closed: true,
                    hidden_weight: 0.3,
                    visible_weights: vec![(1, 1.0)],
                    safe_to_avoid_in_hindsight: false,
                },
            ],
            noise: 0.8,
        }
    }

    /// MovieLens1M (row 5): predict movie ratings. Signal is almost
    /// entirely user/movie identity (hidden latents): both joins are safe
    /// to avoid; dropping FKs is catastrophic.
    pub fn movielens() -> DatasetSpec {
        let mut movie_features = vec![
            FeatureSpec::new("NameWords", 12),
            FeatureSpec::new("NameHasParentheses", 2),
            FeatureSpec::new("Year", 10),
        ];
        for i in 1..=18 {
            movie_features.push(FeatureSpec::new(leak(format!("Genre{i}")), 2));
        }
        DatasetSpec {
            name: "MovieLens1M",
            n_classes: 5,
            n_s: 1_000_209,
            target: "Stars",
            entity_features: vec![],
            entity_weights: vec![],
            tables: vec![
                AttrTableSpec {
                    table: "Movies",
                    fk: "MovieID",
                    n_rows: 3_706,
                    features: movie_features,
                    closed: true,
                    hidden_weight: 0.8,
                    visible_weights: vec![(3, 0.15)],
                    safe_to_avoid_in_hindsight: true,
                },
                AttrTableSpec {
                    table: "Users",
                    fk: "UserID",
                    n_rows: 6_040,
                    features: vec![
                        FeatureSpec::new("Gender", 2),
                        FeatureSpec::new("Age", 7),
                        FeatureSpec::new("Zipcode", 500),
                        FeatureSpec::new("Occupation", 21),
                    ],
                    closed: true,
                    hidden_weight: 0.8,
                    visible_weights: vec![],
                    safe_to_avoid_in_hindsight: true,
                },
            ],
            noise: 0.8,
        }
    }

    /// LastFM (row 6): predict play levels. All signal is user identity:
    /// the artists join is avoidable (and predicted so); the users join
    /// is avoidable in hindsight too — since the signal *is* `UserID` —
    /// but its tuple ratio is tiny, so the conservative rules keep it
    /// (the paper's missed opportunity).
    pub fn lastfm() -> DatasetSpec {
        let mut artist_features = vec![
            FeatureSpec::new("Listens", 32),
            FeatureSpec::new("Scrobbles", 32),
        ];
        for i in 1..=5 {
            artist_features.push(FeatureSpec::new(leak(format!("Genre{i}")), 30));
        }
        DatasetSpec {
            name: "LastFM",
            n_classes: 5,
            n_s: 343_747,
            target: "PlayLevel",
            entity_features: vec![],
            entity_weights: vec![],
            tables: vec![
                AttrTableSpec {
                    table: "Artists",
                    fk: "ArtistID",
                    n_rows: 4_999,
                    features: artist_features,
                    closed: true,
                    hidden_weight: 0.0,
                    visible_weights: vec![],
                    safe_to_avoid_in_hindsight: true,
                },
                AttrTableSpec {
                    table: "Users",
                    fk: "UserID",
                    n_rows: 50_000,
                    features: vec![
                        FeatureSpec::new("Gender", 2),
                        FeatureSpec::new("Age", 7),
                        FeatureSpec::new("Country", 100),
                        FeatureSpec::new("JoinYear", 10),
                    ],
                    closed: true,
                    hidden_weight: 1.0,
                    visible_weights: vec![],
                    safe_to_avoid_in_hindsight: true,
                },
            ],
            noise: 0.7,
        }
    }

    /// BookCrossing (row 7): predict book ratings. Strong visible reader
    /// demographics at a tiny tuple ratio: the users join is genuinely
    /// unsafe to avoid; book features are useless, so that join is
    /// avoidable in hindsight (missed opportunity for the rules).
    pub fn bookcrossing() -> DatasetSpec {
        DatasetSpec {
            name: "BookCrossing",
            n_classes: 5,
            n_s: 253_120,
            target: "Stars",
            entity_features: vec![],
            entity_weights: vec![],
            tables: vec![
                AttrTableSpec {
                    table: "Users",
                    fk: "UserID",
                    n_rows: 49_972,
                    features: vec![FeatureSpec::new("Age", 10), FeatureSpec::new("Country", 60)],
                    closed: true,
                    hidden_weight: 0.25,
                    visible_weights: vec![(0, 0.8), (1, 0.5)],
                    safe_to_avoid_in_hindsight: false,
                },
                AttrTableSpec {
                    table: "Books",
                    fk: "BookID",
                    n_rows: 27_876,
                    features: vec![
                        FeatureSpec::new("Year", 12),
                        FeatureSpec::new("Publisher", 300),
                        FeatureSpec::new("NumTitleWords", 12),
                        FeatureSpec::new("NumAuthorWords", 6),
                    ],
                    closed: true,
                    hidden_weight: 0.0,
                    visible_weights: vec![],
                    safe_to_avoid_in_hindsight: true,
                },
            ],
            noise: 0.8,
        }
    }

    /// Scaled row counts: `n_S` and every `n_Ri` are shrunk **jointly**
    /// so the tuple ratios (and, to first order, the RORs) are preserved
    /// — see DESIGN.md §3.
    pub fn scaled_n_s(&self, scale: f64) -> usize {
        scale_rows(self.n_s, scale)
    }

    /// Scaled attribute-table row count for table `i`.
    pub fn scaled_n_r(&self, i: usize, scale: f64) -> usize {
        scale_rows(self.tables[i].n_rows, scale)
    }

    /// Total standard deviation of the concept score.
    fn score_sigma(&self) -> f64 {
        let mut var = self.noise * self.noise;
        for &(_, w) in &self.entity_weights {
            var += w * w;
        }
        for t in &self.tables {
            var += t.hidden_weight * t.hidden_weight;
            for &(_, w) in &t.visible_weights {
                var += w * w;
            }
        }
        var.sqrt()
    }

    /// Generates the dataset at the given scale. Deterministic in
    /// `seed`. Scales above 1 grow the star past the paper's full size
    /// — the out-of-core stress regime where the dense working set can
    /// exceed a configured `HAMLET_MEM_BUDGET_MB`.
    ///
    /// # Panics
    /// Panics if `scale` is not in `(0, 100]`.
    pub fn generate(&self, scale: f64, seed: u64) -> GeneratedDataset {
        assert!(scale > 0.0 && scale <= 100.0, "scale must be in (0, 100]");
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(self.name));

        let n_s = self.scaled_n_s(scale);

        // Attribute tables: codes + hidden latents + visible values.
        let mut attr_tables = Vec::with_capacity(self.tables.len());
        let mut hidden: Vec<Vec<f64>> = Vec::with_capacity(self.tables.len());
        let mut visible_vals: Vec<Vec<Vec<f64>>> = Vec::with_capacity(self.tables.len());
        for (ti, t) in self.tables.iter().enumerate() {
            let n_r = self.scaled_n_r(ti, scale);
            let rid_domain = Domain::indexed(t.fk, n_r).shared();
            let mut builder =
                TableBuilder::new(t.table).primary_key(t.fk, rid_domain, (0..n_r as u32).collect());
            let mut table_visible = vec![Vec::new(); t.features.len()];
            for (fi, f) in t.features.iter().enumerate() {
                let codes: Vec<u32> = (0..n_r)
                    .map(|_| rng.gen_range(0..f.domain as u32))
                    .collect();
                if t.visible_weights.iter().any(|&(i, _)| i == fi) {
                    table_visible[fi] = codes.iter().map(|&c| unit_value(c, f.domain)).collect();
                }
                builder =
                    builder.feature(f.name, Domain::indexed(f.name, f.domain).shared(), codes);
            }
            hidden.push((0..n_r).map(|_| standard_normal(&mut rng)).collect());
            visible_vals.push(table_visible);
            attr_tables.push(AttributeTable {
                fk: t.fk.to_string(),
                table: builder.build().expect("generated attribute table is valid"),
            });
        }

        // Entity table.
        let mut entity_codes: Vec<Vec<u32>> = self
            .entity_features
            .iter()
            .map(|f| {
                (0..n_s)
                    .map(|_| rng.gen_range(0..f.domain as u32))
                    .collect()
            })
            .collect();
        let fk_codes: Vec<Vec<u32>> = (0..self.tables.len())
            .map(|ti| {
                let n_r = attr_tables[ti].table.n_rows();
                (0..n_s).map(|_| rng.gen_range(0..n_r as u32)).collect()
            })
            .collect();

        // Concept score -> equal-mass ordinal classes.
        let sigma = self.score_sigma();
        let thresholds: Vec<f64> = (1..self.n_classes)
            .map(|k| sigma * normal_quantile(k as f64 / self.n_classes as f64))
            .collect();
        let mut labels = Vec::with_capacity(n_s);
        for row in 0..n_s {
            let mut score = self.noise * standard_normal(&mut rng);
            for &(fi, w) in &self.entity_weights {
                score += w * unit_value(entity_codes[fi][row], self.entity_features[fi].domain);
            }
            for (ti, t) in self.tables.iter().enumerate() {
                let rid = fk_codes[ti][row] as usize;
                score += t.hidden_weight * hidden[ti][rid];
                for &(fi, w) in &t.visible_weights {
                    score += w * visible_vals[ti][fi][rid];
                }
            }
            let class = thresholds.iter().filter(|&&th| score > th).count() as u32;
            labels.push(class);
        }

        let mut builder = TableBuilder::new(self.name).target(
            self.target,
            Domain::indexed(self.target, self.n_classes).shared(),
            labels,
        );
        for (fi, f) in self.entity_features.iter().enumerate() {
            builder = builder.feature(
                f.name,
                Domain::indexed(f.name, f.domain).shared(),
                std::mem::take(&mut entity_codes[fi]),
            );
        }
        for (ti, t) in self.tables.iter().enumerate() {
            let n_r = attr_tables[ti].table.n_rows();
            let def = if t.closed {
                AttributeDef::foreign_key(t.fk, t.table)
            } else {
                AttributeDef::open_foreign_key(t.fk, t.table)
            };
            builder = builder.column(
                def,
                Domain::indexed(t.fk, n_r).shared(),
                fk_codes[ti].clone(),
            );
        }
        let entity = builder.build().expect("generated entity table is valid");
        let star = StarSchema::new(entity, attr_tables).expect("generated star schema is valid");

        GeneratedDataset {
            star,
            spec: self.clone(),
            scale,
        }
    }
}

/// Scales a row count, keeping at least a handful of rows.
fn scale_rows(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(4)
}

/// Maps a uniform code over `0..domain` to a zero-mean, unit-variance
/// value; monotone in the code so simple classifiers can pick it up.
fn unit_value(code: u32, domain: usize) -> f64 {
    if domain <= 1 {
        return 0.0;
    }
    let d = domain as f64;
    let mean = (d - 1.0) / 2.0;
    let sd = ((d * d - 1.0) / 12.0).sqrt();
    (code as f64 - mean) / sd
}

/// Box–Muller standard normal (rand 0.8 core has no normal sampler).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Stable per-dataset seed component.
fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Interns a generated feature name as a `&'static str`. The name set is
/// small and fixed (the paper's schemas), but `DatasetSpec::all()` runs
/// once per CLI invocation and thousands of times in bench loops — a
/// naive `Box::leak` per call would grow memory without bound, so leaked
/// strings are cached and reused.
fn leak(s: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = set.lock().expect("interner lock never poisoned");
    if let Some(&existing) = set.get(s.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    set.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shape_statistics_match() {
        // (#Y, n_S, d_S, k, k', [(n_Ri, d_Ri)])
        type Row = (
            &'static str,
            usize,
            usize,
            usize,
            usize,
            usize,
            Vec<(usize, usize)>,
        );
        let expected: Vec<Row> = vec![
            ("Walmart", 7, 421_570, 1, 2, 2, vec![(2_340, 9), (45, 2)]),
            (
                "Expedia",
                2,
                942_142,
                6,
                2,
                1,
                vec![(11_939, 8), (37_021, 14)],
            ),
            (
                "Flights",
                2,
                66_548,
                20,
                3,
                3,
                vec![(540, 5), (3_182, 6), (3_182, 6)],
            ),
            ("Yelp", 5, 215_879, 0, 2, 2, vec![(11_537, 32), (43_873, 6)]),
            (
                "MovieLens1M",
                5,
                1_000_209,
                0,
                2,
                2,
                vec![(3_706, 21), (6_040, 4)],
            ),
            ("LastFM", 5, 343_747, 0, 2, 2, vec![(4_999, 7), (50_000, 4)]),
            (
                "BookCrossing",
                5,
                253_120,
                0,
                2,
                2,
                vec![(49_972, 2), (27_876, 4)],
            ),
        ];
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 7);
        for (spec, (name, ny, ns, ds, k, kc, tables)) in all.iter().zip(expected) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.n_classes, ny, "{name} #Y");
            assert_eq!(spec.n_s, ns, "{name} n_S");
            assert_eq!(spec.entity_features.len(), ds, "{name} d_S");
            assert_eq!(spec.tables.len(), k, "{name} k");
            assert_eq!(
                spec.tables.iter().filter(|t| t.closed).count(),
                kc,
                "{name} k'"
            );
            for (t, (nr, dr)) in spec.tables.iter().zip(tables) {
                assert_eq!(t.n_rows, nr, "{name}/{} n_R", t.table);
                assert_eq!(t.features.len(), dr, "{name}/{} d_R", t.table);
            }
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(DatasetSpec::by_name("yelp").is_some());
        assert!(DatasetSpec::by_name("Walmart").is_some());
        assert!(DatasetSpec::by_name("nope").is_none());
    }

    #[test]
    fn generation_is_valid_and_scaled() {
        let spec = DatasetSpec::walmart();
        let g = spec.generate(0.01, 42);
        let n_s = spec.scaled_n_s(0.01);
        assert_eq!(g.star.n_s(), n_s);
        assert_eq!(g.star.k(), 2);
        assert_eq!(g.star.attributes()[0].n_rows(), spec.scaled_n_r(0, 0.01));
        // Tuple ratios preserved within rounding.
        let tr_full = spec.n_s as f64 / spec.tables[0].n_rows as f64;
        let tr_scaled = g.star.n_s() as f64 / g.star.attributes()[0].n_rows() as f64;
        assert!((tr_full - tr_scaled).abs() / tr_full < 0.05);
        // Materializable.
        let t = g.star.materialize_all().unwrap();
        assert_eq!(t.n_rows(), n_s);
    }

    #[test]
    fn open_fk_flag_propagates() {
        let g = DatasetSpec::expedia().generate(0.005, 1);
        assert!(g.star.fk_closed(0), "HotelID should be closed");
        assert!(!g.star.fk_closed(1), "SearchID should be open");
        assert_eq!(g.star.k_closed(), 1);
    }

    #[test]
    fn labels_are_roughly_balanced() {
        // Equal-mass bucketing should produce near-uniform classes.
        let g = DatasetSpec::yelp().generate(0.02, 7);
        let hist = g.star.entity().target_column().unwrap().histogram();
        let n: u64 = hist.iter().sum();
        for (c, &h) in hist.iter().enumerate() {
            let frac = h as f64 / n as f64;
            assert!(
                (frac - 0.2).abs() < 0.05,
                "class {c} fraction {frac} far from 0.2"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = DatasetSpec::flights().generate(0.01, 9);
        let b = DatasetSpec::flights().generate(0.01, 9);
        assert_eq!(
            a.star.entity().target_column().unwrap().codes(),
            b.star.entity().target_column().unwrap().codes()
        );
        let c = DatasetSpec::flights().generate(0.01, 10);
        assert_ne!(
            a.star.entity().target_column().unwrap().codes(),
            c.star.entity().target_column().unwrap().codes()
        );
    }

    #[test]
    fn visible_signal_is_learnable() {
        // Yelp plants BusinessStars with weight 1.0: the label must
        // correlate with the joined feature.
        let g = DatasetSpec::yelp().generate(0.02, 3);
        let t = g.star.materialize_all().unwrap();
        let stars = t.column_by_name("BusinessStars").unwrap();
        let y = t.column_by_name("Stars").unwrap();
        let xs: Vec<f64> = stars.codes().iter().map(|&c| c as f64).collect();
        let ys: Vec<f64> = y.codes().iter().map(|&c| c as f64).collect();
        let r = crate::stats::pearson(&xs, &ys);
        assert!(r > 0.3, "planted visible signal too weak: r = {r}");
    }

    #[test]
    fn hidden_signal_reaches_label() {
        // MovieLens: per-user hidden latent must influence the label —
        // users' mean labels should vary much more than chance.
        let g = DatasetSpec::movielens().generate(0.01, 5);
        let ent = g.star.entity();
        let fk = ent.column_by_name("UserID").unwrap();
        let y = ent.column_by_name("Stars").unwrap();
        let n_r = g.star.attributes()[1].n_rows();
        let mut sums = vec![0f64; n_r];
        let mut counts = vec![0usize; n_r];
        for i in 0..ent.n_rows() {
            sums[fk.get(i) as usize] += y.get(i) as f64;
            counts[fk.get(i) as usize] += 1;
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .filter(|&(_, &c)| c >= 20)
            .map(|(&s, &c)| s / c as f64)
            .collect();
        assert!(means.len() > 10, "need enough well-observed users");
        let grand = crate::stats::mean(&means);
        let var = means.iter().map(|m| (m - grand).powi(2)).sum::<f64>() / means.len() as f64;
        assert!(var > 0.1, "per-user label means barely vary: var = {var}");
    }

    #[test]
    fn unit_value_is_normalized() {
        // Mean ~0 and variance ~1 over the domain.
        for d in [2usize, 5, 16, 101] {
            let vals: Vec<f64> = (0..d as u32).map(|c| unit_value(c, d)).collect();
            let m = crate::stats::mean(&vals);
            let v = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / d as f64;
            assert!(m.abs() < 1e-9, "mean {m} for d={d}");
            assert!((v - 1.0).abs() < 1e-9, "var {v} for d={d}");
        }
        assert_eq!(unit_value(0, 1), 0.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let m = crate::stats::mean(&xs);
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "variance {v}");
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 100]")]
    fn bad_scale_panics() {
        DatasetSpec::walmart().generate(0.0, 1);
    }
}
