//! Small statistical helpers for data synthesis and experiment reporting.

/// Standard normal inverse CDF (quantile function), Acklam's rational
/// approximation (relative error < 1.15e-9 over (0, 1)).
///
/// Used to cut a (approximately) Gaussian concept score into equal-mass
/// ordinal classes.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal CDF via `erf` (Abramowitz–Stegun 7.1.26 polynomial,
/// |error| < 1.5e-7) — used to derive exact class-conditional
/// probabilities of threshold concepts.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t) * (-x * x).exp();
    sign * y
}

/// Pearson correlation coefficient between two equal-length samples.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Mean of a sample (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_median_is_zero() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_known_values() {
        // z_{0.975} = 1.959964...
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        // z_{0.8413} ~ 1.0
        assert!((normal_quantile(0.841344746) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_tails() {
        assert!((normal_quantile(1e-6) + 4.7534).abs() < 1e-3);
        assert!(normal_quantile(0.999999) > 4.7);
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn cdf_and_quantile_are_inverses() {
        for &p in &[0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p={p}");
        }
    }

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.0) - 0.841344746).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158655254).abs() < 1e-5);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_independent_is_small() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 0.5);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
