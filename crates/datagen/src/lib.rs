//! # hamlet-datagen
//!
//! Synthetic data for the SIGMOD 2016 "To Join or Not to Join?"
//! reproduction:
//!
//! * [`sim`] — the Monte-Carlo simulation worlds of Sec 4.1 and appendix
//!   D (three true-distribution scenarios over a two-table star schema,
//!   with exact per-row conditionals for the bias/variance decomposition);
//! * [`skew`] — foreign-key skew models: uniform, benign Zipf, and the
//!   malign needle-and-thread distribution (appendix D);
//! * [`realistic`] — synthetic analogs of the paper's seven real datasets
//!   with the exact Figure 6 shape statistics and planted ground truth
//!   (see DESIGN.md §3 for the substitution argument);
//! * [`stats`] — normal quantile/CDF, Pearson correlation, and friends.

pub mod builder;
pub mod realistic;
pub mod sim;
pub mod skew;
pub mod stats;

pub use builder::{AttrTableBuilder, SyntheticStarBuilder};
pub use realistic::{AttrTableSpec, DatasetSpec, FeatureSpec, GeneratedDataset};
pub use sim::{Scenario, SimSample, SimWorld, SimulationConfig};
pub use skew::{FkSampler, FkSkew};
