//! Durable file writes: tmp file + fsync + rename + directory fsync.
//!
//! Result files and the run journal are evidence; a torn write (partial
//! line after a crash or full disk) silently corrupts later analysis.
//! Every write in the workspace that produces evidence goes through
//! [`atomic_write`] / [`atomic_append`]: readers observe either the old
//! content or the new content, never a prefix of the new one.
//!
//! Both helpers carry the `obs.atomic_write` failpoint (fired after the
//! tmp file is written, before the rename) so chaos tests can prove the
//! destination survives a mid-write failure intact.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Directory `path` lives in (`"."` for bare file names).
fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// A tmp-file sibling unique to this process and call (concurrent
/// writers to the same destination must not share a tmp file).
fn tmp_sibling(path: &Path) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    parent_dir(path).join(format!(".{name}.tmp.{}.{seq}", std::process::id()))
}

/// Runs `op` and, if it fails with an `EINTR`/`EAGAIN`-class error
/// (`Interrupted`/`WouldBlock` — a signal landing mid-syscall, not a
/// real write failure), retries exactly once. Anything else, including
/// injected failpoint errors, propagates immediately so chaos runs keep
/// observing their first fault.
fn retry_interrupted<T>(site: &str, op: impl Fn() -> std::io::Result<T>) -> std::io::Result<T> {
    use std::io::ErrorKind::{Interrupted, WouldBlock};
    match op() {
        Err(e) if matches!(e.kind(), Interrupted | WouldBlock) => {
            crate::counter_add!("hamlet_fsio_transient_retries_total", 1);
            crate::journal::record_warning(format!("{site}: transient {e}; retrying once"));
            op()
        }
        r => r,
    }
}

/// Replaces `path` with `bytes` atomically: the content is written to a
/// tmp sibling, fsynced, renamed over `path`, and the directory entry
/// is fsynced. Creates parent directories as needed. A transient
/// `EINTR`/`EAGAIN` gets one bounded retry of the whole tmp-write +
/// rename sequence. On any error the destination is untouched (the tmp
/// file is cleaned up best-effort).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = parent_dir(path);
    fs::create_dir_all(&dir)?;
    let tmp = tmp_sibling(path);
    let result = retry_interrupted("obs.atomic_write", || {
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        // The chaos site sits between tmp-write and rename: an injected
        // failure here models a crash mid-write, which must leave the
        // destination intact.
        hamlet_chaos::fail_at!("obs.atomic_write")?;
        fs::rename(&tmp, path)?;
        // fsync the directory so the rename itself survives power loss.
        #[cfg(unix)]
        fs::File::open(&dir)?.sync_all()?;
        Ok(())
    });
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Appends `text` to `path` with atomic-replace semantics: the existing
/// content (if any) plus the new text is written via [`atomic_write`].
/// O(file size) per call — meant for journals and small result files,
/// not bulk logs. A failure leaves the previous content intact.
pub fn atomic_append(path: &Path, text: &str) -> std::io::Result<()> {
    let mut content = match fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    content.push_str(text);
    atomic_write(path, content.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hamlet_chaos::failpoint;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hamlet_obs_fsio_test");
        let _ = fs::create_dir_all(&dir);
        dir.join(name)
    }

    #[test]
    fn write_then_read_back() {
        let p = scratch("a.txt");
        atomic_write(&p, b"hello").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "hello");
        atomic_write(&p, b"replaced").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "replaced");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn creates_missing_directories() {
        let p = scratch("nested/deeper/b.txt");
        let _ = fs::remove_dir_all(scratch("nested"));
        atomic_write(&p, b"x").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "x");
        fs::remove_dir_all(scratch("nested")).ok();
    }

    #[test]
    fn append_accumulates_lines() {
        let p = scratch("c.jsonl");
        let _ = fs::remove_file(&p);
        atomic_append(&p, "one\n").unwrap();
        atomic_append(&p, "two\n").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "one\ntwo\n");
        fs::remove_file(&p).ok();
    }

    #[test]
    fn interrupted_write_retries_once_then_propagates() {
        use std::cell::Cell;
        use std::io::{Error, ErrorKind};
        // One EINTR, then success: the retry absorbs it.
        let calls = Cell::new(0u32);
        let r = retry_interrupted("test.fsio", || {
            calls.set(calls.get() + 1);
            if calls.get() == 1 {
                Err(Error::new(ErrorKind::Interrupted, "EINTR"))
            } else {
                Ok(calls.get())
            }
        });
        assert_eq!(r.unwrap(), 2);
        // Persistent EINTR: exactly one retry, then the error surfaces.
        let calls = Cell::new(0u32);
        let r: std::io::Result<()> = retry_interrupted("test.fsio", || {
            calls.set(calls.get() + 1);
            Err(Error::new(ErrorKind::WouldBlock, "EAGAIN"))
        });
        assert!(r.is_err());
        assert_eq!(calls.get(), 2, "retry must be bounded to one");
        // Non-transient errors are never retried.
        let calls = Cell::new(0u32);
        let r: std::io::Result<()> = retry_interrupted("test.fsio", || {
            calls.set(calls.get() + 1);
            Err(Error::other("injected IO failure"))
        });
        assert!(r.is_err());
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn injected_failure_leaves_destination_intact() {
        let _g = failpoint::serial();
        let p = scratch("torn.jsonl");
        let _ = fs::remove_file(&p);
        atomic_append(&p, "{\"ok\":1}\n").unwrap();
        failpoint::set_failpoints("obs.atomic_write=io").unwrap();
        let err = atomic_append(&p, "{\"ok\":2}\n").unwrap_err();
        failpoint::clear_failpoints();
        assert!(err.to_string().contains("injected IO failure"), "{err}");
        // The old content survives whole; no tmp litter remains.
        assert_eq!(fs::read_to_string(&p).unwrap(), "{\"ok\":1}\n");
        let litter: Vec<_> = fs::read_dir(parent_dir(&p))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("torn.jsonl.tmp"))
            .collect();
        assert!(litter.is_empty(), "tmp files left behind: {litter:?}");
        fs::remove_file(&p).ok();
    }
}
