//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Artifact loads and registry hot-reloads race external writers: a
//! deployer may still be renaming the new model file, or an NFS mount
//! may return a transient error for one read. A [`RetryPolicy`] turns
//! those races into a short, *bounded* wait instead of a hard failure,
//! while leaving permanent faults (corrupt payloads, bad checksums)
//! untouched — the caller decides which errors are transient via the
//! predicate passed to [`RetryPolicy::run_if`].
//!
//! Backoff doubles per attempt from `base_delay` up to `max_delay`;
//! "equal jitter" keeps at least half of each delay and randomizes the
//! rest. The jitter source is a deterministic hash of the site name and
//! attempt number (this workspace forbids nondeterminism on any path
//! that can influence results), so a given site always sleeps the same
//! schedule — it decorrelates *across* sites, not across runs.
//!
//! Knobs (resolved loudly, like `HAMLET_THREADS`):
//!
//! * `HAMLET_RETRY_ATTEMPTS` — total attempts, >= 1 (default 3;
//!   1 disables retrying);
//! * `HAMLET_RETRY_BASE_MS` — first backoff delay (default 25 ms);
//! * `HAMLET_RETRY_MAX_MS` — backoff ceiling (default 1000 ms).
//!
//! Every performed retry bumps `hamlet_retry_attempts_total` and lands
//! a run-journal warning naming the site and the error being retried.

use std::time::Duration;

/// A bounded exponential-backoff retry schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); `1` means no retries.
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_delay: Duration,
    /// Ceiling on any single backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_millis(1000),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (exactly one attempt).
    pub fn none() -> Self {
        Self {
            attempts: 1,
            ..Self::default()
        }
    }

    /// Resolves the policy from `HAMLET_RETRY_*`, starting from the
    /// defaults. Invalid values are reported loudly (stderr + run
    /// journal) and the default keeps serving — a bad retry knob must
    /// not take down a server that was asked to be resilient.
    pub fn resolve() -> Self {
        let mut policy = Self::default();
        match crate::env::var_where("HAMLET_RETRY_ATTEMPTS", "an integer >= 1", |&n: &u32| {
            n >= 1
        }) {
            Ok(Some(n)) => policy.attempts = n,
            Ok(None) => {}
            Err(e) => crate::journal::record_warning(format!("{e}; using default attempts")),
        }
        match crate::env::var_where("HAMLET_RETRY_BASE_MS", "an integer >= 1", |&n: &u64| n >= 1) {
            Ok(Some(ms)) => policy.base_delay = Duration::from_millis(ms),
            Ok(None) => {}
            Err(e) => crate::journal::record_warning(format!("{e}; using default base delay")),
        }
        match crate::env::var_where("HAMLET_RETRY_MAX_MS", "an integer >= 1", |&n: &u64| n >= 1) {
            Ok(Some(ms)) => policy.max_delay = Duration::from_millis(ms),
            Ok(None) => {}
            Err(e) => crate::journal::record_warning(format!("{e}; using default max delay")),
        }
        policy
    }

    /// Backoff before attempt `attempt + 1` (0-based failed attempt):
    /// exponential from `base_delay` capped at `max_delay`, with equal
    /// jitter from a deterministic per-(site, attempt) hash.
    pub fn delay(&self, site: &str, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let half = exp / 2;
        // splitmix64 over an FNV-1a seed of (site, attempt): cheap,
        // deterministic, well-mixed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in site.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = (h ^ attempt as u64).wrapping_mul(0x0000_0100_0000_01b3);
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        half + Duration::from_secs_f64(half.as_secs_f64() * frac)
    }

    /// Runs `op` up to [`RetryPolicy::attempts`] times, sleeping the
    /// backoff schedule between attempts, but only while `transient`
    /// holds for the error — a permanent fault (corrupt payload, bad
    /// checksum) returns immediately. The final error is returned
    /// unchanged.
    pub fn run_if<T, E: std::fmt::Display>(
        &self,
        site: &str,
        mut op: impl FnMut() -> Result<T, E>,
        transient: impl Fn(&E) -> bool,
    ) -> Result<T, E> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt + 1 < self.attempts.max(1) && transient(&e) => {
                    let delay = self.delay(site, attempt);
                    crate::counter_add!("hamlet_retry_attempts_total", 1);
                    crate::journal::record_warning(format!(
                        "{site}: transient failure (attempt {} of {}), retrying in {} ms: {e}",
                        attempt + 1,
                        self.attempts,
                        delay.as_millis()
                    ));
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`RetryPolicy::run_if`] treating every error as transient.
    pub fn run<T, E: std::fmt::Display>(
        &self,
        site: &str,
        op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_if(site, op, |_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A policy with zero delays so tests never sleep.
    fn instant(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    #[test]
    fn succeeds_without_retry() {
        let mut calls = 0;
        let r: Result<i32, String> = instant(3).run("t.ok", || {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_transient_until_success() {
        let mut calls = 0;
        let r: Result<i32, String> = instant(3).run("t.flaky", || {
            calls += 1;
            if calls < 3 {
                Err("flaky".to_string())
            } else {
                Ok(42)
            }
        });
        assert_eq!(r, Ok(42));
        assert_eq!(calls, 3);
    }

    #[test]
    fn attempts_bound_is_total_not_extra() {
        let mut calls = 0;
        let r: Result<i32, String> = instant(3).run("t.dead", || {
            calls += 1;
            Err(format!("always ({calls})"))
        });
        assert_eq!(r, Err("always (3)".to_string()));
        assert_eq!(calls, 3);
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let mut calls = 0;
        let r: Result<i32, String> = instant(5).run_if(
            "t.perm",
            || {
                calls += 1;
                Err("corrupt payload".to_string())
            },
            |e| !e.contains("corrupt"),
        );
        assert!(r.is_err());
        assert_eq!(calls, 1, "a permanent error must not be retried");
    }

    #[test]
    fn one_attempt_means_no_retry() {
        let mut calls = 0;
        let _: Result<(), String> = instant(1).run("t.once", || {
            calls += 1;
            Err("nope".into())
        });
        assert_eq!(calls, 1);
        // Degenerate zero-attempt policies still run the op once.
        let mut calls = 0;
        let _: Result<(), String> = instant(0).run("t.zero", || {
            calls += 1;
            Err("nope".into())
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_doubles_and_caps_with_jitter_in_range() {
        let p = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(250),
        };
        // Uncapped exponential midpoints: 100, 200; then capped at 250.
        let d0 = p.delay("site", 0);
        let d1 = p.delay("site", 1);
        let d2 = p.delay("site", 2);
        assert!(d0 >= Duration::from_millis(50) && d0 <= Duration::from_millis(100));
        assert!(d1 >= Duration::from_millis(100) && d1 <= Duration::from_millis(200));
        assert!(d2 >= Duration::from_millis(125) && d2 <= Duration::from_millis(250));
        // Deterministic: same (site, attempt) gives the same delay.
        assert_eq!(d0, p.delay("site", 0));
        // Distinct sites decorrelate.
        assert_ne!(p.delay("a", 3), p.delay("b", 3));
    }

    #[test]
    fn resolve_reads_env_and_survives_garbage() {
        std::env::set_var("HAMLET_RETRY_ATTEMPTS", "4");
        std::env::set_var("HAMLET_RETRY_BASE_MS", "7");
        std::env::set_var("HAMLET_RETRY_MAX_MS", "90");
        let p = RetryPolicy::resolve();
        assert_eq!(p.attempts, 4);
        assert_eq!(p.base_delay, Duration::from_millis(7));
        assert_eq!(p.max_delay, Duration::from_millis(90));
        // Garbage degrades loudly to the default instead of aborting.
        std::env::set_var("HAMLET_RETRY_ATTEMPTS", "many");
        let p = RetryPolicy::resolve();
        assert_eq!(p.attempts, RetryPolicy::default().attempts);
        std::env::remove_var("HAMLET_RETRY_ATTEMPTS");
        std::env::remove_var("HAMLET_RETRY_BASE_MS");
        std::env::remove_var("HAMLET_RETRY_MAX_MS");
    }
}
