//! Strict environment-variable parsing.
//!
//! The experiment knobs (`HAMLET_SCALE`, `HAMLET_TRAIN_SETS`, …) used
//! to fall back to defaults on *any* invalid value, which silently
//! turned `HAMLET_SCALE=1.5` into a 0.1-scale run. These helpers make
//! the failure loud and typed: an unset variable is `Ok(None)`, a set
//! but unparsable (or non-UTF-8, or out-of-range) variable is a
//! [`EnvError`] naming the variable, the offending value, and what
//! would have been accepted.

use std::fmt;

/// An invalid environment-variable value (never raised for unset vars).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// The variable name.
    pub key: String,
    /// The offending value (lossy for non-UTF-8).
    pub value: String,
    /// What a valid value looks like.
    pub expected: String,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}='{}': expected {}",
            self.key, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

/// Reads and parses `key`, accepting only values where `accept` holds.
///
/// * unset -> `Ok(None)`
/// * parses and `accept` -> `Ok(Some(v))`
/// * anything else (non-UTF-8, unparsable, rejected) -> `Err`
pub fn var_where<T: std::str::FromStr>(
    key: &str,
    expected: &str,
    accept: impl Fn(&T) -> bool,
) -> Result<Option<T>, EnvError> {
    let err = |value: String| EnvError {
        key: key.to_string(),
        value,
        expected: expected.to_string(),
    };
    match std::env::var(key) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => Err(err(raw.to_string_lossy().into_owned())),
        Ok(s) => match s.trim().parse::<T>() {
            Ok(v) if accept(&v) => Ok(Some(v)),
            _ => Err(err(s)),
        },
    }
}

/// [`var_where`] with no range restriction.
pub fn var<T: std::str::FromStr>(key: &str, expected: &str) -> Result<Option<T>, EnvError> {
    var_where(key, expected, |_| true)
}

/// Worker count for every parallel region in the process, resolved from
/// `HAMLET_THREADS` exactly once.
///
/// `HAMLET_THREADS` is the one deliberately non-strict knob: a thread
/// count cannot change a result (parallel sweeps reduce in index order),
/// so an invalid value is reported loudly (stderr + run journal) and the
/// default — `available_parallelism` — is used instead of aborting a
/// long experiment. Resolving once per process means a mid-run env
/// mutation cannot make two parallel regions of one experiment disagree;
/// the resolved value is journaled via the `hamlet_threads_resolved`
/// gauge, which every run-journal metric snapshot includes.
pub fn resolved_threads() -> usize {
    static RESOLVED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *RESOLVED.get_or_init(|| {
        let threads = var_where("HAMLET_THREADS", "a positive integer", |&t: &usize| t > 0)
            .unwrap_or_else(|e| {
                crate::journal::record_warning(format!("{e}; using available parallelism"));
                None
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        crate::gauge_set!("hamlet_threads_resolved", threads);
        threads
    })
}

/// Default rows per morsel for chunked columnar scans and streaming
/// ingest: 64K `u32` codes = 256 KiB per chunk, small enough that a
/// (codes, labels) chunk pair stays cache-friendly and large enough to
/// amortize per-morsel bookkeeping.
pub const DEFAULT_MORSEL_ROWS: usize = 65_536;

/// Rows per morsel for every chunked scan in the process, resolved from
/// `HAMLET_MORSEL_ROWS` exactly once.
///
/// Like `HAMLET_THREADS`, this is a deliberately non-strict knob: the
/// morsel size cannot change any result (chunked aggregates merge
/// per-morsel integer tables in fixed order, so they are bit-for-bit
/// identical at any chunk size — `tests/proptests_dataplane.rs` pins
/// this), so an invalid value is reported loudly and the default is
/// used instead of aborting. The resolved value is journaled via the
/// `hamlet_morsel_rows_resolved` gauge.
pub fn resolved_morsel_rows() -> usize {
    static RESOLVED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *RESOLVED.get_or_init(|| {
        let rows = var_where("HAMLET_MORSEL_ROWS", "a positive integer", |&r: &usize| {
            r > 0
        })
        .unwrap_or_else(|e| {
            crate::journal::record_warning(format!("{e}; using the default morsel size"));
            None
        })
        .unwrap_or(DEFAULT_MORSEL_ROWS);
        crate::gauge_set!("hamlet_morsel_rows_resolved", rows);
        rows
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test mutates its own distinct variable, so parallel test
    // threads cannot race on a key.
    #[test]
    fn unset_is_none() {
        assert_eq!(var::<f64>("HAMLET_OBS_TEST_UNSET", "a float"), Ok(None));
    }

    #[test]
    fn valid_value_parses() {
        std::env::set_var("HAMLET_OBS_TEST_OK", " 0.25 ");
        assert_eq!(
            var_where("HAMLET_OBS_TEST_OK", "a float in (0, 1]", |&v: &f64| v
                > 0.0
                && v <= 1.0),
            Ok(Some(0.25))
        );
    }

    #[test]
    fn unparsable_value_is_a_typed_error() {
        std::env::set_var("HAMLET_OBS_TEST_BAD", "abc");
        let e = var::<usize>("HAMLET_OBS_TEST_BAD", "a positive integer").unwrap_err();
        assert_eq!(e.key, "HAMLET_OBS_TEST_BAD");
        assert_eq!(e.value, "abc");
        let msg = e.to_string();
        assert!(msg.contains("HAMLET_OBS_TEST_BAD"), "{msg}");
        assert!(msg.contains("positive integer"), "{msg}");
    }

    #[test]
    fn out_of_range_value_is_rejected() {
        std::env::set_var("HAMLET_OBS_TEST_RANGE", "1.5");
        let e = var_where("HAMLET_OBS_TEST_RANGE", "a float in (0, 1]", |&v: &f64| {
            v > 0.0 && v <= 1.0
        })
        .unwrap_err();
        assert_eq!(e.value, "1.5");
    }

    #[test]
    fn morsel_rows_resolve_once_with_a_sane_default() {
        // The var is unset in the test environment, so the default wins;
        // the OnceLock means later env mutations cannot change it.
        let first = resolved_morsel_rows();
        assert_eq!(first, DEFAULT_MORSEL_ROWS);
        std::env::set_var("HAMLET_MORSEL_ROWS", "17");
        assert_eq!(resolved_morsel_rows(), first);
        std::env::remove_var("HAMLET_MORSEL_ROWS");
    }

    #[cfg(unix)]
    #[test]
    fn non_utf8_value_is_rejected_not_defaulted() {
        use std::os::unix::ffi::OsStrExt;
        let raw = std::ffi::OsStr::from_bytes(&[0x66, 0x6f, 0x80]);
        std::env::set_var("HAMLET_OBS_TEST_UTF8", raw);
        let e = var::<f64>("HAMLET_OBS_TEST_UTF8", "a float").unwrap_err();
        assert!(e.value.contains("fo"), "{e:?}");
    }
}
