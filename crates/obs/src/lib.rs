//! # hamlet-obs
//!
//! Zero-dependency structured observability for the hamlet workspace
//! (offline-safe, like the `shims/` precedent): the measurement
//! substrate behind the paper's runtime claims (Sec 5.1, Fig 7) and
//! every future performance PR.
//!
//! Three layers, all usable independently:
//!
//! * **Spans** ([`span!`], [`mod@span`]) — hierarchical RAII wall-clock
//!   timing with thread-local buffering, off by default (one relaxed
//!   atomic load when disabled);
//! * **Metrics** ([`counter_add!`], [`histogram_observe!`],
//!   [`metrics`]) — always-on monotonic counters, gauges, and
//!   log2-bucketed histograms with a Prometheus-style
//!   [`render_metrics`] exposition;
//! * **Run journal** ([`journal`]) — one JSONL record per experiment or
//!   CLI invocation (config, version, span rollups, final metrics)
//!   under `results/journal/`.
//!
//! Naming conventions (enforced by review, rendered sorted):
//!
//! * spans: `crate.operation`, e.g. `relational.kfk_join`,
//!   `factorized.build_view`, `fs.method`, `cli.train`;
//! * counters: `hamlet_<noun>_total`, e.g. `hamlet_rows_joined_total`;
//! * gauges: `hamlet_<noun>_<unit>`, e.g. `hamlet_peak_alloc_bytes`;
//! * histograms: `hamlet_<noun>`, e.g. `hamlet_join_rows`.

pub mod alloc;
pub mod env;
pub mod fsio;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod parallel;
pub mod retry;
pub mod span;

pub use alloc::CountingAlloc;
pub use env::{resolved_morsel_rows, EnvError, DEFAULT_MORSEL_ROWS};
pub use fsio::{atomic_append, atomic_write};
pub use journal::{record_warning, set_model_family, RunJournal};
pub use metrics::render_metrics;
pub use retry::RetryPolicy;
pub use span::{drain_spans, render_span_tree, rollup, set_tracing, tracing_enabled, SpanGuard};
