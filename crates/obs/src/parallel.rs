//! Deterministic scoped-thread fan-out.
//!
//! One shared primitive for every parallel region in the workspace
//! (Monte-Carlo cells in `hamlet-experiments`, candidate sweeps in
//! `hamlet-fs`): run `job(0..n)` across `threads` scoped workers pulling
//! indices from an atomic counter, and return the results **in index
//! order** regardless of completion order. Determinism is therefore the
//! caller's only obligation: as long as `job(i)` itself is a pure
//! function of `i`, the output of [`run_indexed`] is bit-for-bit
//! identical at any thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Whether the current thread is a [`run_indexed`] worker. Nested
    /// fan-out from inside a worker is *correct* (determinism does not
    /// depend on the thread count) but oversubscribes the machine, so
    /// inner kernels consult [`in_parallel_region`] and run their
    /// morsels sequentially when a level above already went wide.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a [`run_indexed`] worker thread. Count
/// kernels use this to pick `threads = 1` for nested scans instead of
/// spawning `threads x threads` workers.
pub fn in_parallel_region() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Runs `job(0..n)` across up to `threads` scoped workers, returning the
/// results in index order. Falls back to a sequential loop when either
/// `threads` or `n` is at most 1, so tiny workloads pay no thread spawn.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut Option<T>>> = results.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = job(i);
                    **slots[i].lock().expect("slot lock never poisoned") = Some(value);
                }
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect()
}

/// Splits `0..n_rows` into morsels of `morsel_rows` and runs
/// `job(morsel_index, lo..hi)` across up to `threads` workers, returning
/// the per-morsel results **in morsel order** — the building block of
/// every morsel-driven scan. Reduction discipline is the caller's: fold
/// the returned vector left-to-right and the aggregate is bit-for-bit
/// identical at any thread count.
pub fn run_morsels<T, F>(n_rows: usize, morsel_rows: usize, threads: usize, job: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    let morsel = morsel_rows.max(1);
    let n_morsels = n_rows.div_ceil(morsel);
    run_indexed(n_morsels, threads, &|i| {
        let lo = i * morsel;
        let hi = (lo + morsel).min(n_rows);
        job(i, lo..hi)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed(100, threads, &|i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_one_items_work() {
        assert_eq!(run_indexed(0, 4, &|i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, &|i| i + 10), vec![10]);
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let out = run_indexed(3, 64, &|i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn nested_region_flag_is_visible_to_workers() {
        assert!(!in_parallel_region());
        let flags = run_indexed(8, 4, &|_| in_parallel_region());
        assert!(flags.iter().all(|&f| f), "workers must see the flag");
        assert!(!in_parallel_region(), "flag never leaks to the caller");
    }

    #[test]
    fn morsel_ranges_cover_rows_in_order() {
        for threads in [1, 4] {
            let ranges = run_morsels(10, 3, threads, &|i, r| (i, r.start, r.end));
            assert_eq!(ranges, vec![(0, 0, 3), (1, 3, 6), (2, 6, 9), (3, 9, 10)]);
        }
        assert!(run_morsels(0, 3, 2, &|i, _| i).is_empty());
        // A zero morsel size is clamped to 1 instead of dividing by zero.
        assert_eq!(run_morsels(2, 0, 1, &|i, _| i), vec![0, 1]);
    }
}
