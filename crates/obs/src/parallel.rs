//! Deterministic scoped-thread fan-out.
//!
//! One shared primitive for every parallel region in the workspace
//! (Monte-Carlo cells in `hamlet-experiments`, candidate sweeps in
//! `hamlet-fs`): run `job(0..n)` across `threads` scoped workers pulling
//! indices from an atomic counter, and return the results **in index
//! order** regardless of completion order. Determinism is therefore the
//! caller's only obligation: as long as `job(i)` itself is a pure
//! function of `i`, the output of [`run_indexed`] is bit-for-bit
//! identical at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `job(0..n)` across up to `threads` scoped workers, returning the
/// results in index order. Falls back to a sequential loop when either
/// `threads` or `n` is at most 1, so tiny workloads pay no thread spawn.
pub fn run_indexed<T, F>(n: usize, threads: usize, job: &F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut Option<T>>> = results.iter_mut().map(Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = job(i);
                **slots[i].lock().expect("slot lock never poisoned") = Some(value);
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed(100, threads, &|i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_one_items_work() {
        assert_eq!(run_indexed(0, 4, &|i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, &|i| i + 10), vec![10]);
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let out = run_indexed(3, 64, &|i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
