//! Typed process-wide metrics with Prometheus-style text exposition.
//!
//! Three instrument kinds, all backed by relaxed atomics so hot paths
//! pay one `fetch_add` per event:
//!
//! * [`Counter`] — monotonic event count (`_total` names);
//! * [`Gauge`] — a point-in-time value (set, or ratcheted with
//!   [`Gauge::set_max`]);
//! * [`Histogram`] — log2-bucketed distribution of `u64` observations
//!   (bucket `i` counts values `< 2^i`), rendered with cumulative
//!   `le=` buckets plus `_sum`/`_count` like a Prometheus histogram.
//!
//! Instruments live in a global registry keyed by name. Call sites use
//! the [`counter_add!`](crate::counter_add!) /
//! [`histogram_observe!`](crate::histogram_observe!) macros, which
//! cache the registry lookup in a local `OnceLock` so steady-state cost
//! is a single atomic increment. Counting is always on — rendering is
//! what the `--metrics` flag gates — because the counts themselves are
//! the cheap part.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Ratchets the gauge up to `v` if larger (peak tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: covers `u64` fully (last bucket is `+Inf`).
const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` observations.
pub struct Histogram {
    /// `buckets[i]` counts observations with `value < 2^i` and
    /// `value >= 2^(i-1)` (bucket 0: value 0).
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize; // 0 for value 0
        self.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

enum Instrument {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<(&'static str, Instrument)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(&'static str, Instrument)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn register<T>(
    name: &'static str,
    make: impl FnOnce() -> T,
    wrap: impl Fn(&'static T) -> Instrument,
    unwrap: impl Fn(&Instrument) -> Option<&'static T>,
) -> &'static T {
    let mut reg = registry().lock().expect("metrics registry lock");
    if let Some((_, inst)) = reg.iter().find(|(n, _)| *n == name) {
        return unwrap(inst)
            .unwrap_or_else(|| panic!("metric '{name}' registered with another type"));
    }
    let leaked: &'static T = Box::leak(Box::new(make()));
    reg.push((name, wrap(leaked)));
    leaked
}

/// The process-wide counter named `name` (created on first use).
pub fn counter(name: &'static str) -> &'static Counter {
    register(name, Counter::default, Instrument::Counter, |i| match i {
        Instrument::Counter(c) => Some(c),
        _ => None,
    })
}

/// The process-wide gauge named `name` (created on first use).
pub fn gauge(name: &'static str) -> &'static Gauge {
    register(name, Gauge::default, Instrument::Gauge, |i| match i {
        Instrument::Gauge(g) => Some(g),
        _ => None,
    })
}

/// The process-wide histogram named `name` (created on first use).
pub fn histogram(name: &'static str) -> &'static Histogram {
    register(name, Histogram::new, Instrument::Histogram, |i| match i {
        Instrument::Histogram(h) => Some(h),
        _ => None,
    })
}

/// Increments a counter, caching the registry lookup at the call site.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $n:expr) => {{
        static CACHED: std::sync::OnceLock<&'static $crate::metrics::Counter> =
            std::sync::OnceLock::new();
        CACHED
            .get_or_init(|| $crate::metrics::counter($name))
            .add($n as u64);
    }};
}

/// Sets a gauge, caching the registry lookup at the call site.
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $v:expr) => {{
        static CACHED: std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            std::sync::OnceLock::new();
        CACHED
            .get_or_init(|| $crate::metrics::gauge($name))
            .set($v as u64);
    }};
}

/// Records a histogram observation, caching the registry lookup.
#[macro_export]
macro_rules! histogram_observe {
    ($name:expr, $v:expr) => {{
        static CACHED: std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            std::sync::OnceLock::new();
        CACHED
            .get_or_init(|| $crate::metrics::histogram($name))
            .observe($v as u64);
    }};
}

/// A flat snapshot of one metric, for the run journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: &'static str,
    /// Counter/gauge value, or histogram sum.
    pub value: u64,
    /// Histogram observation count (0 for counters/gauges).
    pub count: u64,
}

/// Snapshots every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry().lock().expect("metrics registry lock");
    let mut out: Vec<MetricSnapshot> = reg
        .iter()
        .map(|(name, inst)| match inst {
            Instrument::Counter(c) => MetricSnapshot {
                name,
                kind: "counter",
                value: c.get(),
                count: 0,
            },
            Instrument::Gauge(g) => MetricSnapshot {
                name,
                kind: "gauge",
                value: g.get(),
                count: 0,
            },
            Instrument::Histogram(h) => MetricSnapshot {
                name,
                kind: "histogram",
                value: h.sum(),
                count: h.count(),
            },
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(b.name));
    out
}

/// Renders every registered metric in Prometheus text exposition
/// format, sorted by name (deterministic — golden-testable).
pub fn render_metrics() -> String {
    use std::fmt::Write as _;
    let reg = registry().lock().expect("metrics registry lock");
    let mut entries: Vec<(&'static str, &(&'static str, Instrument))> =
        reg.iter().map(|e| (e.0, e)).collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::new();
    for (name, (_, inst)) in entries {
        match inst {
            Instrument::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Instrument::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", g.get());
            }
            Instrument::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (i, b) in h.buckets.iter().enumerate().take(BUCKETS - 1) {
                    let n = b.load(Ordering::Relaxed);
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    // Bucket i holds values < 2^i.
                    let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", 1u128 << i);
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{name}_sum {}", h.sum());
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        counter("test_events_total").add(3);
        counter("test_events_total").add(2);
        assert_eq!(counter("test_events_total").get(), 5);

        gauge("test_peak_bytes").set_max(10);
        gauge("test_peak_bytes").set_max(7);
        assert_eq!(gauge("test_peak_bytes").get(), 10);

        let h = histogram("test_rows");
        h.observe(0);
        h.observe(1);
        h.observe(3);
        h.observe(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1004);
    }

    #[test]
    fn render_is_prometheus_shaped_and_sorted() {
        counter("test_render_a_total").add(1);
        histogram("test_render_b").observe(5);
        gauge("test_render_c").set(9);
        let text = render_metrics();
        let a = text.find("# TYPE test_render_a_total counter").unwrap();
        let b = text.find("# TYPE test_render_b histogram").unwrap();
        let c = text.find("# TYPE test_render_c gauge").unwrap();
        assert!(a < b && b < c, "{text}");
        assert!(text.contains("test_render_a_total 1"));
        // 5 falls in bucket le=8 (values < 2^3).
        assert!(text.contains("test_render_b_bucket{le=\"8\"} 1"), "{text}");
        assert!(text.contains("test_render_b_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("test_render_b_sum 5"));
        assert!(text.contains("test_render_b_count 1"));
        assert!(text.contains("test_render_c 9"));
    }

    #[test]
    fn macros_cache_and_count() {
        for _ in 0..4 {
            crate::counter_add!("test_macro_total", 2);
        }
        assert_eq!(counter("test_macro_total").get(), 8);
        crate::histogram_observe!("test_macro_hist", 42);
        assert_eq!(histogram("test_macro_hist").count(), 1);
        crate::gauge_set!("test_macro_gauge", 17);
        crate::gauge_set!("test_macro_gauge", 11);
        assert_eq!(gauge("test_macro_gauge").get(), 11);
    }

    #[test]
    fn snapshot_reports_kinds() {
        counter("test_snap_total").add(1);
        histogram("test_snap_hist").observe(3);
        let snap = snapshot();
        let c = snap.iter().find(|m| m.name == "test_snap_total").unwrap();
        assert_eq!((c.kind, c.value), ("counter", 1));
        let h = snap.iter().find(|m| m.name == "test_snap_hist").unwrap();
        assert_eq!((h.kind, h.value, h.count), ("histogram", 3, 1));
    }
}
