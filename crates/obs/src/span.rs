//! Hierarchical timing spans with RAII guards.
//!
//! A span measures one region of code: creation starts the clock, drop
//! stops it and records a [`SpanRecord`] (name, formatted attributes,
//! start offset from the process epoch, duration, thread, nesting
//! depth). Records accumulate in a thread-local buffer that drains into
//! a global sink when full and when the thread exits, so spans opened
//! on scoped worker threads (e.g. the Monte-Carlo pool) surface in the
//! same tree as the driver's.
//!
//! Tracing is **off by default**: a disabled [`span!`](crate::span!)
//! costs one relaxed atomic load and never formats its attributes, so
//! instrumentation can stay on hot paths permanently.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global tracing switch. Off by default.
static TRACING: AtomicBool = AtomicBool::new(false);

/// Enables or disables span recording process-wide.
pub fn set_tracing(enabled: bool) {
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// The process epoch all span start offsets are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (dotted convention: `crate.operation`).
    pub name: &'static str,
    /// Formatted `key=value` attributes, possibly empty.
    pub detail: String,
    /// Nanoseconds from the process epoch to span start.
    pub start_ns: u128,
    /// Span duration in nanoseconds.
    pub duration_ns: u128,
    /// An opaque per-thread id (dense from 0 in creation order).
    pub thread: usize,
    /// Nesting depth at creation (0 = top level on its thread).
    pub depth: usize,
}

/// Completed spans from finished threads plus drained local buffers.
fn sink() -> &'static Mutex<Vec<SpanRecord>> {
    static SINK: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn next_thread_id() -> usize {
    static NEXT: OnceLock<Mutex<usize>> = OnceLock::new();
    let mut n = NEXT
        .get_or_init(|| Mutex::new(0))
        .lock()
        .expect("thread id counter lock");
    let id = *n;
    *n += 1;
    id
}

/// Thread-local span state; drains into the global sink on thread exit.
struct LocalSpans {
    thread: usize,
    depth: usize,
    buffer: Vec<SpanRecord>,
}

impl LocalSpans {
    const DRAIN_AT: usize = 256;

    fn new() -> Self {
        Self {
            thread: next_thread_id(),
            depth: 0,
            buffer: Vec::new(),
        }
    }

    fn drain(&mut self) {
        if !self.buffer.is_empty() {
            sink()
                .lock()
                .expect("span sink lock")
                .append(&mut self.buffer);
        }
    }
}

impl Drop for LocalSpans {
    fn drop(&mut self) {
        self.drain();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalSpans> = RefCell::new(LocalSpans::new());
}

/// RAII guard created by [`span!`](crate::span!); records on drop.
///
/// When tracing is disabled the guard is inert (no clock read, no
/// attribute formatting, nothing recorded).
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    /// `None` when tracing was disabled at creation.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    detail: String,
    start: Instant,
    start_ns: u128,
    depth: usize,
}

impl SpanGuard {
    /// Opens a span; `detail` is only invoked when tracing is enabled.
    pub fn enter_with(name: &'static str, detail: impl FnOnce() -> String) -> Self {
        if !tracing_enabled() {
            return Self { live: None };
        }
        let depth = LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let d = l.depth;
            l.depth += 1;
            d
        });
        let start = Instant::now();
        Self {
            live: Some(LiveSpan {
                name,
                detail: detail(),
                start,
                start_ns: start.duration_since(epoch()).as_nanos(),
                depth,
            }),
        }
    }

    /// Opens a span with no attributes.
    pub fn enter(name: &'static str) -> Self {
        Self::enter_with(name, String::new)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let duration_ns = live.start.elapsed().as_nanos();
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            l.depth = l.depth.saturating_sub(1);
            let thread = l.thread;
            l.buffer.push(SpanRecord {
                name: live.name,
                detail: live.detail,
                start_ns: live.start_ns,
                duration_ns,
                thread,
                depth: live.depth,
            });
            if l.buffer.len() >= LocalSpans::DRAIN_AT {
                l.drain();
            }
        });
    }
}

/// Opens a hierarchical timing span; the guard records on drop.
///
/// ```
/// let _g = hamlet_obs::span!("relational.kfk_join", table = "R", rows = 100);
/// ```
///
/// Attribute values are formatted with `Display` and only when tracing
/// is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::SpanGuard::enter_with($name, || {
            let mut s = String::new();
            $(
                {
                    use std::fmt::Write as _;
                    if !s.is_empty() { s.push(' '); }
                    let _ = write!(s, concat!(stringify!($key), "={}"), $value);
                }
            )+
            s
        })
    };
}

/// Drains the calling thread's buffer and takes every completed span
/// recorded so far, leaving the sink empty.
pub fn drain_spans() -> Vec<SpanRecord> {
    LOCAL.with(|l| l.borrow_mut().drain());
    std::mem::take(&mut *sink().lock().expect("span sink lock"))
}

/// Aggregated wall-clock per span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRollup {
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans with this name.
    pub count: usize,
    /// Total wall-clock across them, nanoseconds.
    pub total_ns: u128,
    /// The single longest span, nanoseconds.
    pub max_ns: u128,
}

/// Rolls spans up by name, longest total first.
pub fn rollup(records: &[SpanRecord]) -> Vec<SpanRollup> {
    let mut by_name: Vec<SpanRollup> = Vec::new();
    for r in records {
        match by_name.iter_mut().find(|e| e.name == r.name) {
            Some(e) => {
                e.count += 1;
                e.total_ns += r.duration_ns;
                e.max_ns = e.max_ns.max(r.duration_ns);
            }
            None => by_name.push(SpanRollup {
                name: r.name,
                count: 1,
                total_ns: r.duration_ns,
                max_ns: r.duration_ns,
            }),
        }
    }
    by_name.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
    by_name
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders records as an indented per-thread tree (children are nested
/// under the span that was open when they started) followed by the
/// rollup table.
pub fn render_span_tree(records: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("span tree (wall-clock, per thread)\n");
    let mut threads: Vec<usize> = records.iter().map(|r| r.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        let mut rs: Vec<&SpanRecord> = records.iter().filter(|r| r.thread == t).collect();
        rs.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.depth.cmp(&a.depth)));
        let _ = writeln!(out, "thread {t}:");
        for r in rs {
            let _ = writeln!(
                out,
                "  {:indent$}{} {}{}{}",
                "",
                fmt_ns(r.duration_ns),
                r.name,
                if r.detail.is_empty() { "" } else { " " },
                r.detail,
                indent = r.depth * 2,
            );
        }
    }
    out.push_str("\nspan rollup (total, count, max)\n");
    for e in rollup(records) {
        let _ = writeln!(
            out,
            "  {:>10}  x{:<6} max {:>10}  {}",
            fmt_ns(e.total_ns),
            e.count,
            fmt_ns(e.max_ns),
            e.name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share the global switch and sink, so they run as one
    // test to avoid cross-test interference.
    #[test]
    fn spans_record_hierarchy_and_disable_cleanly() {
        // Disabled: nothing recorded.
        set_tracing(false);
        {
            let _g = crate::span!("off.noop", x = 1);
        }
        assert!(drain_spans().is_empty());

        set_tracing(true);
        {
            let _outer = crate::span!("test.outer", table = "R");
            {
                let _inner = crate::span!("test.inner");
            }
            {
                let _inner = crate::span!("test.inner");
            }
        }
        let t = std::thread::spawn(|| {
            let _g = crate::span!("test.worker", idx = 7);
        });
        t.join().unwrap();
        set_tracing(false);

        let records = drain_spans();
        assert_eq!(records.len(), 4, "{records:?}");
        let outer = records.iter().find(|r| r.name == "test.outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.detail, "table=R");
        let inners: Vec<_> = records.iter().filter(|r| r.name == "test.inner").collect();
        assert_eq!(inners.len(), 2);
        assert!(inners.iter().all(|r| r.depth == 1));
        assert!(inners.iter().all(|r| r.thread == outer.thread));
        let worker = records.iter().find(|r| r.name == "test.worker").unwrap();
        assert_ne!(worker.thread, outer.thread);
        assert_eq!(worker.detail, "idx=7");
        // Parent wall-clock covers the children.
        assert!(outer.duration_ns >= inners.iter().map(|r| r.duration_ns).sum());

        let rolled = rollup(&records);
        let inner_roll = rolled.iter().find(|e| e.name == "test.inner").unwrap();
        assert_eq!(inner_roll.count, 2);
        assert!(inner_roll.max_ns <= inner_roll.total_ns);

        let tree = render_span_tree(&records);
        assert!(tree.contains("test.outer table=R"), "{tree}");
        assert!(tree.contains("    ")); // nesting indent
        assert!(tree.contains("span rollup"));

        // Sink is empty after draining.
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
    }
}
